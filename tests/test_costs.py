"""Unit tests for the cost models."""

import math

import pytest

from repro.core import (
    Event,
    GridCostModel,
    InvalidInstanceError,
    MatrixCostModel,
    TimeInterval,
    User,
    audit_triangle_inequality,
    euclidean,
    manhattan,
)


def ev(i, loc, t1, t2, cap=1):
    return Event(id=i, location=loc, capacity=cap, interval=TimeInterval(t1, t2))


def us(i, loc, budget=100):
    return User(id=i, location=loc, budget=budget)


class TestMetrics:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((1, 1), (1, 1)) == 0
        assert manhattan((-2, 0), (2, 0)) == 4

    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == 5.0


class TestGridCostModel:
    def test_user_event_cost(self):
        model = GridCostModel()
        assert model.user_to_event(us(0, (0, 0)), ev(0, (2, 3), 0, 1)) == 5

    def test_event_user_symmetric(self):
        model = GridCostModel()
        event, user = ev(0, (2, 3), 0, 1), us(0, (0, 0))
        assert model.event_to_user(event, user) == model.user_to_event(user, event)

    def test_compatible_ordered_pair(self):
        model = GridCostModel()
        a, b = ev(0, (0, 0), 0, 10), ev(1, (5, 0), 10, 20)
        assert model.event_to_event(a, b) == 5

    def test_overlapping_pair_is_infeasible(self):
        model = GridCostModel()
        a, b = ev(0, (0, 0), 0, 10), ev(1, (5, 0), 5, 20)
        assert math.isinf(model.event_to_event(a, b))
        assert math.isinf(model.event_to_event(b, a))

    def test_wrong_order_is_infeasible(self):
        model = GridCostModel()
        a, b = ev(0, (0, 0), 0, 10), ev(1, (5, 0), 10, 20)
        assert math.isinf(model.event_to_event(b, a))

    def test_speed_gates_tight_gaps(self):
        # 10 distance units, 5 time units of gap: needs speed >= 2.
        a, b = ev(0, (0, 0), 0, 10), ev(1, (10, 0), 15, 20)
        assert math.isinf(GridCostModel(speed=1.0).event_to_event(a, b))
        assert GridCostModel(speed=2.0).event_to_event(a, b) == 10

    def test_euclidean_rounding(self):
        model = GridCostModel(metric="euclidean", integral=True)
        cost = model.user_to_event(us(0, (0, 0)), ev(0, (1, 1), 0, 1))
        assert cost == 1.0  # sqrt(2) rounds to 1
        model_f = GridCostModel(metric="euclidean", integral=False)
        assert model_f.user_to_event(us(0, (0, 0)), ev(0, (1, 1), 0, 1)) == (
            pytest.approx(math.sqrt(2))
        )

    def test_rejects_unknown_metric(self):
        with pytest.raises(InvalidInstanceError):
            GridCostModel(metric="chebyshev")

    def test_rejects_bad_speed(self):
        with pytest.raises(InvalidInstanceError):
            GridCostModel(speed=0)


class TestMatrixCostModel:
    def _events(self):
        return [ev(0, (0, 0), 0, 10), ev(1, (1, 0), 10, 20)]

    def test_lookup(self):
        model = MatrixCostModel([[0, 7], [7, 0]], [[3, 4]])
        a, b = self._events()
        assert model.event_to_event(a, b) == 7
        assert model.user_to_event(us(0, (9, 9)), b) == 4

    def test_conflict_guard(self):
        # Intervals overlap: matrix value is overridden with inf.
        model = MatrixCostModel([[0, 7], [7, 0]], [[3, 4]])
        a = ev(0, (0, 0), 0, 15)
        b = ev(1, (1, 0), 10, 20)
        assert math.isinf(model.event_to_event(a, b))

    def test_conflict_guard_can_be_disabled(self):
        model = MatrixCostModel([[0, 7], [7, 0]], [[3, 4]], check_conflicts=False)
        a = ev(0, (0, 0), 0, 15)
        b = ev(1, (1, 0), 10, 20)
        assert model.event_to_event(a, b) == 7

    def test_asymmetric_return_costs(self):
        model = MatrixCostModel(
            [[0, 7], [7, 0]], [[3, 4]], event_user=[[30], [40]]
        )
        assert model.user_to_event(us(0, (0, 0)), self._events()[0]) == 3
        assert model.event_to_user(self._events()[0], us(0, (0, 0))) == 30

    def test_rejects_non_square(self):
        with pytest.raises(InvalidInstanceError):
            MatrixCostModel([[0, 1]], [[1, 2]])

    def test_rejects_negative_cost(self):
        with pytest.raises(InvalidInstanceError):
            MatrixCostModel([[0, -1], [1, 0]], [[1, 2]])

    def test_rejects_infinite_user_cost(self):
        with pytest.raises(InvalidInstanceError):
            MatrixCostModel([[0, 1], [1, 0]], [[math.inf, 2]])


class TestTriangleAudit:
    def test_grid_model_passes(self):
        events = [
            ev(0, (0, 0), 0, 10),
            ev(1, (5, 5), 10, 20),
            ev(2, (9, 1), 20, 30),
        ]
        users = [us(0, (3, 3))]
        assert audit_triangle_inequality(GridCostModel(), events, users) == []

    def test_detects_violation(self):
        events = [
            ev(0, (0, 0), 0, 10),
            ev(1, (0, 0), 10, 20),
            ev(2, (0, 0), 20, 30),
        ]
        # Direct leg 0->2 is 100 but via 1 it is 2: violates triangle.
        model = MatrixCostModel(
            [[0, 1, 100], [1, 0, 1], [100, 1, 0]], [[0, 0, 0]]
        )
        violations = audit_triangle_inequality(model, events, [us(0, (0, 0))])
        assert violations
        assert "triangle" in violations[0]
