"""Tests for the sweep harness and solver instrumentation."""

import io

import pytest

from repro.algorithms import make_solver
from repro.algorithms.base import warm_instance
from repro.datagen import SyntheticConfig, generate_instance
from repro.experiments import SweepPoint, run_sweep


def tiny_points(n=2):
    def builder(seed):
        return lambda: generate_instance(
            SyntheticConfig(
                num_events=6, num_users=10, mean_capacity=3, grid_size=15, seed=seed
            )
        )

    return [SweepPoint(axis_value=seed, build=builder(seed)) for seed in range(n)]


class TestSolverRun:
    def test_run_reports_utility_and_time(self, tiny_synthetic):
        result = make_solver("DeDPO").run(tiny_synthetic)
        assert result.solver == "DeDPO"
        assert result.utility == result.planning.total_utility()
        assert result.wall_time_s >= 0
        assert result.peak_memory_bytes is None

    def test_run_with_memory(self, tiny_synthetic):
        result = make_solver("DeDPO").run(tiny_synthetic, measure_memory=True)
        assert result.peak_memory_bytes is not None
        assert result.peak_memory_bytes > 0

    def test_dedp_uses_more_memory_than_dedpo(self):
        """The headline claim of Section 4.3.1, measurable at small scale."""
        inst = generate_instance(
            SyntheticConfig(
                num_events=30, num_users=150, mean_capacity=20, grid_size=40, seed=8
            )
        )
        dedp = make_solver("DeDP").run(inst, measure_memory=True)
        dedpo = make_solver("DeDPO").run(inst, measure_memory=True)
        assert dedp.peak_memory_bytes > 2 * dedpo.peak_memory_bytes
        assert dedp.utility == dedpo.utility

    def test_summary_row(self, tiny_synthetic):
        result = make_solver("RatioGreedy").run(tiny_synthetic, measure_memory=True)
        row = result.summary_row()
        assert row["solver"] == "RatioGreedy"
        assert "utility" in row and "time_s" in row and "peak_mem_kb" in row

    def test_warm_instance_materialises_caches(self, tiny_synthetic):
        warm_instance(tiny_synthetic)
        assert tiny_synthetic._vv_cost is not None
        assert len(tiny_synthetic._to_event_cache) == tiny_synthetic.num_users


class TestRunSweep:
    def test_rows_cover_grid(self):
        result = run_sweep(
            "seed", tiny_points(2), ["DeDPO", "DeGreedy"], measure_memory=False
        )
        assert len(result.rows) == 4
        assert result.axis_values() == [0, 1]

    def test_series_extraction(self):
        result = run_sweep(
            "seed", tiny_points(2), ["DeDPO", "DeGreedy"], measure_memory=False
        )
        series = result.series("utility")
        assert set(series) == {"DeDPO", "DeGreedy"}
        assert all(len(v) == 2 for v in series.values())

    def test_validate_flag(self):
        # must not raise: all solvers produce feasible plannings
        run_sweep("seed", tiny_points(1), ["RatioGreedy"], measure_memory=False,
                  validate=True)

    def test_progress_stream(self):
        stream = io.StringIO()
        run_sweep(
            "seed",
            tiny_points(1),
            ["DeGreedy"],
            measure_memory=False,
            progress=True,
            progress_stream=stream,
        )
        assert "DeGreedy" in stream.getvalue()

    def test_rows_carry_instance_metadata(self):
        result = run_sweep("seed", tiny_points(1), ["DeGreedy"], measure_memory=False)
        row = result.rows[0]
        assert row["num_events"] == 6
        assert row["num_users"] == 10
        assert row["axis"] == "seed"

    def test_no_memory_row_shape(self):
        """measure_memory=False rows carry no peak_mem_kb key at all."""
        result = run_sweep("seed", tiny_points(1), ["DeGreedy"], measure_memory=False)
        for row in result.rows:
            assert "peak_mem_kb" not in row
            assert row["time_s"] >= 0
        with_mem = run_sweep("seed", tiny_points(1), ["DeGreedy"])
        assert all("peak_mem_kb" in row for row in with_mem.rows)


#: Row keys whose values legitimately differ between runs of the same
#: cell (wall-clock and allocation noise).
_TIMING_KEYS = {"time_s", "build_time_s", "peak_mem_kb"}


def _stable(row):
    return {k: v for k, v in row.items() if k not in _TIMING_KEYS}


class TestParallelSweep:
    def test_jobs_matches_sequential(self):
        """jobs=4 returns the sequential rows in the sequential order."""
        from repro.experiments.figures import get_spec

        spec = get_spec("fig2-v")
        algorithms = ["DeDP", "DeDPO", "DeGreedy"]
        seq = run_sweep(spec.axis, spec.points("tiny"), algorithms)
        par = run_sweep(spec.axis, spec.points("tiny"), algorithms, jobs=4)
        assert len(par.rows) == len(seq.rows)
        for seq_row, par_row in zip(seq.rows, par.rows):
            assert _stable(seq_row) == _stable(par_row)

    def test_jobs_one_is_sequential(self):
        from repro.experiments.harness import _PARALLEL_STATE

        result = run_sweep(
            "seed", tiny_points(2), ["DeGreedy"], measure_memory=False, jobs=1
        )
        assert len(result.rows) == 2
        assert not _PARALLEL_STATE  # the pool path was never entered

    def test_jobs_no_memory(self):
        seq = run_sweep("seed", tiny_points(2), ["DeGreedy"], measure_memory=False)
        par = run_sweep(
            "seed", tiny_points(2), ["DeGreedy"], measure_memory=False, jobs=2
        )
        for seq_row, par_row in zip(seq.rows, par.rows):
            assert _stable(seq_row) == _stable(par_row)
            assert "peak_mem_kb" not in par_row

    def test_jobs_progress_lines(self):
        stream = io.StringIO()
        run_sweep(
            "seed",
            tiny_points(2),
            ["DeGreedy"],
            measure_memory=False,
            progress=True,
            progress_stream=stream,
            jobs=2,
        )
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 2
        assert all("DeGreedy" in line for line in lines)

    def test_jobs_propagates_exceptions(self):
        with pytest.raises(KeyError):
            run_sweep("seed", tiny_points(1), ["NoSuchSolver"], jobs=2)
        # and the module state is cleaned up even on failure
        from repro.experiments.harness import _PARALLEL_STATE

        assert not _PARALLEL_STATE
