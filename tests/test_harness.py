"""Tests for the sweep harness and solver instrumentation."""

import io

import pytest

from repro.algorithms import make_solver
from repro.algorithms.base import warm_instance
from repro.datagen import SyntheticConfig, generate_instance
from repro.experiments import SweepPoint, run_sweep


def tiny_points(n=2):
    def builder(seed):
        return lambda: generate_instance(
            SyntheticConfig(
                num_events=6, num_users=10, mean_capacity=3, grid_size=15, seed=seed
            )
        )

    return [SweepPoint(axis_value=seed, build=builder(seed)) for seed in range(n)]


class TestSolverRun:
    def test_run_reports_utility_and_time(self, tiny_synthetic):
        result = make_solver("DeDPO").run(tiny_synthetic)
        assert result.solver == "DeDPO"
        assert result.utility == result.planning.total_utility()
        assert result.wall_time_s >= 0
        assert result.peak_memory_bytes is None

    def test_run_with_memory(self, tiny_synthetic):
        result = make_solver("DeDPO").run(tiny_synthetic, measure_memory=True)
        assert result.peak_memory_bytes is not None
        assert result.peak_memory_bytes > 0

    def test_dedp_uses_more_memory_than_dedpo(self):
        """The headline claim of Section 4.3.1, measurable at small scale."""
        inst = generate_instance(
            SyntheticConfig(
                num_events=30, num_users=150, mean_capacity=20, grid_size=40, seed=8
            )
        )
        dedp = make_solver("DeDP").run(inst, measure_memory=True)
        dedpo = make_solver("DeDPO").run(inst, measure_memory=True)
        assert dedp.peak_memory_bytes > 2 * dedpo.peak_memory_bytes
        assert dedp.utility == dedpo.utility

    def test_summary_row(self, tiny_synthetic):
        result = make_solver("RatioGreedy").run(tiny_synthetic, measure_memory=True)
        row = result.summary_row()
        assert row["solver"] == "RatioGreedy"
        assert "utility" in row and "time_s" in row and "peak_mem_kb" in row

    def test_warm_instance_materialises_caches(self, tiny_synthetic):
        warm_instance(tiny_synthetic)
        assert tiny_synthetic._vv_cost is not None
        assert len(tiny_synthetic._to_event_cache) == tiny_synthetic.num_users


class TestRunSweep:
    def test_rows_cover_grid(self):
        result = run_sweep(
            "seed", tiny_points(2), ["DeDPO", "DeGreedy"], measure_memory=False
        )
        assert len(result.rows) == 4
        assert result.axis_values() == [0, 1]

    def test_series_extraction(self):
        result = run_sweep(
            "seed", tiny_points(2), ["DeDPO", "DeGreedy"], measure_memory=False
        )
        series = result.series("utility")
        assert set(series) == {"DeDPO", "DeGreedy"}
        assert all(len(v) == 2 for v in series.values())

    def test_validate_flag(self):
        # must not raise: all solvers produce feasible plannings
        run_sweep("seed", tiny_points(1), ["RatioGreedy"], measure_memory=False,
                  validate=True)

    def test_progress_stream(self):
        stream = io.StringIO()
        run_sweep(
            "seed",
            tiny_points(1),
            ["DeGreedy"],
            measure_memory=False,
            progress=True,
            progress_stream=stream,
        )
        assert "DeGreedy" in stream.getvalue()

    def test_rows_carry_instance_metadata(self):
        result = run_sweep("seed", tiny_points(1), ["DeGreedy"], measure_memory=False)
        row = result.rows[0]
        assert row["num_events"] == 6
        assert row["num_users"] == 10
        assert row["axis"] == "seed"

    def test_no_memory_row_shape(self):
        """measure_memory=False rows carry no peak_mem_kb key at all."""
        result = run_sweep("seed", tiny_points(1), ["DeGreedy"], measure_memory=False)
        for row in result.rows:
            assert "peak_mem_kb" not in row
            assert row["time_s"] >= 0
        with_mem = run_sweep("seed", tiny_points(1), ["DeGreedy"])
        assert all("peak_mem_kb" in row for row in with_mem.rows)


#: Row keys whose values legitimately differ between runs of the same
#: cell (wall-clock and allocation noise, plus run-configuration
#: metadata such as the worker count actually used).
_TIMING_KEYS = {"time_s", "build_time_s", "peak_mem_kb", "jobs_effective"}


def _stable(row):
    return {k: v for k, v in row.items() if k not in _TIMING_KEYS}


class TestParallelSweep:
    def test_jobs_matches_sequential(self):
        """jobs=4 returns the sequential rows in the sequential order."""
        from repro.experiments.figures import get_spec

        spec = get_spec("fig2-v")
        algorithms = ["DeDP", "DeDPO", "DeGreedy"]
        seq = run_sweep(spec.axis, spec.points("tiny"), algorithms)
        par = run_sweep(spec.axis, spec.points("tiny"), algorithms, jobs=4)
        assert len(par.rows) == len(seq.rows)
        for seq_row, par_row in zip(seq.rows, par.rows):
            assert _stable(seq_row) == _stable(par_row)

    def test_jobs_one_is_sequential(self):
        from repro.experiments.harness import _PARALLEL_STATE

        result = run_sweep(
            "seed", tiny_points(2), ["DeGreedy"], measure_memory=False, jobs=1
        )
        assert len(result.rows) == 2
        assert not _PARALLEL_STATE  # the pool path was never entered

    def test_jobs_no_memory(self):
        seq = run_sweep("seed", tiny_points(2), ["DeGreedy"], measure_memory=False)
        par = run_sweep(
            "seed", tiny_points(2), ["DeGreedy"], measure_memory=False, jobs=2
        )
        for seq_row, par_row in zip(seq.rows, par.rows):
            assert _stable(seq_row) == _stable(par_row)
            assert "peak_mem_kb" not in par_row

    def test_jobs_progress_lines(self):
        stream = io.StringIO()
        run_sweep(
            "seed",
            tiny_points(2),
            ["DeGreedy"],
            measure_memory=False,
            progress=True,
            progress_stream=stream,
            jobs=2,
        )
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 2
        assert all("DeGreedy" in line for line in lines)

    def test_jobs_propagates_exceptions(self):
        with pytest.raises(KeyError):
            run_sweep("seed", tiny_points(1), ["NoSuchSolver"], jobs=2)
        # and the module state is cleaned up even on failure
        from repro.experiments.harness import _PARALLEL_STATE

        assert not _PARALLEL_STATE


class TestErrorRows:
    """Worker exceptions become per-cell error rows, not sweep aborts."""

    @staticmethod
    def _boom_point():
        def build():
            raise RuntimeError("synthetic build explosion")

        return SweepPoint(axis_value="boom", build=build)

    @staticmethod
    def _crashing_solver(monkeypatch):
        """Make DeGreedy raise inside solve on both execution paths."""
        from repro.algorithms import decomposed

        def explode(self, instance):
            raise RuntimeError("synthetic solver explosion")

        monkeypatch.setattr(decomposed.DeGreedy, "solve", explode)

    def test_solver_exception_sequential(self, monkeypatch):
        self._crashing_solver(monkeypatch)
        result = run_sweep(
            "seed", tiny_points(2), ["DeGreedy", "DeDPO"], measure_memory=False
        )
        assert len(result.rows) == 4  # nothing was discarded
        by_solver = {}
        for row in result.rows:
            by_solver.setdefault(row["solver"], []).append(row)
        for row in by_solver["DeGreedy"]:
            assert row["status"] == "error"
            assert row["utility"] is None
            assert "synthetic solver explosion" in row["error"]
            assert "Traceback" in row["error"]
        for row in by_solver["DeDPO"]:  # neighbours unaffected
            assert row["status"] == "ok"
            assert row["utility"] > 0

    def test_solver_exception_parallel_matches_sequential(self, monkeypatch):
        """The sequential fallback path behaves identically to the pool."""
        self._crashing_solver(monkeypatch)
        seq = run_sweep(
            "seed", tiny_points(2), ["DeGreedy", "DeDPO"], measure_memory=False
        )
        par = run_sweep(
            "seed", tiny_points(2), ["DeGreedy", "DeDPO"], measure_memory=False,
            jobs=2,
        )
        assert len(par.rows) == len(seq.rows)
        for seq_row, par_row in zip(seq.rows, par.rows):
            assert seq_row["status"] == par_row["status"]
            assert seq_row["solver"] == par_row["solver"]
            if seq_row["status"] == "error":
                assert "synthetic solver explosion" in par_row["error"]

    def test_build_exception_sequential(self):
        result = run_sweep(
            "seed",
            [self._boom_point()],
            ["DeGreedy", "DeDPO"],
            measure_memory=False,
        )
        assert [row["status"] for row in result.rows] == ["error", "error"]
        assert all(
            "synthetic build explosion" in row["error"] for row in result.rows
        )

    def test_build_exception_parallel(self):
        result = run_sweep(
            "seed",
            [self._boom_point()],
            ["DeGreedy", "DeDPO"],
            measure_memory=False,
            jobs=2,
        )
        assert [row["status"] for row in result.rows] == ["error", "error"]

    def test_error_rows_emit_progress(self, monkeypatch):
        self._crashing_solver(monkeypatch)
        stream = io.StringIO()
        run_sweep(
            "seed", tiny_points(1), ["DeGreedy"], measure_memory=False,
            progress=True, progress_stream=stream,
        )
        assert "ERROR" in stream.getvalue()

    def test_unknown_solver_still_fails_fast(self):
        """Typos are programming errors: caught before any cell runs."""
        with pytest.raises(KeyError):
            run_sweep("seed", tiny_points(1), ["NoSuchSolver"])


class TestJobsEffective:
    def test_sequential_records_one(self):
        result = run_sweep("seed", tiny_points(1), ["DeGreedy"],
                           measure_memory=False)
        assert all(row["jobs_effective"] == 1 for row in result.rows)

    def test_parallel_records_pool_width(self):
        result = run_sweep("seed", tiny_points(2), ["DeGreedy"],
                           measure_memory=False, jobs=2)
        assert all(row["jobs_effective"] == 2 for row in result.rows)

    def test_fork_unavailable_warns_and_degrades(self, monkeypatch):
        """jobs>1 without fork: one stderr warning + jobs_effective=1."""
        import repro.experiments.harness as harness

        monkeypatch.setattr(harness, "_fork_available", lambda: False)
        stream = io.StringIO()
        result = run_sweep(
            "seed", tiny_points(1), ["DeGreedy"], measure_memory=False,
            jobs=4, progress_stream=stream,
        )
        warnings = [
            line for line in stream.getvalue().splitlines() if "warning" in line
        ]
        assert len(warnings) == 1
        assert "fork" in warnings[0] and "jobs=4" in warnings[0]
        assert all(row["jobs_effective"] == 1 for row in result.rows)
        assert all(row["status"] == "ok" for row in result.rows)


class TestJournalledSweep:
    def test_rows_journalled_as_they_finish(self, tmp_path):
        from repro.service.checkpoint import load_rows

        path = tmp_path / "sweep.jsonl"
        result = run_sweep(
            "seed", tiny_points(2), ["DeGreedy"], measure_memory=False,
            journal=str(path),
        )
        journalled = load_rows(str(path))
        assert len(journalled) == 2
        assert journalled == result.rows  # same dicts, same order

    def test_resume_skips_completed_cells(self, tmp_path):
        from repro.service.checkpoint import canonical_bytes

        full = tmp_path / "full.jsonl"
        run_sweep("seed", tiny_points(3), ["DeGreedy", "DeDPO"],
                  measure_memory=False, journal=str(full))
        partial = tmp_path / "partial.jsonl"
        lines = full.read_text().splitlines()
        partial.write_text("\n".join(lines[:3]) + "\n")  # header + 2 cells
        resumed = run_sweep(
            "seed", tiny_points(3), ["DeGreedy", "DeDPO"],
            measure_memory=False, journal=str(partial), resume=True,
        )
        assert [row["resumed"] for row in resumed.rows] == (
            [True] * 2 + [False] * 4
        )
        assert canonical_bytes(str(partial)) == canonical_bytes(str(full))

    def test_resume_skips_builds_of_complete_points(self, tmp_path):
        """A fully-journalled point never rebuilds its instance."""
        path = tmp_path / "sweep.jsonl"
        run_sweep("seed", tiny_points(2), ["DeGreedy"], measure_memory=False,
                  journal=str(path))
        calls = []

        def counting_point(seed):
            def build():
                calls.append(seed)
                raise AssertionError("must not rebuild a journalled point")

            return SweepPoint(axis_value=seed, build=build)

        resumed = run_sweep(
            "seed", [counting_point(0), counting_point(1)], ["DeGreedy"],
            measure_memory=False, journal=str(path), resume=True,
        )
        assert calls == []
        assert all(row["resumed"] for row in resumed.rows)

    def test_stale_journal_refused_without_resume(self, tmp_path):
        from repro.service.checkpoint import JournalMismatchError

        path = tmp_path / "sweep.jsonl"
        run_sweep("seed", tiny_points(1), ["DeGreedy"], measure_memory=False,
                  journal=str(path))
        with pytest.raises(JournalMismatchError):
            run_sweep("seed", tiny_points(1), ["DeGreedy"],
                      measure_memory=False, journal=str(path))
