"""Tests for the JSONL sweep journal (checkpoint/resume plumbing)."""

import json

import pytest

from repro.service.checkpoint import (
    JournalLockedError,
    JournalMismatchError,
    SweepJournal,
    canonical_bytes,
    load_rows,
    strip_timing,
)


def _open(path, resume=False, algorithms=("DeDPO", "DeGreedy"), num_points=2):
    return SweepJournal.open(
        str(path), "num_events", list(algorithms), num_points, resume=resume
    )


class TestJournalBasics:
    def test_header_written_first(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            pass
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["kind"] == "header"
        assert entry["axis"] == "num_events"
        assert entry["algorithms"] == ["DeDPO", "DeGreedy"]

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        row = {"solver": "DeDPO", "status": "ok", "utility": 4.5, "time_s": 0.1}
        with _open(path) as journal:
            journal.record((0, "DeDPO"), row)
            assert journal.has((0, "DeDPO"))
            assert not journal.has((0, "DeGreedy"))
        with _open(path, resume=True) as journal:
            assert journal.has((0, "DeDPO"))
            assert journal.row_for((0, "DeDPO")) == row

    def test_load_rows_in_completion_order(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path) as journal:
            journal.record((1, "DeGreedy"), {"solver": "DeGreedy", "n": 1})
            journal.record((0, "DeDPO"), {"solver": "DeDPO", "n": 2})
        assert [r["n"] for r in load_rows(str(path))] == [1, 2]

    def test_existing_without_resume_refused(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path) as journal:
            journal.record((0, "DeDPO"), {"solver": "DeDPO"})
        with pytest.raises(JournalMismatchError, match="resume"):
            _open(path)

    def test_torn_tail_line_ignored(self, tmp_path):
        """A SIGKILL mid-write leaves a truncated last line; resume skips it."""
        path = tmp_path / "sweep.jsonl"
        with _open(path) as journal:
            journal.record((0, "DeDPO"), {"solver": "DeDPO"})
        with open(path, "a") as handle:
            handle.write('{"kind": "cell", "point": 1, "solv')  # torn
        with _open(path, resume=True) as journal:
            assert journal.has((0, "DeDPO"))
            assert not journal.has((1, "DeGreedy"))


class TestJournalLock:
    """The advisory fcntl lock: one live writer per journal file."""

    def test_second_opener_fails_fast(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            # flock is per open-file-description, so a second open in
            # the same process contends exactly like a second process.
            with pytest.raises(JournalLockedError, match="locked"):
                _open(path, resume=True)

    def test_lock_released_on_close(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            pass
        with _open(path, resume=True) as journal:
            assert journal.header["axis"] == "num_events"

    def test_contention_leaves_journal_intact(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        row = {"solver": "DeDPO", "status": "ok", "utility": 1.0}
        with _open(path) as journal:
            journal.record((0, "DeDPO"), row)
            with pytest.raises(JournalLockedError):
                _open(path, resume=True)
            journal.record((1, "DeDPO"), row)
        rows = load_rows(str(path))
        assert len(rows) == 2  # the refused opener wrote nothing

    def test_noop_without_fcntl(self, tmp_path, monkeypatch):
        from repro.service import checkpoint

        monkeypatch.setattr(checkpoint, "fcntl", None)
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            with _open(path, resume=True) as second:
                assert second.header["axis"] == "num_events"


class TestHeaderFingerprint:
    def test_axis_mismatch(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            pass
        with pytest.raises(JournalMismatchError, match="axis"):
            SweepJournal.open(str(path), "num_users", ["DeDPO", "DeGreedy"], 2,
                              resume=True)

    def test_algorithms_mismatch(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            pass
        with pytest.raises(JournalMismatchError, match="algorithms"):
            _open(path, resume=True, algorithms=("DeDPO",))

    def test_num_points_mismatch(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with _open(path):
            pass
        with pytest.raises(JournalMismatchError, match="num_points"):
            _open(path, resume=True, num_points=5)


class TestCanonicalForm:
    def test_strips_timing_fields(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, time_s in ((a, 0.123), (b, 9.876)):
            with _open(path) as journal:
                journal.record(
                    (0, "DeDPO"),
                    {"solver": "DeDPO", "status": "ok", "time_s": time_s,
                     "service_time_s": time_s, "build_time_s": time_s,
                     "utility": 4.5},
                )
        assert canonical_bytes(str(a)) == canonical_bytes(str(b))

    def test_detects_decision_differences(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, status in ((a, "ok"), (b, "degraded")):
            with _open(path) as journal:
                journal.record(
                    (0, "DeDPO"), {"solver": "DeDPO", "status": status}
                )
        assert canonical_bytes(str(a)) != canonical_bytes(str(b))

    def test_strip_timing_helper(self):
        row = {"solver": "DeDPO", "time_s": 1.0, "peak_mem_kb": 5, "utility": 2}
        assert strip_timing(row) == {"solver": "DeDPO", "utility": 2}
