"""Tests for the budget-factor rule of Section 5.1."""

import numpy as np
import pytest

from repro.core import InvalidInstanceError
from repro.datagen.budgets import (
    min_event_distance_per_user,
    pairwise_manhattan_mid,
    sample_budgets,
)


class TestMid:
    def test_two_points(self):
        # distances: 10; mid = (10 + 10) / 2 = 10
        assert pairwise_manhattan_mid(np.array([[0, 0], [4, 6]])) == 10

    def test_three_points(self):
        # pairwise distances: 2, 10, 8 -> (10 + 2) / 2 = 6
        locs = np.array([[0, 0], [1, 1], [5, 5]])
        assert pairwise_manhattan_mid(locs) == 6

    def test_single_point_zero(self):
        assert pairwise_manhattan_mid(np.array([[3, 3]])) == 0.0


class TestMinDistance:
    def test_basic(self):
        users = np.array([[0, 0], [10, 10]])
        events = np.array([[1, 0], [9, 9]])
        assert list(min_event_distance_per_user(users, events)) == [1, 2]

    def test_chunking_consistent(self):
        rng = np.random.default_rng(3)
        users = rng.integers(0, 50, size=(5000, 2))
        events = rng.integers(0, 50, size=(20, 2))
        mins = min_event_distance_per_user(users, events)
        # spot-check a few against a direct computation
        for u in [0, 1234, 4999]:
            direct = np.abs(users[u] - events).sum(axis=1).min()
            assert mins[u] == direct


class TestSampleBudgets:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        users = rng.integers(0, 40, size=(300, 2))
        events = rng.integers(0, 40, size=(15, 2))
        return rng, users, events

    def test_uniform_lower_bound_guarantees_round_trip(self):
        rng, users, events = self._setup()
        budgets = sample_budgets(rng, users, events, budget_factor=2.0)
        mins = min_event_distance_per_user(users, events)
        # floor() can shave at most 1 below 2*min; the generator floors
        # a value >= 2*min, and 2*min is an even integer here, so:
        assert (budgets >= 2 * mins).all()

    def test_budget_factor_scales_budgets(self):
        rng, users, events = self._setup()
        low = sample_budgets(np.random.default_rng(1), users, events, 0.5)
        high = sample_budgets(np.random.default_rng(1), users, events, 10.0)
        assert high.mean() > low.mean() * 2

    def test_zero_factor_gives_exact_round_trip_budgets(self):
        rng, users, events = self._setup()
        budgets = sample_budgets(np.random.default_rng(2), users, events, 0.0)
        mins = min_event_distance_per_user(users, events)
        assert (budgets == (2 * mins).astype(int)).all()

    def test_normal_spec(self):
        rng, users, events = self._setup()
        budgets = sample_budgets(np.random.default_rng(4), users, events, 2.0, "normal")
        mins = min_event_distance_per_user(users, events)
        assert (budgets >= 2 * mins).all()
        assert np.issubdtype(budgets.dtype, np.integer)

    def test_rejects_negative_factor(self):
        rng, users, events = self._setup()
        with pytest.raises(InvalidInstanceError):
            sample_budgets(rng, users, events, -1.0)

    def test_unknown_spec(self):
        rng, users, events = self._setup()
        with pytest.raises(InvalidInstanceError):
            sample_budgets(rng, users, events, 1.0, "gamma")

    def test_integral(self):
        rng, users, events = self._setup()
        budgets = sample_budgets(rng, users, events, 2.0)
        assert np.issubdtype(budgets.dtype, np.integer)
