"""Tests for multi-seed sweep aggregation."""

import math

import pytest

from repro.datagen import SyntheticConfig
from repro.experiments.aggregate import (
    AggregateResult,
    replicate_synthetic_points,
    run_replicated,
)
from repro.experiments.harness import SweepResult

BASE = SyntheticConfig(num_events=6, num_users=12, mean_capacity=3, grid_size=15)


def fake_result(axis_value, solver, utility, time_s=0.5):
    result = SweepResult(axis="x")
    result.rows.append(
        {
            "axis_value": axis_value,
            "solver": solver,
            "utility": utility,
            "time_s": time_s,
        }
    )
    return result


class TestAggregateResult:
    def test_record_and_rows(self):
        agg = AggregateResult(axis="x", seeds=[1, 2])
        agg.record(fake_result(10, "A", 5.0))
        agg.record(fake_result(10, "A", 7.0))
        rows = agg.rows("utility")
        assert rows == [
            {
                "axis_value": 10,
                "solver": "A",
                "n": 2,
                "mean": 6.0,
                "std": pytest.approx(math.sqrt(2), abs=1e-4),
                "min": 5.0,
                "max": 7.0,
            }
        ]

    def test_single_sample_std_zero(self):
        agg = AggregateResult(axis="x", seeds=[1])
        agg.record(fake_result(1, "A", 3.0))
        assert agg.rows("utility")[0]["std"] == 0.0

    def test_missing_metric_skipped(self):
        agg = AggregateResult(axis="x", seeds=[1])
        agg.record(fake_result(1, "A", 3.0))
        assert agg.rows("peak_mem_kb") == []

    def test_mean_series_ordering(self):
        agg = AggregateResult(axis="x", seeds=[1])
        agg.record(fake_result(10, "A", 1.0))
        agg.record(fake_result(20, "A", 2.0))
        agg.record(fake_result(10, "B", 3.0))
        series = agg.mean_series("utility")
        assert series["A"] == [1.0, 2.0]
        assert series["B"][0] == 3.0
        assert math.isnan(series["B"][1])


class TestReplicatedRuns:
    def test_points_inject_seed_and_axis(self):
        points = replicate_synthetic_points(BASE, "num_events", [4, 8], seed=7)
        inst = points[1].build()
        assert inst.num_events == 8
        assert "s7" in inst.name

    def test_run_replicated_end_to_end(self):
        agg = run_replicated(
            BASE,
            axis="num_events",
            values=[4, 8],
            algorithms=["DeGreedy", "DeDPO"],
            seeds=[1, 2, 3],
        )
        rows = agg.rows("utility")
        # 2 axis values x 2 algorithms
        assert len(rows) == 4
        assert all(row["n"] == 3 for row in rows)
        # more events -> more utility, on average
        by_key = {(r["axis_value"], r["solver"]): r["mean"] for r in rows}
        assert by_key[(8, "DeDPO")] > by_key[(4, "DeDPO")]

    def test_seed_noise_is_visible(self):
        agg = run_replicated(
            BASE,
            axis="num_events",
            values=[6],
            algorithms=["DeGreedy"],
            seeds=[1, 2, 3, 4],
        )
        row = agg.rows("utility")[0]
        assert row["std"] > 0.0  # different seeds, different instances
