"""Tests for the local-search improvement pass (extension, EX-ABL5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DeGreedy, RatioGreedy, make_solver
from repro.algorithms.local_search import local_search
from repro.algorithms.ratio_greedy import greedy_augment
from repro.core import Planning, validate_planning
from repro.datagen import SyntheticConfig, generate_instance
from tests.conftest import grid_instance


class TestMoves:
    def test_replace_upgrades_schedule(self):
        """Replacement fixes what +RG cannot: a taken seat, better option.

        One user holds a low-utility event; a non-conflicting event with
        higher utility exists but chaining both busts the budget, so
        'add' fails — only a replacement improves.
        """
        inst = grid_instance(
            # v0 near (west), low utility; v1 far (east), high utility.
            # round trips: v0 = 4, v1 = 20; chain = 2 + 12 + 10 = 24.
            [((-2, 0), 1, 0, 10), ((10, 0), 1, 20, 30)],
            [((0, 0), 21)],
            [[0.2], [0.9]],
        )
        planning = Planning(inst)
        planning.add_pair(0, 0)  # stuck at the poor event
        assert greedy_augment(planning)["pairs_added"] == 0  # +RG can't help
        counters = local_search(planning)
        validate_planning(planning)
        assert counters["replacements"] == 1
        assert planning.as_dict() == {0: [1]}
        assert planning.total_utility() == pytest.approx(0.9)

    def test_transfer_reassigns_to_better_user(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.3, 0.9]],
        )
        planning = Planning(inst)
        planning.add_pair(0, 0)
        counters = local_search(planning)
        validate_planning(planning)
        assert counters["transfers"] == 1
        assert planning.as_dict() == {1: [0]}

    def test_add_moves_counted(self, small_synthetic):
        planning = Planning(small_synthetic)  # empty start
        counters = local_search(planning)
        assert counters["adds"] == planning.total_arranged_pairs()
        validate_planning(planning)

    def test_fixed_point_terminates_early(self, small_synthetic):
        planning = Planning(small_synthetic)
        local_search(planning)
        second = local_search(planning, max_passes=10)
        # an immediate re-run finds nothing and stops after one pass
        assert second["passes"] == 1
        assert second["adds"] == second["replacements"] == second["transfers"] == 0


class TestSolverWrapper:
    def test_never_worse_than_base(self, small_synthetic):
        for base_name in ("RatioGreedy", "DeGreedy", "DeDPO"):
            base = make_solver(base_name).solve(small_synthetic).total_utility()
            improved = make_solver(f"{base_name}+LS").solve(small_synthetic)
            validate_planning(improved)
            assert improved.total_utility() >= base - 1e-9

    def test_never_worse_than_rg_augment(self, small_synthetic):
        """LS's move set contains +RG's, from the same starting point."""
        rg = make_solver("DeGreedy+RG").solve(small_synthetic).total_utility()
        ls = make_solver("DeGreedy+LS").solve(small_synthetic).total_utility()
        assert ls >= rg - 1e-9

    def test_counters_exposed(self, small_synthetic):
        solver = make_solver("DeGreedy+LS")
        solver.solve(small_synthetic)
        assert "ls_passes" in solver.counters
        assert "base_utility_milli" in solver.counters

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), cr=st.sampled_from([0.0, 0.5, 1.0]))
    def test_feasible_and_monotone_random(self, seed, cr):
        inst = generate_instance(
            SyntheticConfig(
                num_events=8, num_users=12, mean_capacity=3,
                conflict_ratio=cr, grid_size=20, seed=seed,
            )
        )
        base = RatioGreedy().solve(inst)
        before = base.total_utility()
        local_search(base)
        validate_planning(base)
        assert base.total_utility() >= before - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bounded_by_optimum(self, seed):
        from repro.algorithms import ExactSolver

        inst = generate_instance(
            SyntheticConfig(
                num_events=5, num_users=4, mean_capacity=2, grid_size=12, seed=seed
            )
        )
        opt = ExactSolver().solve(inst).total_utility()
        ls = make_solver("DeGreedy+LS").solve(inst).total_utility()
        assert ls <= opt + 1e-9
