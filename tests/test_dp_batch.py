"""Batched Step-1 layer (`repro.algorithms.dp_batch`) — bit-identity suite.

The batcher's contract is structural: deferral only happens when the
sequential pick is forced, the frontier merge is the scalar kernel
shared with ``dp_single``, and flushed assignments replay in strict
user order.  These tests race the batched path against the forced
per-user path (``dp_batch.FORCE_PER_USER``) and the ``*-seed`` golden
twins over randomized and degenerate configurations, poison the arena
between runs, and pin the kernel's schedules to per-user ``dp_single``
calls on the same static views.
"""

import math

import numpy as np
import pytest

from repro.algorithms import make_solver
from repro.algorithms.dp_batch import Step1Batcher, dp_batch_group
from repro.algorithms import dp_batch
from repro.algorithms.base import warm_instance
from repro.algorithms.dp_single import dp_single
from repro.algorithms.greedy_single import greedy_single
from repro.core import instrument
from repro.datagen import SyntheticConfig, generate_instance

#: Solvers whose Step 1 routes through the batch kernel.
BATCHED_SOLVERS = ("DeDP", "DeDPO")

#: 20 randomized configurations (disjoint seed band from the golden
#: suite) spanning capacity, conflict, budget and utility space.
CONFIGS = [
    SyntheticConfig(
        seed=seed,
        num_events=8 + (seed * 3) % 7,
        num_users=20 + (seed * 7) % 21,
        mean_capacity=2 + seed % 5,
        grid_size=20 + (seed * 5) % 30,
        conflict_ratio=(seed % 4) * 0.2,
        budget_factor=1.0 + (seed % 3),
        capacity_distribution=("uniform", "normal")[seed % 2],
        utility_distribution=("uniform", "normal", "power:0.5")[seed % 3],
    )
    for seed in range(200, 220)
]

#: Degenerate shapes the batcher must survive: users with empty
#: candidate sets (budgets too small for any round trip), a contended
#: single-copy regime (margin fails constantly), and a two-user
#: instance (the smallest one the batcher accepts).
DEGENERATE_CONFIGS = [
    SyntheticConfig(seed=300, num_events=10, num_users=24, mean_capacity=3,
                    grid_size=40, budget_factor=0.01, name="starved-budgets"),
    SyntheticConfig(seed=301, num_events=6, num_users=40, mean_capacity=1,
                    grid_size=25, name="single-copy-contended"),
    SyntheticConfig(seed=302, num_events=9, num_users=2, mean_capacity=4,
                    grid_size=30, name="two-users"),
]


def _ids(config):
    return config.name or f"seed{config.seed}"


@pytest.fixture
def force_per_user(monkeypatch):
    """Context the forced path runs under (restored automatically)."""

    def force(enabled=True):
        monkeypatch.setattr(dp_batch, "FORCE_PER_USER", enabled)

    return force


def _solve_fresh(config, solver_name, forced=False):
    """Planning from a cold instance (no warm engine state leaks in)."""
    instance = generate_instance(config)
    old = dp_batch.FORCE_PER_USER
    dp_batch.FORCE_PER_USER = forced
    try:
        return make_solver(solver_name).solve(instance)
    finally:
        dp_batch.FORCE_PER_USER = old


@pytest.mark.parametrize("config", CONFIGS, ids=_ids)
@pytest.mark.parametrize("solver", BATCHED_SOLVERS)
def test_batched_matches_forced_scalar_and_seed(config, solver):
    """Batched vs forced-sequential vs seed twin: identical schedules."""
    batched = _solve_fresh(config, solver)
    forced = _solve_fresh(config, solver, forced=True)
    seed = _solve_fresh(config, f"{solver}-seed")
    assert batched.as_dict() == forced.as_dict()
    assert batched.as_dict() == seed.as_dict()
    assert batched.total_utility() == seed.total_utility()


@pytest.mark.parametrize("config", DEGENERATE_CONFIGS, ids=_ids)
@pytest.mark.parametrize("solver", BATCHED_SOLVERS)
def test_degenerate_shapes_match(config, solver):
    batched = _solve_fresh(config, solver)
    forced = _solve_fresh(config, solver, forced=True)
    seed = _solve_fresh(config, f"{solver}-seed")
    assert batched.as_dict() == forced.as_dict()
    assert batched.as_dict() == seed.as_dict()


def test_all_users_identical_shape():
    """Every user sharing one candidate shape forms a single group."""
    config = SyntheticConfig(
        seed=303, num_events=8, num_users=30, mean_capacity=4000,
        capacity_distribution="normal", grid_size=1, budget_factor=50.0,
    )
    instance = generate_instance(config)
    warm_instance(instance)
    run = make_solver("DeDPO").run(instance, profile=True)
    assert run.counters.get("dp_batch_users", 0) == instance.num_users
    # grid_size=1 puts everyone at one location with huge budgets, so
    # all users survive Lemma 1 for the same events; the shape count is
    # tiny (utility zeros may still split off a few shapes).
    assert run.counters.get("dp_batch_groups", 0) <= 4
    seed = _solve_fresh(config, "DeDPO-seed")
    assert run.planning.as_dict() == seed.as_dict()


def test_single_dirty_user_batches_as_singleton_group():
    """One dirty user still routes through dp_batch_group (no scalar)."""
    config = SyntheticConfig(
        seed=304, num_events=10, num_users=20, mean_capacity=2000,
        capacity_distribution="normal", grid_size=30,
    )
    instance = generate_instance(config)
    solver = make_solver("DeDPO")
    first = solver.solve(instance)
    engine = instance.arrays().engine()
    # Invalidate exactly one user's memo entry and the whole-solve
    # cache: the re-solve sees one dirty user, everyone else clean.
    engine._solutions.clear()
    del engine.memo._last[("dp", 7)]
    with instrument.profiled(enabled=True) as prof:
        second = make_solver("DeDPO").solve(instance)
    assert second.as_dict() == first.as_dict()
    assert prof.get("sched_cache_misses") == 1
    assert prof.get("dp_batch_users") == 1
    assert prof.get("dp_batch_groups") == 1
    assert prof.get("dp_batch_scalar_users", 0) == 0


def test_arena_poisoning_does_not_leak():
    """Garbage-filled arena slabs must be fully overwritten per call."""
    config = SyntheticConfig(
        seed=305, num_events=12, num_users=40, mean_capacity=25, grid_size=35
    )
    instance = generate_instance(config)
    first = make_solver("DeDPO").solve(instance)
    arrays = instance.arrays()
    arrays.dp_arena().poison()
    engine = arrays.engine()
    engine._solutions.clear()
    engine.memo._last.clear()
    second = make_solver("DeDPO").solve(instance)
    assert second.as_dict() == first.as_dict()


def test_batch_group_matches_per_user_dp_single():
    """dp_batch_group == dp_single per user on the same static views."""
    config = SyntheticConfig(
        seed=306, num_events=14, num_users=25, mean_capacity=30, grid_size=40
    )
    instance = generate_instance(config)
    warm_instance(instance)
    index = instance.arrays().engine().index
    by_shape = {}
    for user_id in range(instance.num_users):
        by_shape.setdefault(index.shapes[user_id], []).append(user_id)
    checked = 0
    for shape, users in by_shape.items():
        batched = dp_batch_group(instance, users, shape)
        for user_id, schedule in zip(users, batched):
            cands, utils = index.static_views[user_id]
            expected = dp_single(
                instance, user_id, list(cands),
                dict(zip(cands, utils)), presorted=True,
            )
            assert schedule == expected
            checked += 1
    assert checked == instance.num_users


def test_infinite_budget_threshold_is_inf():
    """Non-finite budgets take thresh = inf, like the scalar branch."""
    config = SyntheticConfig(
        seed=307, num_events=8, num_users=10, mean_capacity=20, grid_size=30,
        budget_factor=1e6,
    )
    instance = generate_instance(config)
    warm_instance(instance)
    index = instance.arrays().engine().index
    shape = index.shapes[0]
    users = [u for u in range(instance.num_users) if index.shapes[u] == shape]
    schedules = dp_batch_group(instance, users, shape)
    for user_id, schedule in zip(users, schedules):
        cands, utils = index.static_views[user_id]
        assert schedule == dp_single(
            instance, user_id, list(cands), dict(zip(cands, utils)),
            presorted=True,
        )


def test_vectorized_thresh_matches_scalar_nextafter_walk():
    """The arena's budget-cutoff walk pins the same float as math.nextafter."""
    rng = np.random.default_rng(99)
    budgets = rng.uniform(0.5, 50.0, size=200)
    backs = rng.uniform(0.0, 40.0, size=200)

    def scalar_pin(budget, back):
        thresh = budget - back
        while thresh + back > budget:
            thresh = math.nextafter(thresh, -math.inf)
        nxt = math.nextafter(thresh, math.inf)
        while nxt + back <= budget:
            thresh = nxt
            nxt = math.nextafter(nxt, math.inf)
        return thresh

    thresh = budgets - backs
    viol = thresh + backs > budgets
    while viol.any():
        thresh[viol] = np.nextafter(thresh[viol], -math.inf)
        viol[viol] = thresh[viol] + backs[viol] > budgets[viol]
    nxt = np.nextafter(thresh, math.inf)
    grow = nxt + backs <= budgets
    while grow.any():
        thresh[grow] = nxt[grow]
        nxt[grow] = np.nextafter(nxt[grow], math.inf)
        grow[grow] = nxt[grow] + backs[grow] <= budgets[grow]

    for i in range(budgets.size):
        assert thresh[i] == scalar_pin(budgets[i], backs[i])


def test_batcher_rejects_non_dp_scheduler():
    config = SyntheticConfig(
        seed=308, num_events=6, num_users=8, mean_capacity=4, grid_size=20
    )
    instance = generate_instance(config)
    warm_instance(instance)
    engine = instance.arrays().engine()
    free = np.full(instance.num_events, 4, dtype=np.intp)
    with pytest.raises(ValueError):
        Step1Batcher(instance, engine, "greedy", greedy_single, free)


def test_degreedy_never_batches():
    """DeGreedy keeps the sequential scan — no batch counters at all."""
    config = SyntheticConfig(
        seed=309, num_events=10, num_users=30, mean_capacity=20, grid_size=30
    )
    instance = generate_instance(config)
    warm_instance(instance)
    run = make_solver("DeGreedy").run(instance, profile=True)
    assert "dp_batch_users" not in run.counters
    assert "dp_batch_groups" not in run.counters


def test_default_rows_carry_no_batch_counters():
    """Profile counters stay out of default runs (journal byte-identity)."""
    config = SyntheticConfig(
        seed=310, num_events=10, num_users=30, mean_capacity=2000,
        capacity_distribution="normal", grid_size=30,
    )
    instance = generate_instance(config)
    run = make_solver("DeDPO").run(instance)
    assert not any(instrument.is_profile_key(k) for k in run.counters)
    profiled = make_solver("DeDPO").run(generate_instance(config), profile=True)
    assert profiled.counters.get("dp_batch_users", 0) > 0
    assert profiled.counters.get("dp_arena_bytes_peak", 0) > 0
    assert run.planning.as_dict() == profiled.planning.as_dict()


def test_force_per_user_disables_batch_counters(force_per_user):
    config = SyntheticConfig(
        seed=311, num_events=10, num_users=30, mean_capacity=20, grid_size=30
    )
    instance = generate_instance(config)
    warm_instance(instance)
    force_per_user(True)
    run = make_solver("DeDPO").run(instance, profile=True)
    assert "dp_batch_users" not in run.counters
    assert run.counters.get("dp_calls_executed", 0) > 0
