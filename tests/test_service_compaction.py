"""HTTP-level tests of journal snapshot-compaction and disk-fault
degradation (PR 10).

The journal mechanics themselves are covered in
``tests/test_instance_journal.py``; this file exercises the serving
wiring: the ``POST /compact`` maintenance endpoint, the scheduled
``snapshot_every`` cadence, the ``durable`` field on registration and
mutation replies, and ``journal_degraded`` surfacing in ``/healthz``
and ``/stats`` — while the worker keeps answering ``/solve``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core import build_cache
from repro.io import instance_to_dict
from repro.paper_example import build_example_instance
from repro.service import faults
from repro.service.journal import journal_path, replay_journal
from repro.service.server import ServerConfig, make_server


def _start(config: ServerConfig):
    server = make_server(port=0, config=config)
    server.serve_in_thread()
    return server


def _request(server, path, payload=None, timeout=30):
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _mutation(index):
    return {
        "op": "capacity_change",
        "event_id": index % 4,
        "capacity": 2 + index,
    }


@pytest.fixture
def journal_server(tmp_path):
    srv = _start(
        ServerConfig(
            in_process=True, memory_limit_bytes=None,
            journal_dir=str(tmp_path),
        )
    )
    yield srv
    srv.shutdown()
    faults.install_disk(None)


def _register(server):
    status, body = _request(
        server,
        "/instances",
        {"instance": instance_to_dict(build_example_instance())},
    )
    assert status == 200
    return body


class TestCompactEndpoint:
    def test_compact_truncates_to_one_snapshot_record(
        self, journal_server, tmp_path
    ):
        instance_id = _register(journal_server)["instance_id"]
        for seq in range(5):
            status, body = _request(
                journal_server, "/mutate",
                {"instance_id": instance_id, "seq": seq,
                 "mutations": [_mutation(seq)]},
            )
            assert (status, body["durable"]) == (200, True)
        path = journal_path(str(tmp_path), instance_id)
        assert len(open(path).read().splitlines()) == 6  # header + 5

        status, body = _request(
            journal_server, "/compact", {"instance_id": instance_id}
        )
        assert status == 200
        assert body["compacted"] is True
        assert body["journal_degraded"] is False

        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "snapshot"
        # and the snapshot replays to exactly the live state
        live = journal_server.instances.get(instance_id).instance
        recovered = replay_journal(path)
        assert recovered.instance.version == live.version
        assert recovered.last_seq == 4
        assert build_cache.instance_fingerprint(
            recovered.instance
        ) == build_cache.instance_fingerprint(live)
        _, stats = _request(journal_server, "/stats")
        assert stats["journal"]["snapshots"] == 1

    def test_unknown_instance_is_a_404(self, journal_server):
        status, _ = _request(
            journal_server, "/compact", {"instance_id": "inst-nope"}
        )
        assert status == 404

    def test_non_string_instance_id_is_a_400(self, journal_server):
        status, _ = _request(journal_server, "/compact", {"instance_id": 7})
        assert status == 400

    def test_without_journaling_compacted_is_false(self):
        server = _start(ServerConfig(in_process=True, memory_limit_bytes=None))
        try:
            instance_id = _register(server)["instance_id"]
            status, body = _request(
                server, "/compact", {"instance_id": instance_id}
            )
            assert status == 200
            assert body["compacted"] is False
        finally:
            server.shutdown()


class TestSnapshotCadence:
    def test_every_n_batches_compacts_automatically(self, tmp_path):
        server = _start(
            ServerConfig(
                in_process=True, memory_limit_bytes=None,
                journal_dir=str(tmp_path), snapshot_every=3,
            )
        )
        try:
            instance_id = _register(server)["instance_id"]
            path = journal_path(str(tmp_path), instance_id)
            for seq in range(3):
                status, _ = _request(
                    server, "/mutate",
                    {"instance_id": instance_id, "seq": seq,
                     "mutations": [_mutation(seq)]},
                )
                assert status == 200
            lines = open(path).read().splitlines()
            assert len(lines) == 1  # the third batch triggered compaction
            assert json.loads(lines[0])["kind"] == "snapshot"
            _, stats = _request(server, "/stats")
            assert stats["journal"]["snapshots"] == 1
            assert stats["journal"]["snapshot_every"] == 3
            # churn continues on top of the snapshot
            status, body = _request(
                server, "/mutate",
                {"instance_id": instance_id, "seq": 3,
                 "mutations": [_mutation(3)]},
            )
            assert (status, body["durable"]) == (200, True)
            assert replay_journal(path).last_seq == 3
        finally:
            server.shutdown()


class TestDegradedServing:
    """An injected disk fault flips ``journal_degraded`` on, never the
    worker off."""

    def _degrade(self, server, instance_id):
        faults.install_disk(faults.DiskFaultSpec("disk-enospc"))
        status, body = _request(
            server, "/mutate",
            {"instance_id": instance_id, "seq": 0,
             "mutations": [_mutation(0)]},
        )
        return status, body

    def test_mutate_answers_200_but_not_durable(self, journal_server):
        instance_id = _register(journal_server)["instance_id"]
        status, body = self._degrade(journal_server, instance_id)
        assert status == 200
        assert body["durable"] is False
        assert body["version"] >= 1  # the in-memory apply still happened

    def test_healthz_and_stats_surface_the_degradation(self, journal_server):
        instance_id = _register(journal_server)["instance_id"]
        _, healthz = _request(journal_server, "/healthz")
        assert healthz["journal_degraded"] is False
        self._degrade(journal_server, instance_id)
        _, healthz = _request(journal_server, "/healthz")
        assert healthz["journal_degraded"] is True
        _, stats = _request(journal_server, "/stats")
        assert stats["journal_degraded"] is True
        assert stats["journal"]["degraded"] == 1

    def test_degraded_worker_keeps_solving(self, journal_server):
        instance_id = _register(journal_server)["instance_id"]
        self._degrade(journal_server, instance_id)
        status, body = _request(
            journal_server, "/solve",
            {"instance_id": instance_id, "algorithm": "DeDP",
             "deadline_s": 10},
        )
        assert status == 200
        assert body["status"] == "ok"

    def test_compact_on_a_degraded_journal_reports_it(self, journal_server):
        instance_id = _register(journal_server)["instance_id"]
        self._degrade(journal_server, instance_id)
        status, body = _request(
            journal_server, "/compact", {"instance_id": instance_id}
        )
        assert status == 200
        assert body["compacted"] is False
        assert body["journal_degraded"] is True

    def test_registration_reports_durability(self, tmp_path):
        server = _start(
            ServerConfig(
                in_process=True, memory_limit_bytes=None,
                journal_dir=str(tmp_path),
            )
        )
        try:
            assert _register(server)["durable"] is True
            faults.install_disk(faults.DiskFaultSpec("disk-eio"))
            assert _register(server)["durable"] is False
        finally:
            server.shutdown()
            faults.install_disk(None)
