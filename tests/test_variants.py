"""Tests for the Remark 1 / Remark 2 problem variants."""

import pytest

from repro.algorithms import DeDPO, ExactSolver, RatioGreedy
from repro.core import InvalidInstanceError, validate_planning
from repro.variants import apply_participation_fees, restrict_candidate_sets
from tests.conftest import grid_instance


@pytest.fixture
def inst():
    return grid_instance(
        [((2, 0), 2, 0, 10), ((4, 0), 2, 10, 20), ((6, 0), 2, 20, 30)],
        [((0, 0), 100), ((8, 0), 100)],
        [[0.9, 0.6], [0.8, 0.7], [0.7, 0.8]],
    )


class TestCandidateSets:
    def test_schedules_respect_candidate_sets(self, inst):
        restricted = restrict_candidate_sets(inst, {0: [0], 1: [1, 2]})
        for solver in (RatioGreedy(), DeDPO()):
            planning = solver.solve(restricted)
            validate_planning(planning)
            assert set(planning.schedule_of(0)) <= {0}
            assert set(planning.schedule_of(1)) <= {1, 2}

    def test_unrestricted_users_keep_everything(self, inst):
        restricted = restrict_candidate_sets(inst, {0: [0]})
        assert restricted.utility(2, 1) == inst.utility(2, 1)

    def test_original_instance_untouched(self, inst):
        restrict_candidate_sets(inst, {0: []})
        assert inst.utility(0, 0) == 0.9

    def test_empty_candidate_set_means_no_events(self, inst):
        restricted = restrict_candidate_sets(inst, {0: []})
        planning = DeDPO().solve(restricted)
        assert len(planning.schedule_of(0)) == 0

    def test_rejects_unknown_ids(self, inst):
        with pytest.raises(InvalidInstanceError):
            restrict_candidate_sets(inst, {9: [0]})
        with pytest.raises(InvalidInstanceError):
            restrict_candidate_sets(inst, {0: [99]})

    def test_reduction_matches_direct_filtering(self, inst):
        """Optimal on the reduced instance == optimal with hard filter."""
        restricted = restrict_candidate_sets(inst, {0: [0, 1], 1: [2]})
        opt = ExactSolver().solve(restricted)
        # the optimum over the restricted universe, computed directly:
        # u0 can take events 0, 1 (0.9 + 0.8), u1 takes 2 (0.8)
        assert opt.total_utility() == pytest.approx(0.9 + 0.8 + 0.8)


class TestParticipationFees:
    def test_fee_consumes_budget(self):
        inst = grid_instance(
            [((2, 0), 1, 0, 10)], [((0, 0), 10)], [[0.9]]
        )
        # travel round trip 4; fee 5 -> total 9 <= 10 still fine
        cheap = apply_participation_fees(inst, {0: 5})
        assert RatioGreedy().solve(cheap).total_arranged_pairs() == 1
        # fee 7 -> total 11 > 10: priced out
        pricey = apply_participation_fees(inst, {0: 7})
        assert RatioGreedy().solve(pricey).total_arranged_pairs() == 0

    def test_fee_charged_once_per_event(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 20, 30)],
            [((0, 0), 100)],
            [[0.9], [0.9]],
        )
        feed = apply_participation_fees(inst, {0: 10, 1: 20})
        planning = DeDPO().solve(feed)
        schedule = planning.schedule_of(0)
        # travel u->1->2->u = 1+1+2 = 4, fees 30 -> 34
        assert schedule.total_cost(feed) == 34

    def test_missing_events_charge_nothing(self, inst):
        feed = apply_participation_fees(inst, {1: 3})
        assert feed.cost_uv(0, 0) == inst.cost_uv(0, 0)
        assert feed.cost_uv(0, 1) == inst.cost_uv(0, 1) + 3

    def test_return_leg_unchanged(self, inst):
        feed = apply_participation_fees(inst, {0: 9})
        assert feed.cost_vu(0, 0) == inst.cost_vu(0, 0)

    def test_rejects_negative_fee(self, inst):
        with pytest.raises(InvalidInstanceError):
            apply_participation_fees(inst, {0: -1})

    def test_rejects_unknown_event(self, inst):
        with pytest.raises(InvalidInstanceError):
            apply_participation_fees(inst, {42: 1})

    def test_solvers_feasible_with_fees(self, small_synthetic):
        feed = apply_participation_fees(
            small_synthetic, {v: v % 4 for v in range(small_synthetic.num_events)}
        )
        for solver in (RatioGreedy(), DeDPO()):
            validate_planning(solver.solve(feed))

    def test_zero_fees_identity(self, inst):
        feed = apply_participation_fees(inst, {})
        a = DeDPO().solve(inst)
        b = DeDPO().solve(feed)
        assert a.as_dict() == b.as_dict()


class TestVariantComposition:
    def test_shortlists_and_fees_compose(self, inst):
        """Remark 1 + Remark 2 stack into one instance."""
        combined = apply_participation_fees(
            restrict_candidate_sets(inst, {0: [0, 1]}), {0: 3}
        )
        planning = DeDPO().solve(combined)
        validate_planning(planning)
        assert set(planning.schedule_of(0)) <= {0, 1}
        # fee is visible through the composed cost model
        assert combined.cost_uv(0, 0) == inst.cost_uv(0, 0) + 3

    def test_fees_raise_measured_conflicts_never(self, inst):
        """Fees touch budgets, not temporal structure."""
        feed = apply_participation_fees(inst, {0: 50, 1: 50})
        assert feed.measured_conflict_ratio() == inst.measured_conflict_ratio()

    def test_monotonicity_in_fees(self, small_synthetic):
        """Higher fees can only reduce achievable utility."""
        lo = apply_participation_fees(
            small_synthetic, {v: 1 for v in range(small_synthetic.num_events)}
        )
        hi = apply_participation_fees(
            small_synthetic, {v: 50 for v in range(small_synthetic.num_events)}
        )
        # compare the single-user optimum of a few users (DP is exact,
        # so monotonicity must hold user by user)
        from repro.algorithms import dp_single

        for user_id in range(0, small_synthetic.num_users, 7):
            utilities = {
                v: small_synthetic.utility(v, user_id)
                for v in range(small_synthetic.num_events)
            }
            candidates = [v for v, mu in utilities.items() if mu > 0]
            lo_util = sum(
                utilities[v] for v in dp_single(lo, user_id, candidates, utilities)
            )
            hi_util = sum(
                utilities[v] for v in dp_single(hi, user_id, candidates, utilities)
            )
            assert hi_util <= lo_util + 1e-9
