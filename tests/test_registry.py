"""Tests for the solver registry and public package surface."""

import pytest

import repro
from repro.algorithms import (
    PAPER_ALGORITHMS,
    SCALABLE_ALGORITHMS,
    available_solvers,
    make_solver,
)


class TestRegistry:
    def test_paper_algorithms_are_the_six_figure_legends(self):
        assert PAPER_ALGORITHMS == [
            "RatioGreedy", "DeDP", "DeDPO", "DeDPO+RG", "DeGreedy", "DeGreedy+RG",
        ]

    def test_scalable_excludes_dedp(self):
        assert "DeDP" not in SCALABLE_ALGORITHMS
        assert set(SCALABLE_ALGORITHMS) < set(available_solvers())

    def test_make_solver_each_name(self):
        for name in available_solvers():
            solver = make_solver(name)
            assert solver.name == name

    def test_make_solver_returns_fresh_instances(self):
        assert make_solver("DeDPO") is not make_solver("DeDPO")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_solver("SimulatedAnnealing")


class TestPublicAPI:
    def test_top_level_exports(self):
        for name in (
            "USEPInstance", "Event", "User", "TimeInterval",
            "SyntheticConfig", "generate_instance",
            "build_city_instance", "make_solver", "validate_planning",
        ):
            assert hasattr(repro, name), name

    def test_all_list_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__
