"""Per-instance journal: durability format, replay, torn-tail tolerance.

The unit half of the crash-recovery contract (the process-level half
lives in tests/test_multiworker.py): journals replay deterministically,
tolerate exactly the corruption a SIGKILL can cause, and refuse
everything worse.
"""

import json
import os

import pytest

from repro.core import build_cache
from repro.core.deltas import apply_mutation
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    mutation_from_dict,
    mutation_to_dict,
)
from repro.paper_example import build_example_instance
from repro.service import faults
from repro.service.checkpoint import JournalMismatchError
from repro.service.journal import (
    COMPACT_SUFFIX,
    InstanceJournal,
    content_sha256,
    journal_path,
    recover_all,
    replay_journal,
)

MUTATIONS = [
    {"op": "utility_change", "user_id": 0, "event_id": 1, "utility": 0.95},
    {"op": "capacity_change", "event_id": 0, "capacity": 1},
    {"op": "utility_change", "user_id": 2, "event_id": 0, "utility": 0.11},
]


def _canonical_example():
    """The example instance as a *registration* would hold it.

    A real registration decodes the client's JSON, so the stored
    instance carries the wire canonicalisation (floats, not the
    builder's ints).  Fingerprint comparisons against a replayed
    journal must start from the same canonical form.
    """
    return instance_from_dict(instance_to_dict(build_example_instance()))


def _journal_with_batches(tmp_path, batches, seqs=None):
    """Create a journal, apply+append ``batches`` against a live twin."""
    instance = _canonical_example()
    journal = InstanceJournal.create(
        str(tmp_path), "inst-000000", instance_to_dict(instance)
    )
    for index, batch in enumerate(batches):
        wire = []
        for entry in batch:
            mutation = mutation_from_dict(entry, "test")
            apply_mutation(instance, mutation)
            wire.append(mutation_to_dict(mutation))
        seq = seqs[index] if seqs is not None else index
        journal.append_mutations(wire, seq, instance.version)
    journal.close()
    return journal.path, instance


class TestRoundTrip:
    def test_replay_matches_live_instance(self, tmp_path):
        path, live = _journal_with_batches(
            tmp_path, [MUTATIONS[:2], MUTATIONS[2:]]
        )
        recovered = replay_journal(path)
        assert recovered.instance_id == "inst-000000"
        assert recovered.batches == 2
        assert recovered.mutations == 3
        assert recovered.last_seq == 1
        assert recovered.instance.version == live.version
        assert build_cache.instance_fingerprint(
            recovered.instance
        ) == build_cache.instance_fingerprint(live)

    def test_replay_twice_is_deterministic(self, tmp_path):
        """The determinism satellite: two replays, one fingerprint."""
        path, _ = _journal_with_batches(tmp_path, [MUTATIONS])
        first = replay_journal(path)
        second = replay_journal(path)
        fp_first = build_cache.instance_fingerprint(first.instance)
        fp_second = build_cache.instance_fingerprint(second.instance)
        assert fp_first is not None
        assert fp_first == fp_second
        assert instance_to_dict(first.instance) == instance_to_dict(
            second.instance
        )

    def test_empty_journal_is_just_the_registration(self, tmp_path):
        instance = build_example_instance()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-000007", instance_to_dict(instance)
        )
        journal.close()
        recovered = replay_journal(journal.path)
        assert recovered.batches == 0
        assert recovered.last_seq is None
        assert recovered.instance.version == instance.version

    def test_delete_removes_the_file(self, tmp_path):
        instance = build_example_instance()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-gone", instance_to_dict(instance)
        )
        assert os.path.exists(journal.path)
        journal.delete()
        assert not os.path.exists(journal.path)


class TestSeqDedupe:
    def test_duplicate_seq_replays_once(self, tmp_path):
        """A batch journalled twice (crash between fsync and ack, client
        retried) must apply once on replay."""
        instance = build_example_instance()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-000000", instance_to_dict(instance)
        )
        mutation = mutation_from_dict(MUTATIONS[1], "test")
        apply_mutation(instance, mutation)
        wire = [mutation_to_dict(mutation)]
        journal.append_mutations(wire, 0, instance.version)
        # the retried duplicate: same seq, same batch, stale version tag
        journal._handle.write(
            json.dumps(
                {"kind": "mutate", "mutations": wire, "seq": 0,
                 "version": instance.version}
            ) + "\n"
        )
        journal.close()
        recovered = replay_journal(journal.path)
        assert recovered.mutations == 1
        assert recovered.instance.version == instance.version

    def test_unsequenced_batches_always_apply(self, tmp_path):
        path, live = _journal_with_batches(
            tmp_path, [[MUTATIONS[0]], [MUTATIONS[1]]], seqs=[None, None]
        )
        recovered = replay_journal(path)
        assert recovered.mutations == 2
        assert recovered.last_seq is None
        assert recovered.instance.version == live.version


class TestCorruption:
    def test_torn_final_line_is_tolerated(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [MUTATIONS[:2]])
        with open(path, "a") as handle:
            handle.write('{"kind": "mutate", "mutations": [{"op"')
        recovered = replay_journal(path)
        assert recovered.batches == 1  # the torn batch never happened

    def test_torn_interior_line_fails_loudly(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [[MUTATIONS[0]]])
        lines = open(path).read().splitlines()
        lines.insert(1, '{"kind": "mutate", "mut')
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatchError, match="torn record"):
            replay_journal(path)

    def test_header_hash_mismatch_fails(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [])
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["instance"]["events"][0]["capacity"] += 1  # silent edit
        lines[0] = json.dumps(header)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatchError, match="hash mismatch"):
            replay_journal(path)

    def test_missing_header_fails(self, tmp_path):
        path = journal_path(str(tmp_path), "inst-headless")
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "mutate", "mutations": []}) + "\n")
        with pytest.raises(JournalMismatchError, match="no header"):
            replay_journal(path)

    def test_wrong_version_fails(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [])
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        # keep the content hash honest so only the version trips
        header["content_sha256"] = content_sha256(header["instance"])
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
        with pytest.raises(JournalMismatchError, match="version"):
            replay_journal(path)

    def test_version_divergence_fails(self, tmp_path):
        """A mutate record whose post-batch version disagrees with the
        replayed instance means journal/state divergence."""
        path, _ = _journal_with_batches(tmp_path, [[MUTATIONS[0]]])
        lines = open(path).read().splitlines()
        record = json.loads(lines[1])
        record["version"] += 7
        lines[1] = json.dumps(record)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatchError, match="replay reached"):
            replay_journal(path)


class TestCorruptionBeyondTornTail:
    """Corruption shapes a tear cannot explain must fail *structured*
    (JournalMismatchError), never crash the replay with a raw
    AttributeError/KeyError a worker boot would trip over."""

    def test_corrupted_header_with_valid_suffix_fails(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [[MUTATIONS[0]]])
        lines = open(path).read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # header itself torn
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatchError, match="torn record"):
            replay_journal(path)

    def test_header_replaced_by_garbage_bytes_fails(self, tmp_path):
        path, _ = _journal_with_batches(tmp_path, [])
        with open(path, "w") as handle:
            handle.write("\x00\x01garbage that is not json\n")
        with pytest.raises(JournalMismatchError, match="no header"):
            replay_journal(path)

    def test_non_object_record_mid_file_fails_structured(self, tmp_path):
        """A decodable-but-not-a-dict line (a spliced array) must raise
        the structured error, not AttributeError on ``.get``."""
        path, _ = _journal_with_batches(tmp_path, [[MUTATIONS[0]]])
        lines = open(path).read().splitlines()
        lines.insert(1, "[1, 2, 3]")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatchError, match="not a JSON object"):
            replay_journal(path)

    def test_non_object_record_never_crashes_recover_all(self, tmp_path):
        with open(journal_path(str(tmp_path), "inst-weird"), "w") as handle:
            handle.write('"just a string"\n')
        recovered, failures = recover_all(str(tmp_path))
        assert recovered == []
        assert len(failures) == 1


class TestSnapshotCompaction:
    def _compacted(self, tmp_path, extra_batches=()):
        """Journal with two batches, compacted, plus optional suffix."""
        instance = _canonical_example()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-000000", instance_to_dict(instance)
        )
        seq = 0
        for batch in ([MUTATIONS[0]], [MUTATIONS[1]]):
            wire = []
            for entry in batch:
                mutation = mutation_from_dict(entry, "test")
                apply_mutation(instance, mutation)
                wire.append(mutation_to_dict(mutation))
            assert journal.append_mutations(wire, seq, instance.version)
            seq += 1
        assert journal.compact(
            instance_to_dict(instance), seq - 1, instance.version
        )
        for batch in extra_batches:
            wire = []
            for entry in batch:
                mutation = mutation_from_dict(entry, "test")
                apply_mutation(instance, mutation)
                wire.append(mutation_to_dict(mutation))
            assert journal.append_mutations(wire, seq, instance.version)
            seq += 1
        journal.close()
        return journal.path, instance, seq - 1

    def test_compacted_replay_is_bit_identical(self, tmp_path):
        path, live, last_seq = self._compacted(tmp_path)
        recovered = replay_journal(path)
        assert recovered.batches == 0  # the prefix is gone
        assert recovered.last_seq == last_seq
        assert recovered.instance.version == live.version
        assert instance_to_dict(recovered.instance) == instance_to_dict(live)
        assert build_cache.instance_fingerprint(
            recovered.instance
        ) == build_cache.instance_fingerprint(live)

    def test_compaction_bounds_the_file_to_one_record(self, tmp_path):
        path, _, _ = self._compacted(tmp_path)
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "snapshot"

    def test_mutations_after_snapshot_replay_on_top(self, tmp_path):
        path, live, last_seq = self._compacted(
            tmp_path, extra_batches=[[MUTATIONS[2]]]
        )
        recovered = replay_journal(path)
        assert recovered.batches == 1
        assert recovered.last_seq == last_seq
        assert recovered.instance.version == live.version
        assert instance_to_dict(recovered.instance) == instance_to_dict(live)

    def test_compacted_equals_uncompacted_replay(self, tmp_path):
        """The bit-identity acceptance: same stream, with and without a
        snapshot in the middle, one fingerprint."""
        plain_path, _ = _journal_with_batches(
            tmp_path, [[MUTATIONS[0]], [MUTATIONS[1]], [MUTATIONS[2]]]
        )
        compact_dir = tmp_path / "compacted"
        compact_dir.mkdir()
        compacted_path, _, _ = self._compacted(
            compact_dir, extra_batches=[[MUTATIONS[2]]]
        )
        plain = replay_journal(plain_path)
        compacted = replay_journal(compacted_path)
        assert instance_to_dict(plain.instance) == instance_to_dict(
            compacted.instance
        )
        assert plain.instance.version == compacted.instance.version
        assert plain.last_seq == compacted.last_seq

    def test_seq_dedupe_survives_compaction(self, tmp_path):
        """A batch retried with a pre-snapshot seq must still dedupe —
        the snapshot carries the high-water mark."""
        path, live, last_seq = self._compacted(tmp_path)
        stale = {
            "kind": "mutate",
            "mutations": [MUTATIONS[0]],
            "seq": last_seq,  # at the snapshot's high-water mark
            "version": live.version + 1,
        }
        with open(path, "a") as handle:
            handle.write(json.dumps(stale) + "\n")
        recovered = replay_journal(path)
        assert recovered.mutations == 0
        assert recovered.instance.version == live.version

    def test_crash_mid_truncate_leaves_old_journal_valid(self, tmp_path):
        """A scratch ``.compact`` file next to an intact journal (crash
        before the atomic rename) is ignored by recovery."""
        path, live = _journal_with_batches(tmp_path, [[MUTATIONS[0]]])
        scratch = path + COMPACT_SUFFIX
        with open(scratch, "w") as handle:
            handle.write('{"kind": "snapshot", "version": 1')  # torn scratch
        recovered, failures = recover_all(str(tmp_path))
        assert failures == []
        assert len(recovered) == 1
        assert recovered[0].instance.version == live.version
        assert os.path.exists(scratch)  # recovery does not touch it

    def test_snapshot_without_instance_version_fails(self, tmp_path):
        path, _, _ = self._compacted(tmp_path)
        record = json.loads(open(path).read())
        del record["instance_version"]
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(JournalMismatchError, match="instance_version"):
            replay_journal(path)

    def test_snapshot_hash_mismatch_fails(self, tmp_path):
        path, _, _ = self._compacted(tmp_path)
        record = json.loads(open(path).read())
        record["instance"]["events"][0]["capacity"] += 1
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(JournalMismatchError, match="hash mismatch"):
            replay_journal(path)

    def test_delete_removes_scratch_too(self, tmp_path):
        instance = build_example_instance()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-gone", instance_to_dict(instance)
        )
        scratch = journal.path + COMPACT_SUFFIX
        with open(scratch, "w") as handle:
            handle.write("stale\n")
        journal.delete()
        assert not os.path.exists(journal.path)
        assert not os.path.exists(scratch)


class TestDiskFaultDegradation:
    """Injected disk faults flip the journal to a structured degraded
    state; they never raise into the caller and never corrupt what was
    already durable."""

    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        faults.install_disk(None)

    def _create(self, tmp_path):
        instance = _canonical_example()
        journal = InstanceJournal.create(
            str(tmp_path), "inst-000000", instance_to_dict(instance)
        )
        return journal, instance

    def _one_batch(self, instance):
        mutation = mutation_from_dict(MUTATIONS[0], "test")
        apply_mutation(instance, mutation)
        return [mutation_to_dict(mutation)]

    @pytest.mark.parametrize("kind", ["disk-eio", "disk-enospc", "disk-torn"])
    def test_fault_degrades_instead_of_raising(self, tmp_path, kind):
        faults.install_disk(faults.DiskFaultSpec(kind, after_writes=1))
        journal, instance = self._create(tmp_path)  # header = write 0
        assert journal.degraded is None
        wire = self._one_batch(instance)
        assert journal.append_mutations(wire, 0, instance.version) is False
        assert journal.degraded is not None
        # degradation is one-way: later appends are silent no-ops
        assert journal.append_mutations(wire, 1, instance.version) is False
        journal.close()

    @pytest.mark.parametrize(
        ("kind", "replayed_batches"),
        [
            # fsync EIO: bytes reached the file, durability is merely
            # unacknowledged — replay may legitimately see the batch.
            ("disk-eio", 2),
            # ENOSPC: the write itself failed; nothing extra on disk.
            ("disk-enospc", 1),
            # torn: half a record on disk = the tail the replay tolerates.
            ("disk-torn", 1),
        ],
    )
    def test_durable_prefix_still_replays(self, tmp_path, kind, replayed_batches):
        faults.install_disk(faults.DiskFaultSpec(kind, after_writes=2))
        journal, instance = self._create(tmp_path)
        wire = self._one_batch(instance)
        assert journal.append_mutations(wire, 0, instance.version) is True
        wire2 = self._one_batch(instance)
        assert journal.append_mutations(wire2, 1, instance.version) is False
        journal.close()
        faults.install_disk(None)
        # Whatever the kind, everything *acknowledged* as durable (seq 0)
        # survives, and replay is structured — never an exception.
        recovered = replay_journal(journal.path)
        assert recovered.batches == replayed_batches
        assert recovered.last_seq == replayed_batches - 1

    def test_enospc_at_creation_never_raises(self, tmp_path):
        faults.install_disk(faults.DiskFaultSpec("disk-enospc"))
        journal, instance = self._create(tmp_path)
        assert journal.degraded is not None
        wire = self._one_batch(instance)
        assert journal.append_mutations(wire, 0, instance.version) is False
        journal.close()

    def test_compaction_fault_keeps_old_journal(self, tmp_path):
        journal, instance = self._create(tmp_path)
        wire = self._one_batch(instance)
        assert journal.append_mutations(wire, 0, instance.version)
        before = open(journal.path).read()
        faults.install_disk(faults.DiskFaultSpec("disk-eio"))
        assert journal.compact(
            instance_to_dict(instance), 0, instance.version
        ) is False
        assert journal.degraded is not None
        journal.close()
        faults.install_disk(None)
        assert open(journal.path).read() == before  # rename never happened
        recovered = replay_journal(journal.path)
        assert recovered.batches == 1


class TestRecoverAll:
    def test_recovers_every_journal_sorted(self, tmp_path):
        for name in ("inst-000002", "inst-000000", "inst-000001"):
            instance = build_example_instance()
            InstanceJournal.create(
                str(tmp_path), name, instance_to_dict(instance)
            ).close()
        recovered, failures = recover_all(str(tmp_path))
        assert [r.instance_id for r in recovered] == [
            "inst-000000", "inst-000001", "inst-000002",
        ]
        assert failures == []

    def test_one_corrupt_journal_is_not_fatal(self, tmp_path):
        instance = build_example_instance()
        InstanceJournal.create(
            str(tmp_path), "inst-good", instance_to_dict(instance)
        ).close()
        with open(journal_path(str(tmp_path), "inst-bad"), "w") as handle:
            handle.write("not json at all\nmore garbage\n")
        recovered, failures = recover_all(str(tmp_path))
        assert [r.instance_id for r in recovered] == ["inst-good"]
        assert len(failures) == 1
        assert "inst-bad" in failures[0]

    def test_missing_directory_is_empty(self, tmp_path):
        recovered, failures = recover_all(str(tmp_path / "never-created"))
        assert (recovered, failures) == ([], [])

    def test_non_journal_files_are_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        recovered, failures = recover_all(str(tmp_path))
        assert (recovered, failures) == ([], [])
