"""Cross-module integration tests: every solver on every workload family.

These run the complete pipeline (generator -> instance -> solver ->
validator) across the workload families the paper evaluates and assert
the invariants that should hold regardless of scale:

* every planning satisfies all four constraints;
* solvers are deterministic (same instance -> same planning);
* DeDP == DeDPO everywhere;
* +RG variants dominate their base solver;
* the qualitative quality ordering the paper reports.
"""

import pytest

from repro.algorithms import PAPER_ALGORITHMS, make_solver
from repro.core import validate_planning
from repro.datagen import SyntheticConfig, generate_instance
from repro.ebsn import CityConfig, build_city_instance

WORKLOADS = {
    "uniform": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30, seed=2
    ),
    "power-utilities": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30,
        utility_distribution="power:0.5", seed=2,
    ),
    "high-conflict": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30,
        conflict_ratio=0.75, seed=2,
    ),
    "tight-budgets": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30,
        budget_factor=0.5, seed=2,
    ),
    "normal-everything": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30,
        capacity_distribution="normal", budget_distribution="normal",
        utility_distribution="normal", seed=2,
    ),
    "timed-travel": SyntheticConfig(
        num_events=12, num_users=30, mean_capacity=4, grid_size=30,
        speed=5.0, seed=2,
    ),
}


def _build(name):
    if name == "ebsn-city":
        return build_city_instance(CityConfig(name="mini", num_events=12, num_users=30))
    return generate_instance(WORKLOADS[name])


ALL_WORKLOADS = list(WORKLOADS) + ["ebsn-city"]


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
class TestEverySolverOnEveryWorkload:
    def test_all_solvers_feasible(self, workload):
        inst = _build(workload)
        for name in PAPER_ALGORITHMS:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)

    def test_solvers_deterministic(self, workload):
        inst = _build(workload)
        for name in PAPER_ALGORITHMS:
            a = make_solver(name).solve(inst).as_dict()
            b = make_solver(name).solve(inst).as_dict()
            assert a == b, f"{name} nondeterministic on {workload}"

    def test_dedp_equals_dedpo(self, workload):
        inst = _build(workload)
        assert (
            make_solver("DeDP").solve(inst).as_dict()
            == make_solver("DeDPO").solve(inst).as_dict()
        )

    def test_rg_variants_dominate_base(self, workload):
        inst = _build(workload)
        for base, plus in (("DeDPO", "DeDPO+RG"), ("DeGreedy", "DeGreedy+RG")):
            base_util = make_solver(base).solve(inst).total_utility()
            plus_util = make_solver(plus).solve(inst).total_utility()
            assert plus_util >= base_util - 1e-9


class TestQualityOrdering:
    """The paper's headline ordering, aggregated over seeds for robustness."""

    def test_dedpo_rg_beats_ratio_greedy_in_aggregate(self):
        total_best, total_rg = 0.0, 0.0
        for seed in range(5):
            inst = generate_instance(
                SyntheticConfig(
                    num_events=15, num_users=50, mean_capacity=5,
                    grid_size=40, seed=seed,
                )
            )
            total_best += make_solver("DeDPO+RG").solve(inst).total_utility()
            total_rg += make_solver("RatioGreedy").solve(inst).total_utility()
        assert total_best > total_rg

    def test_dedpo_beats_degreedy_in_aggregate(self):
        total_dp, total_dg = 0.0, 0.0
        for seed in range(5):
            inst = generate_instance(
                SyntheticConfig(
                    num_events=15, num_users=50, mean_capacity=5,
                    grid_size=40, conflict_ratio=0.5, seed=seed,
                )
            )
            total_dp += make_solver("DeDPO").solve(inst).total_utility()
            total_dg += make_solver("DeGreedy").solve(inst).total_utility()
        assert total_dp >= total_dg


class TestInstanceReuseAcrossSolvers:
    def test_solvers_do_not_mutate_instance(self):
        inst = generate_instance(
            SyntheticConfig(num_events=10, num_users=20, mean_capacity=3, seed=4)
        )
        before_mu = inst.utility_matrix().copy()
        before_budgets = [u.budget for u in inst.users]
        for name in PAPER_ALGORITHMS:
            make_solver(name).solve(inst)
        assert (inst.utility_matrix() == before_mu).all()
        assert [u.budget for u in inst.users] == before_budgets
