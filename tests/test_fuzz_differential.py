"""Differential fuzzing of every registry solver (repro.verify.fuzz).

Three layers:

* a fixed-seed campaign over every registry algorithm (``*-seed`` twins
  included) must come back clean — oracle-verified outputs, bit-identical
  kernel/seed plannings, certified 1/2-approximation on small instances;
* deliberately broken solvers (capacity overflow, budget overrun,
  utility inflation) injected via ``extra_solvers`` must be caught,
  shrunk to a minimal config, and dumped as a JSON repro that
  :func:`repro.verify.fuzz.replay` reproduces from the file alone;
* the campaign must be exactly reproducible from its seed.
"""

import dataclasses
import json

from repro.algorithms.base import Solver
from repro.algorithms.decomposed import DeGreedy
from repro.core.planning import Planning
from repro.verify import fuzz
from repro.verify.fuzz import (
    FuzzFinding,
    config_from_dict,
    default_algorithms,
    random_config,
    run_fuzz,
    shrink_config,
)

#: Instances per clean-campaign test run; CI's time-boxed job and the
#: acceptance run push this to 200+, the unit test keeps tier-1 fast.
CLEAN_INSTANCES = 60


class TestCleanCampaign:
    def test_all_registry_algorithms_fuzz_clean(self):
        report = run_fuzz(seed=20260806, max_instances=CLEAN_INSTANCES)
        assert report.ok, report.summary()
        assert report.instances_run == CLEAN_INSTANCES
        # every registry solver except the size-capped Exact participates
        assert "Exact" not in report.algorithms
        for twin in ("DeDP-seed", "DeDPO-seed", "DeGreedy-seed"):
            assert twin in report.algorithms

    def test_campaign_is_seed_reproducible(self):
        rng_a, rng_b = (fuzz.random.Random(99), fuzz.random.Random(99))
        configs_a = [random_config(rng_a) for _ in range(10)]
        configs_b = [random_config(rng_b) for _ in range(10)]
        assert configs_a == configs_b

    def test_time_budget_boxes_the_campaign(self):
        report = run_fuzz(seed=3, max_instances=10_000, time_budget_s=0.0)
        assert report.instances_run <= 1
        assert report.ok

    def test_nothing_written_on_success(self, tmp_path):
        out = tmp_path / "repro.json"
        report = run_fuzz(seed=5, max_instances=5, out_path=str(out))
        assert report.ok
        assert not out.exists()


# ----------------------------------------------------------------------
# sabotaged solvers: the harness must catch each constraint violation
# ----------------------------------------------------------------------


class _OverCapacitySolver(Solver):
    """Seats every user at event 0, ignoring capacity/budget/utility."""

    name = "BrokenCapacity"

    def solve(self, instance):
        planning = Planning(instance)
        if instance.num_events:
            for user_id in range(instance.num_users):
                try:
                    planning.add_pair(0, user_id)
                except Exception:
                    pass
        return planning


class _LyingPlanning(Planning):
    """Reports one utility unit more than its schedules are worth."""

    def total_utility(self):
        return super().total_utility() + 1.0


class _UtilityInflationSolver(Solver):
    """Feasible planning whose reported utility is silently inflated."""

    name = "BrokenOmega"

    def solve(self, instance):
        planning = DeGreedy().solve(instance)
        lying = _LyingPlanning(instance)
        lying.schedules = planning.schedules
        lying._occupancy = planning._occupancy
        return lying


class _NonTwinSolver(Solver):
    """Claims to be DeGreedy's kernel twin but returns an empty planning."""

    name = "DeGreedy"

    def solve(self, instance):
        return Planning(instance)


class TestBrokenSolversAreCaught:
    def test_capacity_violation_caught_and_shrunk(self, tmp_path):
        out = tmp_path / "fuzz_failure.json"
        report = run_fuzz(
            seed=1,
            max_instances=200,
            algorithms=["DeGreedy"],
            extra_solvers={"BrokenCapacity": _OverCapacitySolver},
            certify=False,
            out_path=str(out),
        )
        assert not report.ok
        assert any(f.kind.startswith("oracle") for f in report.findings)
        assert any(f.solver == "BrokenCapacity" for f in report.findings)
        # shrinking only ever simplifies
        assert report.shrunk_config is not None
        assert report.shrunk_config.num_events <= report.failing_config.num_events
        assert report.shrunk_config.num_users <= report.failing_config.num_users

        # the JSON repro is complete and replayable from the file alone
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["master_seed"] == 1
        assert payload["shrunk_config"]["num_events"] >= 1
        assert payload["findings"]
        replayed = fuzz.replay(
            str(out),
            algorithms=["DeGreedy"],
            extra_solvers={"BrokenCapacity": _OverCapacitySolver},
            certify=False,
        )
        assert any(f.kind.startswith("oracle") for f in replayed)

    def test_omega_inflation_caught(self):
        report = run_fuzz(
            seed=2,
            max_instances=100,
            algorithms=["DeGreedy"],
            extra_solvers={"BrokenOmega": _UtilityInflationSolver},
            certify=False,
            shrink=False,
        )
        assert not report.ok
        assert any(
            f.solver == "BrokenOmega" and f.kind == "oracle:omega"
            for f in report.findings
        )

    def test_twin_divergence_caught(self):
        # an (empty) impostor under the kernel's name diverges from the
        # seed twin on any instance where DeGreedy arranges a pair
        report = run_fuzz(
            seed=4,
            max_instances=100,
            algorithms=["DeGreedy-seed"],
            extra_solvers={"DeGreedy": _NonTwinSolver},
            certify=False,
            shrink=False,
        )
        assert not report.ok
        assert any(f.kind == "twin" for f in report.findings)

    def test_replay_without_extra_solver_is_clean(self, tmp_path):
        """A repro whose bug lived in an unregistered solver replays clean
        when that solver is not re-supplied — the registry itself is fine."""
        out = tmp_path / "fuzz_failure.json"
        run_fuzz(
            seed=1,
            max_instances=200,
            algorithms=["DeGreedy"],
            extra_solvers={"BrokenCapacity": _OverCapacitySolver},
            certify=False,
            out_path=str(out),
        )
        assert fuzz.replay(str(out), algorithms=["DeGreedy"], certify=False) == []


class TestShrinking:
    def test_shrink_reaches_a_fixpoint(self):
        config = random_config(fuzz.random.Random(11)).with_overrides(
            num_events=10, num_users=12
        )
        shrunk, findings = shrink_config(
            config,
            ["DeGreedy"],
            extra_solvers={"BrokenCapacity": _OverCapacitySolver},
            certify=False,
        )
        assert findings, "sabotage must reproduce on the shrunk config"
        # fixpoint: shrinking the result again changes nothing
        again, _ = shrink_config(
            shrunk,
            ["DeGreedy"],
            extra_solvers={"BrokenCapacity": _OverCapacitySolver},
            certify=False,
        )
        assert dataclasses.asdict(again) == dataclasses.asdict(shrunk)

    def test_clean_config_is_not_shrunk(self):
        config = random_config(fuzz.random.Random(12))
        shrunk, findings = shrink_config(config, ["DeGreedy"], certify=False)
        assert findings == []
        assert shrunk == config


class TestConfigRoundTrip:
    def test_config_json_round_trip(self):
        config = random_config(fuzz.random.Random(13))
        data = json.loads(json.dumps(dataclasses.asdict(config)))
        assert config_from_dict(data) == config

    def test_unknown_keys_ignored(self):
        config = random_config(fuzz.random.Random(14))
        data = dataclasses.asdict(config)
        data["not_a_field"] = 1
        assert config_from_dict(data) == config


def test_default_algorithms_cover_registry_minus_exact():
    from repro.algorithms.registry import available_solvers

    names = default_algorithms()
    assert "Exact" not in names
    assert set(names) == set(available_solvers()) - {"Exact"}


def test_finding_serialisation():
    finding = FuzzFinding("X", "oracle:budget", "boom")
    assert finding.to_dict() == {
        "solver": "X",
        "kind": "oracle:budget",
        "message": "boom",
    }


# ----------------------------------------------------------------------
# churn mode: the dynamic-layer differential fuzzer
# ----------------------------------------------------------------------


class TestChurnFuzz:
    def test_clean_churn_campaign(self):
        report = fuzz.run_churn_fuzz(seed=606, streams=4, mutations_per_stream=10)
        assert report.ok, report.summary()
        assert report.mode == "churn"
        assert report.instances_run == 4
        assert list(report.algorithms) == list(fuzz.CHURN_ALGORITHMS)

    def test_streams_are_seed_reproducible(self):
        config = random_config(fuzz.random.Random(21)).with_overrides(
            num_events=6, num_users=8
        )
        stream_a = fuzz.generate_churn_stream(config, fuzz.random.Random(5), 12)
        stream_b = fuzz.generate_churn_stream(config, fuzz.random.Random(5), 12)
        assert stream_a == stream_b

    def test_time_budget_boxes_the_campaign(self):
        report = fuzz.run_churn_fuzz(
            seed=3, streams=10_000, mutations_per_stream=5, time_budget_s=0.0
        )
        assert report.instances_run <= 1
        assert report.ok

    def test_broken_invalidation_is_caught_shrunk_and_replayable(
        self, tmp_path, monkeypatch
    ):
        # Sabotage the staleness machinery: a no-op note_mutation leaves
        # the whole-solve replay cache keyed on the stale content token,
        # so delta solves replay pre-mutation plannings.  The churn
        # fuzzer must catch the divergence, shrink the stream, and dump
        # a repro that replays from the file alone.
        from repro.core.candidates import IncrementalEngine

        out = tmp_path / "churn_failure.json"
        with monkeypatch.context() as patch:
            patch.setattr(IncrementalEngine, "note_mutation", lambda self: None)
            report = fuzz.run_churn_fuzz(
                seed=9, streams=30, mutations_per_stream=15, out_path=str(out)
            )
            assert not report.ok
            assert all(f.kind.startswith("churn") for f in report.findings)
            assert report.failing_mutations
            assert report.shrunk_mutations is not None
            assert len(report.shrunk_mutations) <= len(report.failing_mutations)

            payload = json.loads(out.read_text())
            assert payload["mode"] == "churn"
            assert payload["mutations"]
            assert payload["shrunk_mutations"]
            # replays (bug still in place) and reproduces the finding
            assert fuzz.replay(str(out))
        # bug removed: the same artifact replays clean
        assert fuzz.replay(str(out)) == []

    def test_mutations_invalid_for_shrunk_stream_are_skipped(self):
        # A shrunk subsequence can reference ids its removed prefix
        # would have created; the checker skips those instead of dying.
        from repro.core.deltas import BudgetChange, DropUser
        from repro.datagen import SyntheticConfig

        config = SyntheticConfig(num_events=2, num_users=2, seed=1)

        findings = fuzz.fuzz_churn(
            config,
            [DropUser(1), DropUser(0), BudgetChange(1, 5.0)],
            algorithms=["DeGreedy"],
        )
        assert findings == []
