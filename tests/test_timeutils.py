"""Unit tests for time intervals and temporal predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import InvalidInstanceError, TimeInterval
from repro.core.timeutils import conflict_ratio, intervals_feasible, sort_by_end


class TestTimeInterval:
    def test_valid_interval(self):
        iv = TimeInterval(1, 4)
        assert iv.start == 1
        assert iv.end == 4
        assert iv.duration == 3

    def test_rejects_empty_interval(self):
        with pytest.raises(InvalidInstanceError):
            TimeInterval(5, 5)

    def test_rejects_inverted_interval(self):
        with pytest.raises(InvalidInstanceError):
            TimeInterval(5, 3)

    def test_overlap_detection(self):
        assert TimeInterval(0, 10).overlaps(TimeInterval(5, 15))
        assert TimeInterval(5, 15).overlaps(TimeInterval(0, 10))
        assert TimeInterval(0, 10).overlaps(TimeInterval(2, 8))  # containment

    def test_touching_intervals_do_not_overlap(self):
        # The paper allows back-to-back attendance (t2 <= t1).
        a, b = TimeInterval(0, 10), TimeInterval(10, 20)
        assert not a.overlaps(b)
        assert a.precedes(b)
        assert not b.precedes(a)

    def test_gap(self):
        assert TimeInterval(0, 10).gap_to(TimeInterval(15, 20)) == 5
        assert TimeInterval(0, 10).gap_to(TimeInterval(5, 20)) == -5

    def test_shift(self):
        assert TimeInterval(1, 3).shift(10) == TimeInterval(11, 13)

    def test_as_tuple(self):
        assert TimeInterval(2, 7).as_tuple() == (2, 7)

    def test_ordering_is_lexicographic(self):
        assert TimeInterval(1, 5) < TimeInterval(2, 3)
        assert TimeInterval(1, 3) < TimeInterval(1, 5)

    @given(
        s1=st.integers(0, 100), d1=st.integers(1, 50),
        s2=st.integers(0, 100), d2=st.integers(1, 50),
    )
    def test_overlap_is_symmetric(self, s1, d1, s2, d2):
        a = TimeInterval(s1, s1 + d1)
        b = TimeInterval(s2, s2 + d2)
        assert a.overlaps(b) == b.overlaps(a)

    @given(
        s1=st.integers(0, 100), d1=st.integers(1, 50),
        s2=st.integers(0, 100), d2=st.integers(1, 50),
    )
    def test_precedes_implies_no_overlap(self, s1, d1, s2, d2):
        a = TimeInterval(s1, s1 + d1)
        b = TimeInterval(s2, s2 + d2)
        if a.precedes(b) or b.precedes(a):
            assert not a.overlaps(b)
        else:
            assert a.overlaps(b)


class TestFeasibility:
    def test_empty_and_singleton_feasible(self):
        assert intervals_feasible([])
        assert intervals_feasible([TimeInterval(0, 5)])

    def test_ordered_chain_feasible(self):
        chain = [TimeInterval(0, 5), TimeInterval(5, 8), TimeInterval(9, 12)]
        assert intervals_feasible(chain)

    def test_overlapping_chain_infeasible(self):
        chain = [TimeInterval(0, 6), TimeInterval(5, 8)]
        assert not intervals_feasible(chain)


class TestSortByEnd:
    def test_sorts_by_end_then_start(self):
        ivs = [TimeInterval(3, 10), TimeInterval(0, 4), TimeInterval(1, 4)]
        assert sort_by_end(ivs) == [
            TimeInterval(0, 4),
            TimeInterval(1, 4),
            TimeInterval(3, 10),
        ]


class TestConflictRatio:
    def test_no_intervals(self):
        assert conflict_ratio([]) == 0.0
        assert conflict_ratio([TimeInterval(0, 1)]) == 0.0

    def test_all_overlapping(self):
        ivs = [TimeInterval(0, 10)] * 4
        assert conflict_ratio(ivs) == 1.0

    def test_none_overlapping(self):
        ivs = [TimeInterval(10 * i, 10 * i + 5) for i in range(5)]
        assert conflict_ratio(ivs) == 0.0

    def test_half_overlapping(self):
        # 0-1 overlap, 2 is disjoint from both: 1 of 3 pairs conflicts.
        ivs = [TimeInterval(0, 10), TimeInterval(5, 15), TimeInterval(20, 25)]
        assert conflict_ratio(ivs) == pytest.approx(1 / 3)

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 40)),
            min_size=2,
            max_size=30,
        )
    )
    def test_matches_naive_pair_count(self, raw):
        ivs = [TimeInterval(s, s + d) for s, d in raw]
        naive = sum(
            ivs[i].overlaps(ivs[j])
            for i in range(len(ivs))
            for j in range(i + 1, len(ivs))
        )
        expected = naive / (len(ivs) * (len(ivs) - 1) / 2)
        assert conflict_ratio(ivs) == pytest.approx(expected)
