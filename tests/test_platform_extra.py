"""Additional EBSN platform generator behaviour tests."""

import numpy as np
import pytest

from repro.ebsn import generate_platform
from repro.ebsn.platform import compute_utilities


def platform_with(**kwargs):
    defaults = dict(num_users=120, num_events=30, grid_size=80)
    defaults.update(kwargs)
    return generate_platform(np.random.default_rng(11), **defaults)


class TestGroupKnobs:
    def test_explicit_group_count(self):
        platform = platform_with(num_groups=5)
        assert len(platform.groups) == 5
        assert {ev.group_id for ev in platform.events} <= set(range(5))

    def test_default_group_count_scales_with_events(self):
        platform = platform_with(num_events=60)
        assert len(platform.groups) == 20  # num_events // 3

    def test_minimum_one_group(self):
        platform = platform_with(num_events=2)
        assert len(platform.groups) >= 1

    def test_membership_probability_zero_means_no_members(self):
        platform = platform_with(membership_probability=0.0)
        assert all(not user.groups for user in platform.users)

    def test_high_membership_probability_yields_members(self):
        platform = platform_with(membership_probability=1.0)
        joined = sum(1 for user in platform.users if user.groups)
        assert joined > len(platform.users) / 2

    def test_at_most_three_memberships(self):
        platform = platform_with(membership_probability=1.0)
        assert all(len(user.groups) <= 3 for user in platform.users)


class TestVocabularyKnobs:
    def test_restricted_vocabulary(self):
        from repro.ebsn.tags import TAG_VOCABULARY

        platform = platform_with(vocab_size=10)
        allowed = set(TAG_VOCABULARY[:10])
        for user in platform.users:
            assert user.tags <= allowed
        for group in platform.groups:
            assert group.tags <= allowed

    def test_smaller_vocabulary_denser_utilities(self):
        """Fewer tags in play -> more overlap -> denser mu matrix."""
        dense = compute_utilities(platform_with(vocab_size=8))
        sparse = compute_utilities(platform_with(vocab_size=120))
        assert (dense > 0).mean() > (sparse > 0).mean()


class TestTagSizes:
    def test_mean_user_tags_respected(self):
        platform = platform_with(mean_user_tags=8.0)
        sizes = [len(user.tags) for user in platform.users]
        assert np.mean(sizes) == pytest.approx(8.0, rel=0.25)

    def test_single_tag_users(self):
        platform = platform_with(mean_user_tags=1.0)
        assert all(len(user.tags) >= 1 for user in platform.users)


class TestGeography:
    def test_district_spread_controls_clustering(self):
        tight = platform_with(district_spread=0.01, num_groups=3)
        loose = platform_with(district_spread=0.3, num_groups=3)

        def spread_around_districts(platform):
            total = 0.0
            for event in platform.events:
                district = platform.groups[event.group_id].district
                total += abs(event.location[0] - district[0]) + abs(
                    event.location[1] - district[1]
                )
            return total / len(platform.events)

        assert spread_around_districts(tight) < spread_around_districts(loose)

    def test_locations_within_grid(self):
        platform = platform_with(grid_size=50)
        for entity in list(platform.users) + list(platform.events):
            x, y = entity.location
            assert 0 <= x <= 50 and 0 <= y <= 50
