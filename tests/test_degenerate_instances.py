"""Degenerate instances: 0 events, 0 users, all-zero mu, all-inf costs.

`InstanceArrays` and the DPSingle kernel (plus every registry solver)
must handle the empty and saturated corners of the input space without
crashing and with the obviously-correct outputs (empty plannings, zero
utility).  These corners are exactly where array code tends to die
(empty reductions, (0, n) shapes), so they are pinned here — they
complement ``test_edge_cases.py``, which covers weird-but-nonempty
instances.
"""

import math

import numpy as np
import pytest

from repro.algorithms.dp_single import dp_single, dp_single_reference
from repro.algorithms.registry import available_solvers, make_solver
from repro.core.costs import GridCostModel, MatrixCostModel
from repro.core.entities import Event, User
from repro.core.instance import USEPInstance
from repro.core.planning import Planning, validate_planning
from repro.core.timeutils import TimeInterval
from repro.verify.oracle import verify_planning


def make_events(n, capacity=2):
    return [
        Event(
            id=i,
            location=(i, 0),
            capacity=capacity,
            interval=TimeInterval(2 * i, 2 * i + 1),
        )
        for i in range(n)
    ]


def make_users(n, budget=100):
    return [User(id=u, location=(0, 0), budget=budget) for u in range(n)]


@pytest.fixture
def no_events():
    return USEPInstance([], make_users(3), GridCostModel(), np.zeros((0, 3)))


@pytest.fixture
def no_users():
    return USEPInstance(make_events(3), [], GridCostModel(), np.zeros((3, 0)))


@pytest.fixture
def empty():
    return USEPInstance([], [], GridCostModel(), np.zeros((0, 0)))


class TestInstanceArraysDegenerate:
    def test_zero_events_shapes(self, no_events):
        arrays = no_events.arrays()
        assert arrays.vv.shape == (0, 0)
        assert arrays.mu.shape == (0, 3)
        assert arrays.to_events.shape == (3, 0)
        assert arrays.from_events.shape == (3, 0)
        assert arrays.round_trip.shape == (3, 0)
        assert len(arrays.order) == 0
        assert len(arrays.l_index) == 0
        assert arrays.pos_list == []

    def test_zero_users_shapes(self, no_users):
        arrays = no_users.arrays()
        assert arrays.vv.shape == (3, 3)
        assert arrays.mu.shape == (3, 0)
        assert arrays.to_events.shape == (0, 3)
        assert list(arrays.order) == [0, 1, 2]

    def test_fully_empty_shapes(self, empty):
        arrays = empty.arrays()
        assert arrays.vv.shape == (0, 0)
        assert arrays.mu.shape == (0, 0)
        assert arrays.to_events.shape == (0, 0)

    def test_diagnostics_do_not_crash(self, no_events, no_users, empty):
        for inst in (no_events, no_users, empty):
            assert inst.measured_conflict_ratio() == 0.0
            description = inst.describe()
            assert description["positive_utility_fraction"] == 0.0

    def test_arrays_cached_once(self, empty):
        assert empty.arrays() is empty.arrays()


class TestDPSingleDegenerate:
    def test_no_candidates(self, no_events):
        assert dp_single(no_events, 0, [], {}) == []
        assert dp_single_reference(no_events, 0, [], {}) == []

    def test_all_zero_utilities_give_empty_schedule(self):
        inst = USEPInstance(
            make_events(3), make_users(2), GridCostModel(), np.zeros((3, 2))
        )
        utilities = {i: 0.0 for i in range(3)}
        for user_id in range(2):
            assert dp_single(inst, user_id, [0, 1, 2], utilities) == []
            assert dp_single_reference(inst, user_id, [0, 1, 2], utilities) == []

    def test_all_infinite_event_legs_cap_schedules_at_one_event(self):
        """With every event-to-event leg unreachable only single-event
        schedules exist; the kernel and the reference agree on the best."""
        inf = math.inf
        n = 3
        ee = [[inf] * n for _ in range(n)]
        ue = [[1.0] * n, [2.0] * n]
        inst = USEPInstance(
            make_events(n),
            make_users(2, budget=10),
            MatrixCostModel(ee, ue),
            np.full((n, 2), 0.5),
        )
        utilities = {0: 1.0, 1: 3.0, 2: 2.0}
        for user_id in range(2):
            fast = dp_single(inst, user_id, [0, 1, 2], utilities)
            slow = dp_single_reference(inst, user_id, [0, 1, 2], utilities)
            assert fast == slow == [1]  # best single event by utility

    def test_zero_budget_with_free_travel(self):
        """Budget 0 + co-located events: zero-cost schedules are legal."""
        events = [
            Event(
                id=i,
                location=(0, 0),
                capacity=2,
                interval=TimeInterval(2 * i, 2 * i + 1),
            )
            for i in range(2)
        ]
        inst = USEPInstance(
            events, make_users(1, budget=0), GridCostModel(), np.full((2, 1), 0.5)
        )
        utilities = {0: 1.0, 1: 1.0}
        fast = dp_single(inst, 0, [0, 1], utilities)
        slow = dp_single_reference(inst, 0, [0, 1], utilities)
        assert fast == slow == [0, 1]


class TestSolversOnDegenerateInstances:
    @pytest.mark.parametrize("name", sorted(available_solvers()))
    def test_every_solver_handles_empty_corners(
        self, name, no_events, no_users, empty
    ):
        for inst in (no_events, no_users, empty):
            planning = make_solver(name).solve(inst)
            assert planning.total_utility() == 0.0
            assert planning.total_arranged_pairs() == 0
            validate_planning(planning)
            assert verify_planning(inst, planning).ok

    @pytest.mark.parametrize("name", sorted(available_solvers()))
    def test_every_solver_handles_all_zero_utilities(self, name):
        inst = USEPInstance(
            make_events(3), make_users(4), GridCostModel(), np.zeros((3, 4))
        )
        planning = make_solver(name).solve(inst)
        assert planning.total_utility() == 0.0
        assert planning.total_arranged_pairs() == 0
        assert verify_planning(inst, planning).ok

    def test_kernels_match_seeds_on_all_infinite_legs(self):
        inf = math.inf
        n = 4
        ee = [[inf] * n for _ in range(n)]
        ue = [[1.0] * n for _ in range(3)]
        inst = USEPInstance(
            make_events(n),
            make_users(3, budget=10),
            MatrixCostModel(ee, ue),
            np.full((n, 3), 0.5),
        )
        for kernel, twin in (
            ("DeDP", "DeDP-seed"),
            ("DeDPO", "DeDPO-seed"),
            ("DeGreedy", "DeGreedy-seed"),
        ):
            kp = make_solver(kernel).solve(inst)
            sp = make_solver(twin).solve(inst)
            assert kp.total_utility() == sp.total_utility()
            assert kp.as_dict() == sp.as_dict()
            assert verify_planning(inst, kp).ok

    def test_planning_helpers_on_empty_instance(self, empty):
        planning = Planning(empty)
        assert planning.as_dict() == {}
        assert list(planning.iter_pairs()) == []
        validate_planning(planning)


class TestUtilityMatrixShapeGuard:
    def test_flat_empty_utilities_normalized(self):
        """[] for |V| = 0 carries no second dimension; the constructor
        adopts the declared (0, |U|) so dropping the last event
        round-trips through JSON (see repro.core.deltas)."""
        inst = USEPInstance([], make_users(3), GridCostModel(), [])
        assert inst._mu.shape == (0, 3)

    def test_misshaped_nonempty_utilities_rejected(self):
        """A non-empty matrix with the wrong user dimension must
        reject, not broadcast."""
        from repro.core.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            USEPInstance(
                make_events(2), make_users(3), GridCostModel(), [[0.5], [0.5]]
            )

    def test_generator_rejects_empty_dims(self):
        from repro.core.exceptions import InvalidInstanceError
        from repro.datagen import SyntheticConfig, generate_instance

        with pytest.raises(InvalidInstanceError):
            generate_instance(SyntheticConfig(num_events=0, num_users=5))
        with pytest.raises(InvalidInstanceError):
            generate_instance(SyntheticConfig(num_events=5, num_users=0))
