"""Unit tests for the scatter partial-failure policy (PR 10).

These drive :func:`repro.service.scatter.scatter_solve` against a fake
router so the retry / hedge / fair-share scheduler can be exercised
deterministically, without subprocesses or sockets.  The end-to-end
SIGKILL-mid-scatter path lives in ``tests/test_multiworker.py``.
"""

import json
import math
import threading
import time

import pytest

from repro.core.partition import partition_instance
from repro.datagen.clustered import ClusteredConfig, generate_clustered_instance
from repro.io import instance_to_dict
from repro.service import scatter
from repro.service.scatter import (
    DEFAULT_SCATTER_BUDGET_S,
    RPC_SLACK_S,
    ScatterError,
    scatter_solve,
)


class FakeSupervisor:
    def __init__(self, worker_ids):
        self._ids = list(worker_ids)
        self.unhealthy = set()

    def worker_ids(self):
        return list(self._ids)

    def is_healthy(self, worker_id):
        return worker_id not in self.unhealthy

    def mark_unhealthy(self, worker_id):
        self.unhealthy.add(worker_id)


class FakeRouter:
    """Just enough router: affinity fleet, counters, recording proxy.

    ``behavior(index, worker_id, payload)`` decides each subsolve call's
    fate (``index`` is the global call order); the default answers every
    cell instantly with an empty plan, which reconciles and verifies.
    """

    def __init__(self, worker_ids=("w0", "w1", "w2"), behavior=None):
        self.supervisor = FakeSupervisor(worker_ids)
        self.counters = {"partition_retries": 0, "partition_hedges": 0}
        self.calls = []  # (worker_id, payload, timeout_s)
        self.behavior = behavior
        self._lock = threading.Lock()

    def count(self, key, n=1):
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def pick_least_loaded(self, exclude=()):
        for worker_id in self.supervisor.worker_ids():
            if worker_id not in exclude and self.supervisor.is_healthy(
                worker_id
            ):
                return worker_id
        return None

    def proxy(self, worker_id, method, path, body, timeout_s=None):
        assert method == "POST" and path == "/subsolve"
        payload = json.loads(body)
        with self._lock:
            index = len(self.calls)
            self.calls.append((worker_id, payload, timeout_s))
        if self.behavior is not None:
            return self.behavior(index, worker_id, payload)
        return 200, json.dumps({"schedules": {}}).encode()


@pytest.fixture(scope="module")
def instance():
    return generate_clustered_instance(
        ClusteredConfig(num_events=12, num_users=60, num_clusters=4, seed=7)
    )


@pytest.fixture(scope="module")
def payload(instance):
    return {"instance": instance_to_dict(instance)}


def _populated_cells(instance, cells=4):
    partition = partition_instance(instance, cells=cells)
    return len([sub for sub in partition.cells if len(sub.user_ids)])


class TestFairDeadlineShare:
    def test_share_is_budget_over_waves_not_verbatim(
        self, instance, payload, monkeypatch
    ):
        """The PR 10 bugfix: each subsolve gets a fair share of the
        remaining budget, never the client's full ``deadline_s``."""
        monkeypatch.setattr(scatter, "MAX_SCATTER_CONCURRENCY", 2)
        budget = 8.0
        router = FakeRouter()
        status, body = scatter_solve(
            router, dict(payload, deadline_s=budget), cells=4
        )
        assert status == 200 and body["verified"]
        populated = _populated_cells(instance)
        waves = math.ceil(populated / 2)
        assert waves >= 2, "config must force multiple dispatch waves"
        assert len(router.calls) == populated
        for _, sent, timeout_s in router.calls:
            share = sent["deadline_s"]
            assert 0 < share <= budget / waves + 1e-6
            assert timeout_s == pytest.approx(share + RPC_SLACK_S, abs=1e-4)

    def test_default_budget_when_client_names_none(self, instance, payload):
        router = FakeRouter()
        status, _ = scatter_solve(router, dict(payload), cells=4)
        assert status == 200
        for _, sent, _ in router.calls:
            assert 0 < sent["deadline_s"] <= DEFAULT_SCATTER_BUDGET_S

    @pytest.mark.parametrize("bad", ["soon", -1, 0, True, float("inf")])
    def test_malformed_deadline_degrades_to_monolithic(self, payload, bad):
        """A deadline the worker would 400 must raise ScatterError so
        the monolithic path produces the canonical error."""
        with pytest.raises(ScatterError, match="deadline_s"):
            scatter_solve(FakeRouter(), dict(payload, deadline_s=bad), cells=4)


class TestPerCellRetry:
    def test_lost_cell_is_retried_on_alternate_worker(self, payload):
        """One transport death retries the cell elsewhere instead of
        failing the whole scatter."""
        def behavior(index, worker_id, sent):
            if index == 0:
                raise ConnectionError("injected transport loss")
            return 200, json.dumps({"schedules": {}}).encode()

        router = FakeRouter(behavior=behavior)
        status, body = scatter_solve(router, dict(payload), cells=4)
        assert status == 200 and body["verified"]
        assert router.counters["partition_retries"] == 1
        assert body["partition"]["retries"] == 1
        assert body["partition"]["hedges"] == 0
        dead_worker = router.calls[0][0]
        assert dead_worker in router.supervisor.unhealthy
        retried_on = {w for w, _, _ in router.calls[1:]}
        assert retried_on, "retry must have been dispatched"

    def test_non_200_reply_is_retried(self, payload):
        def behavior(index, worker_id, sent):
            if index == 0:
                return 500, b'{"error": "injected"}'
            return 200, json.dumps({"schedules": {}}).encode()

        router = FakeRouter(behavior=behavior)
        status, body = scatter_solve(router, dict(payload), cells=4)
        assert status == 200
        assert router.counters["partition_retries"] == 1
        # An HTTP error is the worker *answering*; health is untouched.
        assert not router.supervisor.unhealthy

    def test_exhausted_retries_raise_scatter_error(self, payload):
        """When every attempt of a cell dies, the scatter gives up and
        the router's caller owns the monolithic fallback."""
        def behavior(index, worker_id, sent):
            raise ConnectionError("injected: whole fleet dark")

        router = FakeRouter(behavior=behavior)
        with pytest.raises(ScatterError):
            scatter_solve(router, dict(payload), cells=4)


class TestHedging:
    def test_straggler_gets_hedged_and_first_reply_wins(self, payload):
        """The first-dispatched cell stalls; once siblings return, a
        hedge twin answers and the response never waits the stall out."""
        stall_s = 1.5

        def behavior(index, worker_id, sent):
            if index == 0:
                time.sleep(stall_s)
            return 200, json.dumps({"schedules": {}}).encode()

        router = FakeRouter(behavior=behavior)
        started = time.monotonic()
        status, body = scatter_solve(router, dict(payload), cells=4)
        elapsed = time.monotonic() - started
        assert status == 200 and body["verified"]
        assert router.counters["partition_hedges"] >= 1
        assert body["partition"]["hedges"] >= 1
        assert body["partition"]["retries"] == 0
        assert elapsed < stall_s, "hedge must beat the straggler"

    def test_fast_fleet_never_hedges(self, payload):
        router = FakeRouter()
        status, body = scatter_solve(router, dict(payload), cells=4)
        assert status == 200
        assert router.counters["partition_hedges"] == 0
        assert body["partition"]["hedges"] == 0
