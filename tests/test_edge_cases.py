"""Edge-case and failure-injection tests across the whole stack.

Weird-but-legal instances that historically break planning code: zero
budgets, all-zero utilities, capacity exceeding the population, every
event at one venue, non-metric cost matrices, colocated users/events.
"""

import math

import pytest

from repro.algorithms import PAPER_ALGORITHMS, ExactSolver, make_solver
from repro.core import (
    Event,
    MatrixCostModel,
    TimeInterval,
    USEPInstance,
    User,
    validate_planning,
)
from tests.conftest import grid_instance


ALL = PAPER_ALGORITHMS


class TestDegenerateUtilities:
    def test_all_zero_utilities_plan_nothing(self):
        inst = grid_instance(
            [((1, 0), 3, 0, 10), ((2, 0), 3, 20, 30)],
            [((0, 0), 100), ((3, 0), 100)],
            [[0.0, 0.0], [0.0, 0.0]],
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            assert planning.total_arranged_pairs() == 0

    def test_single_positive_pair(self):
        inst = grid_instance(
            [((1, 0), 3, 0, 10), ((2, 0), 3, 20, 30)],
            [((0, 0), 100), ((3, 0), 100)],
            [[0.0, 0.0], [0.0, 0.3]],
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            assert planning.as_dict() == {1: [1]}, name


class TestDegenerateBudgets:
    def test_zero_budget_user_attends_colocated_event_only(self):
        # user sits exactly at the venue: round trip costs 0.
        inst = grid_instance(
            [((0, 0), 2, 0, 10), ((5, 0), 2, 20, 30)],
            [((0, 0), 0)],
            [[0.9], [0.9]],
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)
            assert planning.as_dict() == {0: [0]}, name

    def test_nobody_can_afford_anything(self):
        inst = grid_instance(
            [((50, 50), 2, 0, 10)],
            [((0, 0), 3), ((1, 1), 5)],
            [[0.9, 0.9]],
        )
        for name in ALL:
            assert make_solver(name).solve(inst).total_arranged_pairs() == 0


class TestDegenerateShapes:
    def test_single_event_single_user(self):
        inst = grid_instance([((1, 0), 1, 0, 10)], [((0, 0), 10)], [[0.7]])
        for name in ALL:
            planning = make_solver(name).solve(inst)
            assert planning.total_utility() == pytest.approx(0.7), name

    def test_capacity_exceeds_population(self):
        inst = grid_instance(
            [((1, 0), 99, 0, 10)],
            [((0, 0), 10), ((2, 0), 10), ((1, 1), 10)],
            [[0.5, 0.6, 0.7]],
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)
            assert planning.occupancy(0) == 3, name

    def test_all_events_one_venue_one_timeline(self):
        """Colocated sequential events: zero inter-event travel."""
        inst = grid_instance(
            [((5, 5), 1, i * 10, i * 10 + 10) for i in range(4)],
            [((0, 0), 20), ((9, 9), 20)],
            [[0.5, 0.6]] * 4,
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)
            # round trip to the venue is 20/16; once there, chaining all
            # four events is free, so seats split between the users.
            assert planning.total_arranged_pairs() == 4, name

    def test_identical_twin_users(self):
        """Two users with identical everything: deterministic tie-break."""
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((0, 0), 10)],
            [[0.5, 0.5]],
        )
        for name in ALL:
            a = make_solver(name).solve(inst).as_dict()
            b = make_solver(name).solve(inst).as_dict()
            assert a == b, name


class TestNonMetricCosts:
    """Matrix cost models need not satisfy the triangle inequality.

    The paper assumes metric costs, but the implementation must stay
    *feasible* (never crash, never violate constraints) on non-metric
    inputs even if quality guarantees are void.
    """

    def _non_metric_instance(self):
        events = [
            Event(id=i, location=(0, 0), capacity=1, interval=TimeInterval(10 * i, 10 * i + 5))
            for i in range(3)
        ]
        users = [User(id=0, location=(0, 0), budget=30)]
        # Going 0 -> 2 directly costs 25; via 1 it costs 2. Non-metric.
        ee = [
            [0.0, 1.0, 25.0],
            [math.inf, 0.0, 1.0],
            [math.inf, math.inf, 0.0],
        ]
        ue = [[2.0, 3.0, 4.0]]
        model = MatrixCostModel(ee, ue)
        return USEPInstance(events, users, model, [[0.5], [0.6], [0.7]])

    def test_all_solvers_feasible_on_non_metric(self):
        inst = self._non_metric_instance()
        for name in ALL:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)

    def test_exact_handles_non_metric(self):
        inst = self._non_metric_instance()
        planning = ExactSolver().solve(inst)
        validate_planning(planning)
        # taking all three via the cheap middle hop: 2+1+1+4 = 8 <= 30
        assert planning.total_utility() == pytest.approx(1.8)


class TestExtremeConflict:
    def test_every_event_overlaps(self):
        inst = grid_instance(
            [((i, 0), 2, 0, 100) for i in range(5)],
            [((0, 0), 50), ((1, 1), 50)],
            [[0.5, 0.6]] * 5,
        )
        for name in ALL:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)
            assert all(len(s) <= 1 for s in planning.schedules), name

    def test_chain_of_back_to_back_events(self):
        """t2 == t1 everywhere: the whole chain is attendable."""
        inst = grid_instance(
            [((0, 0), 1, i, i + 1) for i in range(6)],
            [((0, 0), 10)],
            [[0.5]] * 6,
        )
        planning = make_solver("DeDPO").solve(inst)
        assert len(planning.schedule_of(0)) == 6
