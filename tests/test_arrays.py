"""Tests for the array-backed compute layer (repro.core.arrays)."""

import math

import numpy as np
import pytest

from repro.algorithms import make_solver
from repro.core.arrays import InstanceArrays, get_arrays
from repro.datagen import SyntheticConfig, generate_instance


@pytest.fixture(scope="module")
def inst():
    return generate_instance(
        SyntheticConfig(
            seed=3, num_events=10, num_users=25, mean_capacity=4, grid_size=25
        )
    )


class TestMatrices:
    def test_vv_matches_scalar_accessor(self, inst):
        arrays = inst.arrays()
        for i in range(inst.num_events):
            for j in range(inst.num_events):
                assert arrays.vv[i, j] == inst.cost_vv(i, j)
                assert arrays.vv_rows[i][j] == inst.cost_vv(i, j)

    def test_mu_matches_utility(self, inst):
        arrays = inst.arrays()
        for i in range(inst.num_events):
            for u in range(inst.num_users):
                assert arrays.mu[i, u] == inst.utility(i, u)

    def test_user_cost_matrices_match_rows(self, inst):
        arrays = inst.arrays()
        for u in range(inst.num_users):
            assert arrays.to_events[u].tolist() == inst.costs_to_events(u)
            assert arrays.from_events[u].tolist() == inst.costs_from_events(u)
        np.testing.assert_array_equal(
            arrays.round_trip, arrays.to_events + arrays.from_events
        )

    def test_conflicts_are_inf(self, inst):
        arrays = inst.arrays()
        for i in range(inst.num_events):
            for j in range(inst.num_events):
                ei, ej = inst.events[i], inst.events[j]
                if i != j and ej.start < ei.end:
                    assert math.isinf(arrays.vv[i, j])


class TestOrdering:
    def test_order_pos_inverse(self, inst):
        arrays = inst.arrays()
        assert sorted(arrays.order.tolist()) == list(range(inst.num_events))
        for slot, event_id in enumerate(arrays.order.tolist()):
            assert arrays.pos[event_id] == slot
            assert arrays.pos_list[event_id] == slot

    def test_order_sorted_by_end_time(self, inst):
        arrays = inst.arrays()
        ends = [inst.events[i].end for i in arrays.order.tolist()]
        assert ends == sorted(ends)

    def test_l_index_is_equation_4(self, inst):
        """l_i counts predecessors ending at or before event i starts."""
        arrays = inst.arrays()
        order = arrays.order.tolist()
        for slot, event_id in enumerate(order):
            start = inst.events[event_id].start
            expected = sum(
                1 for other in order[:slot] if inst.events[other].end <= start
            )
            # Equation (4)'s l_i is a prefix length: all events in
            # order[:l_i] end at or before the start of event i.
            l_i = arrays.l_index[arrays.pos[event_id]]
            assert l_i <= slot
            assert all(
                inst.events[order[k]].end <= start for k in range(l_i)
            )
            assert l_i == expected


class TestCaching:
    def test_get_arrays_cached_on_instance(self, inst):
        assert get_arrays(inst) is get_arrays(inst)
        assert inst.arrays() is get_arrays(inst)

    def test_fresh_instance_builds_lazily(self):
        fresh = generate_instance(
            SyntheticConfig(seed=4, num_events=6, num_users=8, mean_capacity=3)
        )
        assert fresh._arrays is None
        arrays = fresh.arrays()
        assert isinstance(arrays, InstanceArrays)
        assert fresh._arrays is arrays


class TestUncachedUserCosts:
    """cache_user_costs=False keeps its bounded-memory contract."""

    @pytest.fixture(scope="class")
    def uncached(self):
        return generate_instance(
            SyntheticConfig(
                seed=3,
                num_events=10,
                num_users=25,
                mean_capacity=4,
                grid_size=25,
                cache_user_costs=False,
            )
        )

    def test_no_user_matrices(self, uncached):
        arrays = uncached.arrays()
        assert arrays.to_events is None
        assert arrays.from_events is None
        assert arrays.round_trip is None

    def test_user_cost_rows_still_served(self, uncached, inst):
        for u in range(uncached.num_users):
            to_row, from_row = uncached.arrays().user_cost_rows(u)
            assert to_row == inst.costs_to_events(u)
            assert from_row == inst.costs_from_events(u)

    @pytest.mark.parametrize("name", ["DeDP", "DeDPO", "DeGreedy"])
    def test_solvers_identical_without_cache(self, uncached, inst, name):
        cached_planning = make_solver(name).solve(inst)
        uncached_planning = make_solver(name).solve(uncached)
        assert cached_planning.as_dict() == uncached_planning.as_dict()
        assert cached_planning.total_utility() == uncached_planning.total_utility()
