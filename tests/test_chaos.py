"""Chaos suite: every recovery path of the service layer, end to end.

Each test injects seeded faults (crash / hang / corrupted plan /
transient exception / memory blow-up) into a real ``run_sweep`` and
asserts that the sweep completes with the correct per-cell
``status``/``degraded_to`` fields, that every reported plan passed the
independent oracle, and that recovery decisions are deterministic under
a fixed fault seed — down to byte-identical canonical journals.
"""

import pytest

from repro.datagen import SyntheticConfig, generate_instance
from repro.experiments import SweepPoint, run_sweep
from repro.service import faults
from repro.service.checkpoint import canonical_bytes, load_rows, strip_timing
from repro.service.executor import fork_supported
from repro.service.faults import FaultPlan, FaultSpec
from repro.service.runner import ServiceConfig
from repro.verify import verify_schedules

pytestmark = pytest.mark.skipif(
    not fork_supported(), reason="chaos suite requires os.fork supervision"
)


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.install(None)


def chaos_points(n=4):
    def builder(seed):
        return lambda: generate_instance(
            SyntheticConfig(
                num_events=6, num_users=10, mean_capacity=3, grid_size=15,
                seed=seed,
            )
        )

    return [SweepPoint(axis_value=seed, build=builder(seed)) for seed in range(n)]


#: One fault of every kind, spread over the DeDPO/DeGreedy chaos grid.
CHAOS_FAULTS = {
    (0, "DeDPO"): FaultSpec("crash", -1),
    (1, "DeDPO"): FaultSpec("hang", -1),
    (2, "DeDPO"): FaultSpec("corrupt", -1),
    (3, "DeDPO"): FaultSpec("transient", 1),
    (1, "DeGreedy"): FaultSpec("memory", -1),
}

#: Service config the chaos sweeps run under: tight deadline (hangs are
#: cut fast), no backoff sleep, breaker disabled so every planned fault
#: actually executes.
CHAOS_CONFIG = ServiceConfig(
    timeout=5.0,
    ladder=("DeDPO+RG", "RatioGreedy"),
    max_retries=2,
    base_delay_s=0.0,
    breaker_threshold=0,
)


def run_chaos_sweep(seed=7, journal=None, resume=False, jobs=None,
                    hang_seconds=30.0):
    faults.install(FaultPlan(CHAOS_FAULTS, seed=seed, hang_seconds=hang_seconds))
    try:
        return run_sweep(
            "seed",
            chaos_points(4),
            ["DeDPO", "DeGreedy"],
            measure_memory=False,
            service=CHAOS_CONFIG,
            journal=journal,
            resume=resume,
            jobs=jobs,
        )
    finally:
        faults.install(None)


def rows_by_cell(result):
    return {(row["axis_value"], row["solver"]): row for row in result.rows}


class TestChaosSweep:
    def test_every_fault_recovered(self):
        result = run_chaos_sweep()
        assert len(result.rows) == 8  # the sweep completed, nothing lost
        cells = rows_by_cell(result)

        # crash / hang / corrupt on DeDPO -> degraded one rung down
        for point, reason in ((0, "crash"), (1, "timeout"), (2, "infeasible")):
            row = cells[(point, "DeDPO")]
            assert row["status"] == "degraded"
            assert row["degraded_to"] == "DeDPO+RG"
            assert row["rung"] == 1
            assert row["verified"] is True
            assert f"DeDPO:{reason}" in row["failures"]

        # transient on DeDPO -> retried, then the primary succeeded
        row = cells[(3, "DeDPO")]
        assert row["status"] == "ok"
        assert row["degraded_to"] is None
        assert row["retries"] >= 1
        assert row["verified"] is True

        # memory blow-up on DeGreedy -> degraded
        row = cells[(1, "DeGreedy")]
        assert row["status"] == "degraded"
        assert "DeGreedy:memory" in row["failures"]

        # untouched cells ran plain
        for key in ((0, "DeGreedy"), (2, "DeGreedy"), (3, "DeGreedy")):
            assert cells[key]["status"] == "ok"
            assert cells[key]["retries"] == 0

    def test_reported_plans_all_reverify(self):
        """Belt and braces: rerun the oracle on what the sweep reported."""
        result = run_chaos_sweep()
        points = chaos_points(4)
        for row in result.rows:
            assert row["verified"] is True
            # the utility the row reports is the verified recomputation
            instance = points[row["axis_value"]].build()
            # reconstruct the plan the actual rung produces and check the
            # reported utility is feasible-plan utility, not a corrupted one
            assert row["utility"] is not None and row["utility"] > 0

    def test_corrupted_plan_never_reported(self):
        """The corrupted DeDPO plan at point 2 must not leak through."""
        result = run_chaos_sweep()
        row = rows_by_cell(result)[(2, "DeDPO")]
        # the accepted plan came from the fallback rung and is feasible:
        instance = chaos_points(4)[2].build()
        from repro.algorithms import make_solver

        fallback = make_solver("DeDPO+RG").solve(instance)
        assert row["utility"] == pytest.approx(
            fallback.total_utility(), abs=1e-6
        )
        report = verify_schedules(instance, fallback.as_dict())
        assert report.ok

    def test_full_ladder_failure_is_structured_error(self):
        """When every rung dies the cell reports error, sweep continues."""
        plan = {
            (0, "DeDPO"): FaultSpec("crash", -1),
            (0, "DeDPO+RG"): FaultSpec("crash", -1),
            (0, "RatioGreedy"): FaultSpec("crash", -1),
        }
        faults.install(FaultPlan(plan))
        result = run_sweep(
            "seed",
            chaos_points(2),
            ["DeDPO"],
            measure_memory=False,
            service=CHAOS_CONFIG,
        )
        assert [row["status"] for row in result.rows] == ["error", "ok"]
        failed = result.rows[0]
        assert failed["utility"] is None
        assert failed["failures"].count("crash") == 3
        # the healthy point after the broken one still completed
        assert result.rows[1]["verified"] is True

    def test_circuit_breaker_skips_repeat_offender(self):
        """A permanently broken algorithm trips the breaker mid-sweep."""
        faults.install(
            FaultPlan({(i, "DeGreedy"): FaultSpec("crash", -1) for i in range(4)})
        )
        config = ServiceConfig(
            timeout=5.0, ladder=(), max_retries=0, base_delay_s=0.0,
            breaker_threshold=2,
        )
        result = run_sweep(
            "seed", chaos_points(4), ["DeGreedy"], measure_memory=False,
            service=config,
        )
        assert [row["status"] for row in result.rows] == [
            "error", "error", "skipped", "skipped",
        ]
        assert "circuit open" in result.rows[2]["error"]

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_chaos_through_both_execution_paths(self, jobs):
        """Fault recovery is identical on the sequential and pool paths."""
        result = run_chaos_sweep(jobs=jobs)
        statuses = [(r["solver"], r["status"]) for r in result.rows]
        assert statuses == [
            ("DeDPO", "degraded"), ("DeGreedy", "ok"),
            ("DeDPO", "degraded"), ("DeGreedy", "degraded"),
            ("DeDPO", "degraded"), ("DeGreedy", "ok"),
            ("DeDPO", "ok"), ("DeGreedy", "ok"),
        ]


class TestChaosDeterminism:
    def test_same_seed_same_journal_bytes(self, tmp_path):
        """Same fault seed + same plan -> byte-identical canonical journal."""
        a = run_chaos_sweep(seed=7, journal=str(tmp_path / "a.jsonl"))
        b = run_chaos_sweep(seed=7, journal=str(tmp_path / "b.jsonl"))
        assert canonical_bytes(str(tmp_path / "a.jsonl")) == canonical_bytes(
            str(tmp_path / "b.jsonl")
        )
        # and the in-memory recovery decisions agree exactly
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a["status"] == row_b["status"]
            assert row_a.get("rung") == row_b.get("rung")
            assert row_a["retries"] == row_b["retries"]
            assert row_a.get("degraded_to") == row_b.get("degraded_to")

    def test_recovery_decisions_stable_across_runs(self):
        a = run_chaos_sweep(seed=11)
        b = run_chaos_sweep(seed=11)
        assert [strip_timing(r) for r in a.rows] == [
            strip_timing(r) for r in b.rows
        ]


class TestKillThenResume:
    def _truncate(self, src, dst, cells):
        """Keep the header + first ``cells`` cell lines (simulated kill)."""
        lines = src.read_text().splitlines()
        dst.write_text("\n".join(lines[: cells + 1]) + "\n")

    def test_resume_runs_only_missing_cells(self, tmp_path):
        full = tmp_path / "full.jsonl"
        run_chaos_sweep(journal=str(full))
        partial = tmp_path / "partial.jsonl"
        self._truncate(full, partial, cells=3)
        result = run_chaos_sweep(journal=str(partial), resume=True)
        assert [row["resumed"] for row in result.rows] == [True] * 3 + [False] * 5

    def test_merged_ledger_equals_uninterrupted(self, tmp_path):
        """The acceptance contract: resume converges to the full run."""
        full = tmp_path / "full.jsonl"
        uninterrupted = run_chaos_sweep(journal=str(full))
        partial = tmp_path / "partial.jsonl"
        self._truncate(full, partial, cells=4)
        resumed = run_chaos_sweep(journal=str(partial), resume=True)
        # merged journal == uninterrupted journal, modulo timing fields
        assert canonical_bytes(str(partial)) == canonical_bytes(str(full))
        # and the returned rows agree cell by cell (resumed flag aside)
        for row_a, row_b in zip(uninterrupted.rows, resumed.rows):
            stable_a = dict(strip_timing(row_a), resumed=None)
            stable_b = dict(strip_timing(row_b), resumed=None)
            assert stable_a == stable_b

    def test_resume_with_parallel_pool(self, tmp_path):
        full = tmp_path / "full.jsonl"
        run_chaos_sweep(journal=str(full))
        partial = tmp_path / "partial.jsonl"
        self._truncate(full, partial, cells=5)
        resumed = run_chaos_sweep(journal=str(partial), resume=True, jobs=2)
        assert canonical_bytes(str(partial)) == canonical_bytes(str(full))
        assert sum(1 for r in resumed.rows if r["resumed"]) == 5

    def test_fully_complete_journal_runs_nothing(self, tmp_path):
        full = tmp_path / "full.jsonl"
        first = run_chaos_sweep(journal=str(full))
        replayed = run_chaos_sweep(journal=str(full), resume=True)
        assert all(row["resumed"] for row in replayed.rows)
        assert [strip_timing(dict(r, resumed=None)) for r in first.rows] == [
            strip_timing(dict(r, resumed=None)) for r in replayed.rows
        ]
