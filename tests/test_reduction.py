"""Tests for the Theorem 1 Knapsack -> USEP reduction."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvalidInstanceError, Schedule, validate_planning
from repro.reductions import (
    knapsack_optimum,
    knapsack_to_usep,
    solve_knapsack_via_usep,
)


class TestConstruction:
    def test_shape(self):
        inst = knapsack_to_usep([3, 5], [2, 4], 5)
        assert inst.num_events == 2
        assert inst.num_users == 1
        assert inst.users[0].budget == 10  # 2 * W, costs scaled by 2

    def test_utilities_normalised(self):
        inst = knapsack_to_usep([3, 5, 1], [1, 1, 1], 3)
        assert inst.utility(0, 0) == pytest.approx(3 / 5)
        assert inst.utility(1, 0) == pytest.approx(1.0)
        assert inst.utility(2, 0) == pytest.approx(1 / 5)

    def test_schedule_cost_telescopes_to_weight_sum(self):
        """Any subset's trip cost equals (twice) its total weight."""
        weights = [3, 7, 2, 5]
        inst = knapsack_to_usep([1, 1, 1, 1], weights, 100)
        for subset in [(0,), (1, 3), (0, 1, 2, 3), (2,)]:
            s = Schedule(0, list(subset))
            assert s.total_cost(inst) == 2 * sum(weights[i] for i in subset)

    def test_reverse_order_infeasible(self):
        inst = knapsack_to_usep([1, 1], [1, 1], 10)
        assert math.isinf(inst.cost_vv(1, 0))

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidInstanceError):
            knapsack_to_usep([1], [1, 2], 3)
        with pytest.raises(InvalidInstanceError):
            knapsack_to_usep([], [], 3)
        with pytest.raises(InvalidInstanceError):
            knapsack_to_usep([0], [1], 3)


class TestKnapsackOptimum:
    def test_textbook_example(self):
        # items (value, weight): (60,10) (100,20) (120,30), W = 50
        assert knapsack_optimum([60, 100, 120], [10, 20, 30], 50) == 220

    def test_nothing_fits(self):
        assert knapsack_optimum([5], [10], 3) == 0


class TestRoundTrip:
    def test_small_example(self):
        value, items = solve_knapsack_via_usep([60, 100, 120], [10, 20, 30], 50)
        assert value == 220
        assert items == (1, 2)

    def test_usep_optimum_equals_knapsack_optimum(self):
        values, weights, W = [4, 7, 2, 9], [3, 5, 2, 6], 10
        from repro.algorithms import ExactSolver

        inst = knapsack_to_usep(values, weights, W)
        planning = ExactSolver().solve(inst)
        validate_planning(planning)
        assert planning.total_utility() * max(values) == pytest.approx(
            knapsack_optimum(values, weights, W)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        items=st.lists(
            st.tuples(st.integers(1, 20), st.integers(1, 15)),
            min_size=1,
            max_size=8,
        ),
        capacity=st.integers(1, 40),
    )
    def test_reduction_preserves_optimum(self, items, capacity):
        """Theorem 1, executable: the reduction is answer-preserving."""
        values = [float(v) for v, _ in items]
        weights = [w for _, w in items]
        via_usep, chosen = solve_knapsack_via_usep(values, weights, capacity)
        reference = knapsack_optimum(values, weights, capacity)
        assert via_usep == pytest.approx(reference)
        assert sum(weights[i] for i in chosen) <= capacity
