"""Shared fixtures and builders for the USEP test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.core import (
    Event,
    GridCostModel,
    TimeInterval,
    USEPInstance,
    User,
)
from repro.datagen import SyntheticConfig, generate_instance


def make_events(specs: Sequence[Tuple]) -> List[Event]:
    """Events from terse tuples ``(location, capacity, start, end)``."""
    return [
        Event(id=i, location=loc, capacity=cap, interval=TimeInterval(t1, t2))
        for i, (loc, cap, t1, t2) in enumerate(specs)
    ]


def make_users(specs: Sequence[Tuple]) -> List[User]:
    """Users from terse tuples ``(location, budget)``."""
    return [User(id=i, location=loc, budget=b) for i, (loc, b) in enumerate(specs)]


def grid_instance(
    event_specs: Sequence[Tuple],
    user_specs: Sequence[Tuple],
    utilities,
    speed: Optional[float] = None,
) -> USEPInstance:
    """Instance on the Manhattan grid from terse specs."""
    return USEPInstance(
        make_events(event_specs),
        make_users(user_specs),
        GridCostModel(speed=speed),
        utilities,
    )


@pytest.fixture
def line_instance() -> USEPInstance:
    """Three sequential events on a line, two users; hand-checkable.

    Layout (x axis): u0 at 0, v0 at 2, v1 at 4, v2 at 6, u1 at 8.
    Times: v0 [0,10], v1 [10,20], v2 [20,30] — no conflicts.
    """
    return grid_instance(
        event_specs=[
            ((2, 0), 1, 0, 10),
            ((4, 0), 1, 10, 20),
            ((6, 0), 2, 20, 30),
        ],
        user_specs=[((0, 0), 100), ((8, 0), 100)],
        utilities=[[0.9, 0.1], [0.8, 0.2], [0.7, 0.3]],
    )


@pytest.fixture
def conflict_instance() -> USEPInstance:
    """Two overlapping events plus one compatible; one user."""
    return grid_instance(
        event_specs=[
            ((1, 0), 1, 0, 10),
            ((2, 0), 1, 5, 15),  # overlaps event 0
            ((3, 0), 1, 20, 30),
        ],
        user_specs=[((0, 0), 100)],
        utilities=[[0.5], [0.6], [0.7]],
    )


@pytest.fixture
def small_synthetic() -> USEPInstance:
    """A small seeded synthetic instance for integration-ish tests."""
    return generate_instance(
        SyntheticConfig(
            num_events=12,
            num_users=30,
            mean_capacity=4,
            grid_size=30,
            seed=11,
        )
    )


@pytest.fixture
def tiny_synthetic() -> USEPInstance:
    """A very small synthetic instance (exact solver friendly)."""
    return generate_instance(
        SyntheticConfig(
            num_events=5,
            num_users=4,
            mean_capacity=2,
            grid_size=12,
            seed=5,
        )
    )
