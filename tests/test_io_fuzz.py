"""Mutation-fuzz of the hardened instance decoder.

The deserialisation path is the trust boundary of the planning service:
request bodies go straight from ``json.loads`` into
``instance_from_dict``.  This suite corrupts a valid instance dict in
~50 seeded ways — deleted keys, wrong types, hostile strings, negative
quantities, truncated arrays — and asserts the one contract the server
relies on: the decoder either returns a valid instance or raises
``InvalidInstanceError``; no ``KeyError``/``TypeError``/``ValueError``
traceback ever escapes.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

from repro.core import InvalidInstanceError
from repro.io import instance_from_dict, instance_to_dict
from repro.paper_example import build_example_instance
from repro.reductions import knapsack_to_usep

#: Values a corruption may splice in where something else belongs.
_JUNK = [
    None,
    True,
    False,
    -1,
    -3.5,
    float("nan"),
    "inf",
    "-inf",
    "1e9",
    "DROP TABLE events",
    "",
    [],
    {},
    [[]],
    {"nested": {"deep": []}},
    "\x00\x01",
    "𝔘𝔫𝔦𝔠𝔬𝔡𝔢",
    1 << 80,
]


def _paths(node, prefix=()):
    """Every (path, value) pair in a nested JSON structure."""
    yield prefix, node
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _paths(value, prefix + (key,))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _paths(value, prefix + (index,))


def _set_path(root, path, value):
    node = root
    for step in path[:-1]:
        node = node[step]
    node[path[-1]] = value


def _del_path(root, path):
    node = root
    for step in path[:-1]:
        node = node[step]
    del node[path[-1]]


def _corrupt(data, rng):
    """One random structural mutation; returns the mutated copy."""
    mutated = copy.deepcopy(data)
    paths = [p for p, _ in _paths(mutated) if p]
    path = rng.choice(paths)
    op = rng.choice(("replace", "delete", "truncate", "negate", "stringify"))
    node = mutated
    for step in path[:-1]:
        node = node[step]
    leaf = node[path[-1]]
    if op == "delete" and isinstance(node, dict):
        _del_path(mutated, path)
    elif op == "truncate" and isinstance(leaf, list) and leaf:
        _set_path(mutated, path, leaf[: len(leaf) // 2])
    elif op == "negate" and isinstance(leaf, (int, float)):
        _set_path(mutated, path, -abs(leaf) - 1)
    elif op == "stringify":
        _set_path(mutated, path, json.dumps(leaf))
    else:
        _set_path(mutated, path, rng.choice(_JUNK))
    return mutated


def _assert_decodes_or_typed_error(payload):
    try:
        instance_from_dict(payload)
    except InvalidInstanceError:
        pass  # the typed rejection the service maps to HTTP 400
    # any other exception type propagates and fails the test


class TestMutationFuzz:
    def test_grid_corpus_only_typed_errors(self):
        data = instance_to_dict(build_example_instance())
        rng = random.Random(20260806)
        for _ in range(50):
            _assert_decodes_or_typed_error(_corrupt(data, rng))

    def test_matrix_corpus_only_typed_errors(self):
        data = instance_to_dict(knapsack_to_usep([3.0, 5.0, 2.0], [2, 4, 1], 6))
        rng = random.Random(99)
        for _ in range(50):
            _assert_decodes_or_typed_error(_corrupt(data, rng))

    def test_top_level_junk(self):
        for junk in _JUNK:
            _assert_decodes_or_typed_error(junk)

    @pytest.mark.parametrize(
        "mutate, path_fragment",
        [
            (lambda d: d["events"][1].pop("capacity"), "events[1].capacity"),
            (lambda d: d["events"][1].update(capacity=-2), "events[1].capacity"),
            (lambda d: d["users"][0].update(budget="lots"), "users[0].budget"),
            (lambda d: d["users"][2].pop("location"), "users[2].location"),
            (
                lambda d: d["utilities"][0].__setitem__(1, "0.5"),
                "utilities[0][1]",
            ),
        ],
    )
    def test_error_names_json_path(self, mutate, path_fragment):
        data = instance_to_dict(build_example_instance())
        mutate(data)
        with pytest.raises(InvalidInstanceError) as excinfo:
            instance_from_dict(data)
        assert path_fragment in str(excinfo.value)

    def test_non_inf_cost_string_rejected_with_path(self):
        data = instance_to_dict(knapsack_to_usep([3.0, 5.0], [2, 4], 5))
        data["cost_model"]["event_event"][0][1] = "infinity"
        with pytest.raises(InvalidInstanceError) as excinfo:
            instance_from_dict(data)
        assert "event_event[0][1]" in str(excinfo.value)

    def test_valid_instance_still_round_trips(self):
        data = instance_to_dict(build_example_instance())
        rebuilt = instance_from_dict(copy.deepcopy(data))
        assert instance_to_dict(rebuilt) == data
