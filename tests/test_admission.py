"""Unit tests for the admission controller (no HTTP involved)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    Shed,
    Ticket,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_disabled_bucket_always_grants(self):
        bucket = TokenBucket(0, 0, clock=FakeClock())
        for _ in range(100):
            granted, retry = bucket.try_take()
            assert granted and retry == 0.0

    def test_burst_then_shed_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 1.0, clock=clock)
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        granted, retry = bucket.try_take()
        assert not granted
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 2.0, clock=clock)
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_take()[0]

    def test_zero_refill_gives_long_hint(self):
        bucket = TokenBucket(1, 0.0, clock=FakeClock())
        bucket.try_take()
        granted, retry = bucket.try_take()
        assert not granted and retry >= 60.0


class TestDeadlineClamp:
    def test_default_applied_when_absent(self):
        config = AdmissionConfig(deadline_cap_s=30, default_deadline_s=10)
        assert config.clamp_deadline(None) == 10

    def test_client_deadline_clamped_to_cap(self):
        config = AdmissionConfig(deadline_cap_s=30, default_deadline_s=10)
        assert config.clamp_deadline(999) == 30
        assert config.clamp_deadline(5) == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(deadline_cap_s=0)


class TestAdmission:
    def _controller(self, **kwargs):
        defaults = dict(max_inflight=1, queue_depth=2)
        defaults.update(kwargs)
        return AdmissionController(AdmissionConfig(**defaults))

    def test_admit_grants_ticket_at_full_quality(self):
        ctrl = self._controller()
        ticket = ctrl.admit()
        assert isinstance(ticket, Ticket)
        assert ticket.rung_shift == 0

    def test_queue_full_sheds_503(self):
        ctrl = self._controller()
        tickets = [ctrl.admit() for _ in range(3)]  # 1 inflight + 2 queue
        assert all(isinstance(t, Ticket) for t in tickets)
        shed = ctrl.admit()
        assert isinstance(shed, Shed)
        assert shed.status == 503
        assert shed.reason == "queue-full"
        assert shed.retry_after_s > 0

    def test_rung_shift_grows_with_queue_depth(self):
        ctrl = self._controller(max_inflight=1, queue_depth=4)
        first = ctrl.admit()
        assert ctrl.acquire_slot(first, time.monotonic() + 5) is None
        shifts = [ctrl.admit().rung_shift for _ in range(4)]
        assert shifts[0] == 0  # empty queue keeps full quality
        assert shifts[-1] >= 1  # deep queue degrades
        assert shifts == sorted(shifts)  # pressure only pushes down

    def test_rate_limit_sheds_429(self):
        ctrl = self._controller(rate_burst=1, rate_per_s=0.5)
        assert isinstance(ctrl.admit(), Ticket)
        shed = ctrl.admit()
        assert isinstance(shed, Shed)
        assert shed.status == 429
        assert shed.reason == "rate-limited"
        assert 0 < shed.retry_after_s <= 2.0 + 1e-6

    def test_past_deadline_shed_even_with_free_slot(self):
        ctrl = self._controller()
        ticket = ctrl.admit()
        shed = ctrl.acquire_slot(ticket, time.monotonic() - 1)
        assert isinstance(shed, Shed)
        assert shed.status == 503
        assert shed.reason == "deadline-exhausted"

    def test_deadline_exhausted_while_queued(self):
        ctrl = self._controller()
        holder = ctrl.admit()
        assert ctrl.acquire_slot(holder, time.monotonic() + 5) is None
        queued = ctrl.admit()
        shed = ctrl.acquire_slot(queued, time.monotonic() + 0.05)
        assert isinstance(shed, Shed)
        assert shed.reason == "deadline-exhausted"
        ctrl.release("ok")

    def test_release_wakes_queued_waiter(self):
        ctrl = self._controller()
        holder = ctrl.admit()
        assert ctrl.acquire_slot(holder, time.monotonic() + 5) is None
        queued = ctrl.admit()
        got = []

        def waiter():
            got.append(ctrl.acquire_slot(queued, time.monotonic() + 5))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        ctrl.release("ok")
        thread.join(timeout=5)
        assert got == [None]
        ctrl.release("degraded")

    def test_drain_sheds_new_requests(self):
        ctrl = self._controller()
        ctrl.drain()
        shed = ctrl.admit()
        assert isinstance(shed, Shed)
        assert shed.status == 503
        assert shed.reason == "draining"

    def test_counters_always_sum_to_received(self):
        ctrl = self._controller(max_inflight=1, queue_depth=1)
        t1 = ctrl.admit()
        assert ctrl.acquire_slot(t1, time.monotonic() + 5) is None
        ctrl.admit()  # queued ticket -> settle as invalid below
        ctrl.admit()  # queue full -> shed
        ctrl.settle("invalid")
        ctrl.release("ok")
        snap = ctrl.snapshot()
        counters = snap["counters"]
        assert counters["received"] == 3
        assert (
            counters["ok"]
            + counters["degraded"]
            + counters["shed"]
            + counters["invalid"]
            + counters["failed"]
            == counters["received"]
        )
        assert snap["inflight"] == 0 and snap["queued"] == 0

    def test_unknown_disposition_rejected(self):
        ctrl = self._controller()
        ticket = ctrl.admit()
        assert ctrl.acquire_slot(ticket, time.monotonic() + 5) is None
        with pytest.raises(ValueError):
            ctrl.release("mystery")
