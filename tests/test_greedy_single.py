"""Unit and property tests for GreedySingle (Algorithm 5).

The heap/gap variant must match the plain rescan-everything reference
implementation exactly — that is Lemma 3 in executable form.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dp_single import dp_single_best_utility
from repro.algorithms.greedy_single import greedy_single, greedy_single_scan
from repro.core import Schedule
from repro.datagen import SyntheticConfig, generate_instance
from tests.conftest import grid_instance


@pytest.fixture
def chain():
    return grid_instance(
        [((i * 2 + 2, 0), 1, i * 10, i * 10 + 10) for i in range(5)],
        [((0, 0), 100)],
        [[0.5]] * 5,
    )


class TestBasics:
    def test_empty(self, chain):
        assert greedy_single(chain, 0, [], {}) == []

    def test_single(self, chain):
        assert greedy_single(chain, 0, [2], {2: 0.9}) == [2]

    def test_all_affordable(self, chain):
        utilities = {i: 0.5 for i in range(5)}
        assert greedy_single(chain, 0, list(range(5)), utilities) == [0, 1, 2, 3, 4]

    def test_lemma1_pruning(self):
        inst = grid_instance([((30, 0), 1, 0, 10)], [((0, 0), 50)], [[0.9]])
        assert greedy_single(inst, 0, [0], {0: 0.9}) == []

    def test_greedy_can_be_suboptimal(self):
        """The classic trap: the best-ratio event blocks a better pair.

        Event 0 (ratio 0.9/2) is taken first; it conflicts with events
        1 and 2 (each 0.8, non-conflicting with each other) whose sum
        1.6 > 0.9.  DP finds the pair; greedy keeps event 0.
        """
        inst = grid_instance(
            [
                ((1, 0), 1, 0, 30),    # long event blocking both others
                ((1, 0), 1, 0, 10),
                ((1, 0), 1, 20, 30),
            ],
            [((0, 0), 100)],
            [[0.9], [0.8], [0.8]],
        )
        utilities = {0: 0.9, 1: 0.8, 2: 0.8}
        greedy = greedy_single(inst, 0, [0, 1, 2], utilities)
        assert greedy == [0]
        dp = dp_single_best_utility(inst, 0, [0, 1, 2], utilities)
        assert dp == pytest.approx(1.6)

    def test_result_feasible_and_affordable(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            utilities = {v: inst.utility(v, user_id) for v in range(inst.num_events)}
            candidates = [v for v, mu in utilities.items() if mu > 0]
            schedule = greedy_single(inst, user_id, candidates, utilities)
            s = Schedule(user_id, schedule)
            assert s.is_time_feasible(inst)
            assert s.total_cost(inst) <= inst.users[user_id].budget

    def test_never_beats_dp(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            utilities = {v: inst.utility(v, user_id) for v in range(inst.num_events)}
            candidates = [v for v, mu in utilities.items() if mu > 0]
            greedy_util = sum(
                utilities[v] for v in greedy_single(inst, user_id, candidates, utilities)
            )
            dp_util = dp_single_best_utility(inst, user_id, candidates, utilities)
            assert greedy_util <= dp_util + 1e-9


class TestHeapMatchesScan:
    def test_on_fixture(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            utilities = {v: inst.utility(v, user_id) for v in range(inst.num_events)}
            candidates = [v for v, mu in utilities.items() if mu > 0]
            assert greedy_single(inst, user_id, candidates, utilities) == (
                greedy_single_scan(inst, user_id, candidates, utilities)
            )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_on_random_instances(self, seed):
        """Lemma 3 as a property: gap-heap == full rescan, always."""
        config = SyntheticConfig(
            num_events=int(np.random.default_rng(seed).integers(2, 15)),
            num_users=3,
            mean_capacity=3,
            grid_size=25,
            conflict_ratio=float(np.random.default_rng(seed + 1).uniform(0, 1)),
            seed=seed,
        )
        inst = generate_instance(config)
        for user_id in range(inst.num_users):
            utilities = {v: inst.utility(v, user_id) for v in range(inst.num_events)}
            candidates = [v for v, mu in utilities.items() if mu > 0]
            heap_result = greedy_single(inst, user_id, candidates, utilities)
            scan_result = greedy_single_scan(inst, user_id, candidates, utilities)
            assert heap_result == scan_result
