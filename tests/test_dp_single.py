"""Unit and property tests for DPSingle (Algorithm 2)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dp_single import dp_single, dp_single_best_utility
from repro.core import Schedule
from tests.conftest import grid_instance


def brute_force_best(instance, user_id, candidates, utilities, budget=None):
    """Enumerate all subsets/orders; reference optimum for tiny inputs."""
    if budget is None:
        budget = instance.users[user_id].budget
    events = instance.events
    best = 0.0
    for r in range(1, len(candidates) + 1):
        for subset in itertools.combinations(candidates, r):
            ordered = sorted(subset, key=lambda v: events[v].start)
            if any(
                not events[a].interval.precedes(events[b].interval)
                for a, b in zip(ordered, ordered[1:])
            ):
                continue
            cost = instance.cost_uv(user_id, ordered[0])
            for a, b in zip(ordered, ordered[1:]):
                cost += instance.cost_vv(a, b)
            cost += instance.cost_vu(ordered[-1], user_id)
            if math.isinf(cost) or cost > budget:
                continue
            best = max(best, sum(utilities[v] for v in ordered))
    return best


@pytest.fixture
def chain():
    """Five sequential events on a line, generous budget."""
    return grid_instance(
        [((i * 2 + 2, 0), 1, i * 10, i * 10 + 10) for i in range(5)],
        [((0, 0), 100)],
        [[0.5]] * 5,
    )


class TestBasics:
    def test_empty_candidates(self, chain):
        assert dp_single(chain, 0, [], {}) == []

    def test_single_event(self, chain):
        assert dp_single(chain, 0, [0], {0: 0.7}) == [0]

    def test_zero_utility_candidates_skipped(self, chain):
        assert dp_single(chain, 0, [0, 1], {0: 0.0, 1: 0.4}) == [1]

    def test_takes_all_when_affordable(self, chain):
        utilities = {i: 0.5 for i in range(5)}
        assert dp_single(chain, 0, list(range(5)), utilities) == [0, 1, 2, 3, 4]

    def test_budget_forces_choice(self):
        # Two far events in opposite directions; budget covers only one.
        inst = grid_instance(
            [((10, 0), 1, 0, 10), ((-10, 0), 1, 20, 30)],
            [((0, 0), 25)],
            [[0.3], [0.9]],
        )
        assert dp_single(inst, 0, [0, 1], {0: 0.3, 1: 0.9}) == [1]

    def test_lemma1_pruning(self):
        # Round trip to the lone event exceeds the budget.
        inst = grid_instance([((30, 0), 1, 0, 10)], [((0, 0), 50)], [[0.9]])
        assert dp_single(inst, 0, [0], {0: 0.9}) == []

    def test_respects_conflicts(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.4], [0.6]],
        )
        # overlapping pair: picks the single best event
        assert dp_single(inst, 0, [0, 1], {0: 0.4, 1: 0.6}) == [1]

    def test_budget_override(self, chain):
        utilities = {i: 0.5 for i in range(5)}
        schedule = dp_single(chain, 0, list(range(5)), utilities, budget=8)
        # budget 8 affords only the nearest event (round trip 4).
        assert schedule
        cost = Schedule(0, schedule).total_cost(chain)
        assert cost <= 8

    def test_result_is_feasible_and_affordable(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            utilities = {
                v: inst.utility(v, user_id) for v in range(inst.num_events)
            }
            candidates = [v for v, mu in utilities.items() if mu > 0]
            schedule = dp_single(inst, user_id, candidates, utilities)
            s = Schedule(user_id, schedule)
            assert s.is_time_feasible(inst)
            assert s.total_cost(inst) <= inst.users[user_id].budget


class TestAgainstExactOracle:
    """For |U| = 1 both DPSingle and the branch-and-bound are exact."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000), cr=st.sampled_from([0.0, 0.5, 1.0]))
    def test_single_user_dp_equals_exact(self, seed, cr):
        from repro.algorithms import ExactSolver
        from repro.datagen import SyntheticConfig, generate_instance

        inst = generate_instance(
            SyntheticConfig(
                num_events=6, num_users=1, mean_capacity=2,
                conflict_ratio=cr, grid_size=15, seed=seed,
            )
        )
        utilities = {v: inst.utility(v, 0) for v in range(inst.num_events)}
        candidates = [v for v, mu in utilities.items() if mu > 0]
        dp_value = dp_single_best_utility(inst, 0, candidates, utilities)
        exact_value = ExactSolver().solve(inst).total_utility()
        assert dp_value == pytest.approx(exact_value)


class TestOptimality:
    def test_matches_brute_force_on_fixture(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(0, inst.num_users, 5):
            utilities = {
                v: inst.utility(v, user_id) for v in range(inst.num_events)
            }
            candidates = [v for v, mu in utilities.items() if mu > 0]
            got = dp_single_best_utility(inst, user_id, candidates, utilities)
            want = brute_force_best(inst, user_id, candidates, utilities)
            assert got == pytest.approx(want)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_events=st.integers(1, 6),
        budget=st.integers(0, 60),
    )
    def test_matches_brute_force_random(self, seed, num_events, budget):
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = []
        t = 0
        for _ in range(num_events):
            t += int(rng.integers(0, 5))
            dur = int(rng.integers(1, 10))
            specs.append(
                ((int(rng.integers(0, 15)), int(rng.integers(0, 15))), 1, t, t + dur)
            )
            t += dur - int(rng.integers(0, 5))  # occasional overlaps
            t = max(t, 0)
        inst = grid_instance(
            specs,
            [((int(rng.integers(0, 15)), int(rng.integers(0, 15))), budget)],
            [[float(rng.uniform(0, 1))] for _ in range(num_events)],
        )
        utilities = {v: inst.utility(v, 0) for v in range(num_events)}
        candidates = [v for v, mu in utilities.items() if mu > 0]
        got = dp_single_best_utility(inst, 0, candidates, utilities)
        want = brute_force_best(inst, 0, candidates, utilities)
        assert got == pytest.approx(want)
