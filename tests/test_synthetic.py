"""Tests for the Table 7 synthetic instance generator (EX-T7)."""

import numpy as np
import pytest

from repro.core import InvalidInstanceError, validate_planning
from repro.datagen import SyntheticConfig, generate_instance


class TestConfig:
    def test_paper_defaults_match_table7_bold(self):
        config = SyntheticConfig()
        assert config.num_events == 100
        assert config.num_users == 5000
        assert config.mean_capacity == 50
        assert config.budget_factor == 2.0
        assert config.conflict_ratio == 0.25
        assert config.utility_distribution == "uniform"

    def test_label(self):
        assert "V10-U20" in SyntheticConfig(num_events=10, num_users=20).label()
        assert SyntheticConfig(name="custom").label() == "custom"

    def test_with_overrides(self):
        base = SyntheticConfig(seed=1)
        derived = base.with_overrides(num_events=7)
        assert derived.num_events == 7
        assert derived.seed == 1
        assert base.num_events == 100  # frozen original untouched


class TestGeneratedInstance:
    @pytest.fixture(scope="class")
    def inst(self):
        return generate_instance(
            SyntheticConfig(
                num_events=40, num_users=200, mean_capacity=8, grid_size=50, seed=21
            )
        )

    def test_dimensions(self, inst):
        assert inst.num_events == 40
        assert inst.num_users == 200

    def test_capacity_mean(self, inst):
        caps = [ev.capacity for ev in inst.events]
        assert np.mean(caps) == pytest.approx(8, rel=0.4)
        assert min(caps) >= 1

    def test_budgets_cover_nearest_round_trip(self, inst):
        for user in inst.users:
            nearest = min(
                inst.round_trip_cost(user.id, v) for v in range(inst.num_events)
            )
            assert user.budget >= nearest

    def test_conflict_ratio_near_target(self, inst):
        assert inst.measured_conflict_ratio() == pytest.approx(0.25, abs=0.08)

    def test_costs_are_integers(self, inst):
        import math

        for v in range(inst.num_events):
            c = inst.cost_uv(0, v)
            assert float(c).is_integer()
            for w in range(inst.num_events):
                c = inst.cost_vv(v, w)
                assert math.isinf(c) or float(c).is_integer()

    def test_budgets_are_integers(self, inst):
        assert all(float(u.budget).is_integer() for u in inst.users)

    def test_determinism(self):
        config = SyntheticConfig(num_events=10, num_users=20, seed=9)
        a = generate_instance(config)
        b = generate_instance(config)
        assert [e.location for e in a.events] == [e.location for e in b.events]
        assert [u.budget for u in a.users] == [u.budget for u in b.users]
        assert np.array_equal(a.utility_matrix(), b.utility_matrix())

    def test_sweeps_are_paired(self):
        """Sweeping one knob leaves untouched components bit-identical.

        Each generated component draws from its own child seed stream,
        so e.g. growing |U| must not reshuffle the event set — this is
        what makes the figure sweeps smooth curves rather than noise.
        """
        small = generate_instance(SyntheticConfig(num_events=10, num_users=40, seed=6))
        large = generate_instance(SyntheticConfig(num_events=10, num_users=400, seed=6))
        assert [e.location for e in small.events] == [
            e.location for e in large.events
        ]
        assert [e.capacity for e in small.events] == [
            e.capacity for e in large.events
        ]
        assert [e.interval for e in small.events] == [
            e.interval for e in large.events
        ]
        # and the shared prefix of users keeps its locations
        assert [u.location for u in small.users] == [
            u.location for u in large.users[:40]
        ]

    def test_budget_factor_sweep_shares_draws(self):
        """f_b only scales budgets; everything else is identical."""
        lo = generate_instance(
            SyntheticConfig(num_events=8, num_users=30, budget_factor=0.5, seed=6)
        )
        hi = generate_instance(
            SyntheticConfig(num_events=8, num_users=30, budget_factor=10.0, seed=6)
        )
        import numpy as np

        assert np.array_equal(lo.utility_matrix(), hi.utility_matrix())
        assert [u.location for u in lo.users] == [u.location for u in hi.users]
        assert all(
            h.budget >= l.budget for l, h in zip(lo.users, hi.users)
        )

    def test_different_seeds_differ(self):
        a = generate_instance(SyntheticConfig(num_events=10, num_users=20, seed=1))
        b = generate_instance(SyntheticConfig(num_events=10, num_users=20, seed=2))
        assert not np.array_equal(a.utility_matrix(), b.utility_matrix())


class TestKnobs:
    def test_conflict_ratio_knob(self):
        lo = generate_instance(
            SyntheticConfig(num_events=40, num_users=10, conflict_ratio=0.0, seed=3)
        )
        hi = generate_instance(
            SyntheticConfig(num_events=40, num_users=10, conflict_ratio=1.0, seed=3)
        )
        assert lo.measured_conflict_ratio() == 0.0
        assert hi.measured_conflict_ratio() == 1.0

    def test_budget_factor_knob(self):
        lo = generate_instance(
            SyntheticConfig(num_events=20, num_users=100, budget_factor=0.5, seed=3)
        )
        hi = generate_instance(
            SyntheticConfig(num_events=20, num_users=100, budget_factor=10.0, seed=3)
        )
        assert np.mean([u.budget for u in hi.users]) > np.mean(
            [u.budget for u in lo.users]
        )

    def test_power_utility_knob(self):
        inst = generate_instance(
            SyntheticConfig(
                num_events=30,
                num_users=100,
                utility_distribution="power:0.5",
                seed=3,
            )
        )
        assert inst.utility_matrix().mean() == pytest.approx(1 / 3, abs=0.05)

    def test_normal_capacity_knob(self):
        inst = generate_instance(
            SyntheticConfig(
                num_events=200,
                num_users=10,
                mean_capacity=20,
                capacity_distribution="normal",
                seed=3,
            )
        )
        caps = [ev.capacity for ev in inst.events]
        assert np.mean(caps) == pytest.approx(20, rel=0.1)

    def test_speed_knob_increases_conflicts(self):
        base = SyntheticConfig(
            num_events=30, num_users=10, conflict_ratio=0.25, seed=3
        )
        free = generate_instance(base)
        slow = generate_instance(base.with_overrides(speed=0.001))
        assert slow.measured_conflict_ratio() >= free.measured_conflict_ratio()

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            generate_instance(SyntheticConfig(num_events=0))


class TestEndToEnd:
    def test_all_solvers_feasible_on_generated(self):
        from repro.algorithms import PAPER_ALGORITHMS, make_solver

        inst = generate_instance(
            SyntheticConfig(num_events=15, num_users=40, mean_capacity=5, seed=77)
        )
        utilities = {}
        for name in PAPER_ALGORITHMS:
            planning = make_solver(name).solve(inst)
            validate_planning(planning)
            utilities[name] = planning.total_utility()
        # the paper's headline ordering on its default-style workload
        assert utilities["DeDPO"] == utilities["DeDP"]
        assert utilities["DeDPO+RG"] >= utilities["DeDPO"] - 1e-9
        assert utilities["DeGreedy+RG"] >= utilities["DeGreedy"] - 1e-9
