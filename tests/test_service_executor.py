"""Tests for the supervised executor (deadlines, crashes, fallback)."""

import pytest

from repro.algorithms import make_solver
from repro.service import executor, faults
from repro.service.executor import fork_supported, run_supervised

needs_fork = pytest.mark.skipif(
    not fork_supported(), reason="requires os.fork"
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No test leaves a fault plan armed for its neighbours."""
    yield
    faults.install(None)


class TestSupervisedOk:
    @needs_fork
    def test_matches_direct_run(self, tiny_synthetic):
        direct = make_solver("DeDPO").solve(tiny_synthetic)
        out = run_supervised(tiny_synthetic, "DeDPO", timeout=60)
        assert out.ok and out.supervised
        assert out.utility == pytest.approx(direct.total_utility())
        assert out.schedules == {
            s.user_id: list(s.event_ids) for s in direct.schedules if len(s)
        }

    @needs_fork
    def test_counters_and_timing_cross_the_pipe(self, tiny_synthetic):
        out = run_supervised(tiny_synthetic, "DeGreedy", timeout=60)
        assert out.solve_time_s is not None and out.solve_time_s >= 0
        assert out.wall_time_s >= out.solve_time_s
        assert "scheduler_calls" in out.counters

    @needs_fork
    def test_memory_measured_in_child(self, tiny_synthetic):
        out = run_supervised(
            tiny_synthetic, "DeDPO", timeout=60, measure_memory=True
        )
        assert out.ok
        assert out.peak_memory_bytes is not None and out.peak_memory_bytes > 0

    def test_in_process_fallback_matches(self, tiny_synthetic):
        direct = make_solver("DeDPO").solve(tiny_synthetic)
        out = run_supervised(
            tiny_synthetic, "DeDPO", timeout=60, force_in_process=True
        )
        assert out.ok and not out.supervised
        assert out.utility == pytest.approx(direct.total_utility())


class TestSupervisedFailures:
    @needs_fork
    def test_hang_hits_deadline(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan(
                {(0, "DeGreedy"): faults.FaultSpec("hang", -1)},
                hang_seconds=30.0,
            )
        )
        out = run_supervised(
            tiny_synthetic, "DeGreedy", timeout=0.3, cell=(0, "DeGreedy")
        )
        assert out.status == "timeout"
        assert out.schedules is None
        assert "deadline" in out.error
        # and well under the injected hang duration
        assert out.wall_time_s < 5.0

    @needs_fork
    def test_crash_reports_exit_code(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan({(0, "DeGreedy"): faults.FaultSpec("crash", -1)})
        )
        out = run_supervised(
            tiny_synthetic, "DeGreedy", timeout=30, cell=(0, "DeGreedy")
        )
        assert out.status == "crash"
        assert out.exit_code == faults.CRASH_EXIT_CODE

    @needs_fork
    def test_transient_exception_is_structured(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan({(0, "DeDPO"): faults.FaultSpec("transient", -1)})
        )
        out = run_supervised(
            tiny_synthetic, "DeDPO", timeout=30, cell=(0, "DeDPO")
        )
        assert out.status == "error"
        assert "TransientFault" in out.error

    @needs_fork
    def test_memory_blowup_is_distinguished(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan({(0, "DeDPO"): faults.FaultSpec("memory", -1)})
        )
        out = run_supervised(
            tiny_synthetic, "DeDPO", timeout=30, cell=(0, "DeDPO")
        )
        assert out.status == "memory"

    @needs_fork
    def test_fault_only_fires_for_armed_attempts(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan({(0, "DeDPO"): faults.FaultSpec("transient", 1)})
        )
        first = run_supervised(
            tiny_synthetic, "DeDPO", timeout=30, cell=(0, "DeDPO"), attempt=0
        )
        second = run_supervised(
            tiny_synthetic, "DeDPO", timeout=30, cell=(0, "DeDPO"), attempt=1
        )
        assert first.status == "error"
        assert second.status == "ok"

    def test_in_process_crash_becomes_outcome(self, tiny_synthetic):
        """Without a fork the crash is simulated, not process-fatal."""
        faults.install(
            faults.FaultPlan({(0, "DeDPO"): faults.FaultSpec("crash", -1)})
        )
        out = run_supervised(
            tiny_synthetic,
            "DeDPO",
            timeout=30,
            cell=(0, "DeDPO"),
            force_in_process=True,
        )
        assert out.status == "crash" and not out.supervised

    def test_in_process_error_capture(self, tiny_synthetic):
        faults.install(
            faults.FaultPlan({(0, "DeDPO"): faults.FaultSpec("transient", -1)})
        )
        out = run_supervised(
            tiny_synthetic,
            "DeDPO",
            timeout=30,
            cell=(0, "DeDPO"),
            force_in_process=True,
        )
        assert out.status == "error" and "TransientFault" in out.error


class TestRecordProtocol:
    def test_parse_truncated_record(self):
        assert executor._parse_record(b"") is None
        assert executor._parse_record(b"\x00\x00\x00\xffgarbage") is None

    def test_parse_garbled_pickle(self):
        blob = b"not a pickle"
        data = executor._LEN.pack(len(blob)) + blob
        assert executor._parse_record(data) is None
