"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig2-v"])
        assert args.experiment == "fig2-v"
        assert args.scale == "small"
        assert not args.no_memory

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "fig3-fb", "--scale", "tiny", "--algorithms", "DeDPO,DeGreedy",
             "--no-memory", "--validate", "--quiet"]
        )
        assert args.scale == "tiny"
        assert args.algorithms == "DeDPO,DeGreedy"
        assert args.no_memory and args.validate and args.quiet
        assert args.jobs is None

    def test_jobs_option(self):
        args = build_parser().parse_args(["run", "fig2-v", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["run-all", "--jobs", "2"])
        assert args.jobs == 2

    def test_solve_profile_option(self):
        args = build_parser().parse_args(
            ["solve", "inst.json", "--profile", "out.prof"]
        )
        assert args.profile == "out.prof"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2-v" in out and "fig4-real" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Omega = 3.6" in out
        assert "Omega = 4.6" in out
        assert "Omega = 4.5" in out

    def test_run_tiny(self, capsys):
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Total utility score" in out
        assert "EX-F2R" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig9-x", "--quiet"])

    def test_generate_and_solve_round_trip(self, tmp_path, capsys):
        inst_path = str(tmp_path / "inst.json")
        plan_path = str(tmp_path / "plan.json")
        assert main(
            ["generate", inst_path, "--events", "8", "--users", "20",
             "--capacity", "3", "--seed", "5"]
        ) == 0
        assert main(
            ["solve", inst_path, "--algorithm", "DeGreedy", "--out", plan_path,
             "--no-memory"]
        ) == 0
        out = capsys.readouterr().out
        assert "total utility" in out
        from repro.io import load_instance, load_planning
        from repro.core import validate_planning

        inst = load_instance(inst_path)
        validate_planning(load_planning(inst, plan_path))

    def test_generate_city(self, tmp_path):
        inst_path = str(tmp_path / "city.json")
        assert main(["generate", inst_path, "--city", "auckland"]) == 0
        from repro.io import load_instance

        assert load_instance(inst_path).num_events == 37

    def test_generate_unknown_city(self, tmp_path):
        assert main(["generate", str(tmp_path / "x.json"), "--city", "oz"]) == 2

    def test_run_with_chart(self, capsys):
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy", "--chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "o=DeGreedy" in out

    def test_run_with_seeds(self, capsys):
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean over 2 seeds" in out
        assert "std" in out

    def test_run_with_jobs(self, capsys):
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Total utility score" in out

    def test_solve_with_profile(self, tmp_path, capsys):
        import pstats

        inst_path = str(tmp_path / "inst.json")
        prof_path = str(tmp_path / "solve.prof")
        assert main(
            ["generate", inst_path, "--events", "8", "--users", "20",
             "--capacity", "3", "--seed", "5"]
        ) == 0
        assert main(
            ["solve", inst_path, "--algorithm", "DeDPO", "--no-memory",
             "--profile", prof_path]
        ) == 0
        out = capsys.readouterr().out
        assert "cProfile stats written" in out
        stats = pstats.Stats(prof_path)
        functions = {entry[2] for entry in stats.stats}
        assert "dp_single" in functions

    def test_run_with_csv(self, tmp_path, capsys):
        out_dir = str(tmp_path / "csv")
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy", "--csv", out_dir]
        )
        assert code == 0
        files = os.listdir(out_dir)
        assert files == ["fig2-cr-tiny.csv"]
        content = open(os.path.join(out_dir, files[0])).read()
        assert "DeGreedy" in content


class TestServiceFlags:
    def test_parser_accepts_service_options(self):
        args = build_parser().parse_args(
            ["run", "fig2-v", "--timeout", "2.5", "--ladder",
             "DeDPO+RG->RatioGreedy", "--max-retries", "5",
             "--journal", "j.jsonl", "--resume"]
        )
        assert args.timeout == 2.5
        assert args.ladder == "DeDPO+RG->RatioGreedy"
        assert args.max_retries == 5
        assert args.journal == "j.jsonl"
        assert args.resume

    def test_service_defaults_off(self):
        args = build_parser().parse_args(["run", "fig2-v"])
        assert args.timeout is None
        assert args.ladder is None
        assert args.max_retries is None
        assert args.journal is None
        assert not args.resume

    def test_resume_requires_journal(self, capsys):
        code = main(["run", "fig2-v", "--scale", "tiny", "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_journal_rejected_with_seeds(self, capsys):
        code = main(["run", "fig2-v", "--scale", "tiny", "--journal",
                     "j.jsonl", "--seeds", "3"])
        assert code == 2
        assert "--journal is not supported" in capsys.readouterr().err

    def test_run_with_timeout_and_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        code = main(
            ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
             "--algorithms", "DeGreedy", "--timeout", "60",
             "--journal", journal]
        )
        assert code == 0
        from repro.service.checkpoint import load_rows

        rows = load_rows(journal)
        assert rows and all(row["status"] == "ok" for row in rows)
        assert all(row["supervised"] for row in rows)

    def test_run_resume_replays_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        base = ["run", "fig2-cr", "--scale", "tiny", "--no-memory", "--quiet",
                "--algorithms", "DeGreedy", "--timeout", "60",
                "--journal", journal]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "replayed from journal" in out
