"""Unit tests for Event and User entities."""

import pytest

from repro.core import Event, InvalidInstanceError, TimeInterval, User


class TestEvent:
    def test_basic_fields(self):
        ev = Event(id=0, location=(3, 4), capacity=5, interval=TimeInterval(1, 2))
        assert ev.start == 1
        assert ev.end == 2
        assert ev.capacity == 5
        assert ev.location == (3, 4)

    def test_rejects_negative_id(self):
        with pytest.raises(InvalidInstanceError):
            Event(id=-1, location=(0, 0), capacity=1, interval=TimeInterval(0, 1))

    def test_rejects_zero_capacity(self):
        with pytest.raises(InvalidInstanceError):
            Event(id=0, location=(0, 0), capacity=0, interval=TimeInterval(0, 1))

    def test_conflicts_with(self):
        a = Event(id=0, location=(0, 0), capacity=1, interval=TimeInterval(0, 10))
        b = Event(id=1, location=(0, 0), capacity=1, interval=TimeInterval(5, 15))
        c = Event(id=2, location=(0, 0), capacity=1, interval=TimeInterval(10, 20))
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)  # back-to-back is compatible

    def test_is_frozen(self):
        ev = Event(id=0, location=(0, 0), capacity=1, interval=TimeInterval(0, 1))
        with pytest.raises(AttributeError):
            ev.capacity = 2

    def test_name_not_in_equality(self):
        kwargs = dict(id=0, location=(0, 0), capacity=1, interval=TimeInterval(0, 1))
        assert Event(name="a", **kwargs) == Event(name="b", **kwargs)


class TestUser:
    def test_basic_fields(self):
        u = User(id=3, location=(1, 2), budget=50)
        assert u.id == 3
        assert u.budget == 50

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidInstanceError):
            User(id=0, location=(0, 0), budget=-1)

    def test_zero_budget_allowed(self):
        # A zero budget is legal: the user can only attend events at
        # their exact location (cost 0).
        assert User(id=0, location=(0, 0), budget=0).budget == 0

    def test_rejects_negative_id(self):
        with pytest.raises(InvalidInstanceError):
            User(id=-2, location=(0, 0), budget=1)
