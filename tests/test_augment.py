"""Tests for the +RG augmented solvers (Section 4.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DeDPO,
    DeDPOPlusRG,
    DeGreedy,
    DeGreedyPlusRG,
    DeDPPlusRG,
    make_solver,
)
from repro.core import validate_planning
from repro.datagen import SyntheticConfig, generate_instance


class TestAugmentedSolvers:
    def test_dedpo_rg_never_worse_than_dedpo(self, small_synthetic):
        base = DeDPO().solve(small_synthetic).total_utility()
        plus = DeDPOPlusRG().solve(small_synthetic).total_utility()
        assert plus >= base - 1e-9

    def test_degreedy_rg_never_worse_than_degreedy(self, small_synthetic):
        base = DeGreedy().solve(small_synthetic).total_utility()
        plus = DeGreedyPlusRG().solve(small_synthetic).total_utility()
        assert plus >= base - 1e-9

    def test_results_valid(self, small_synthetic):
        for solver in (DeDPOPlusRG(), DeGreedyPlusRG(), DeDPPlusRG()):
            validate_planning(solver.solve(small_synthetic))

    def test_counters_report_rg_additions(self, small_synthetic):
        solver = DeGreedyPlusRG()
        planning = solver.solve(small_synthetic)
        base_pairs = planning.total_arranged_pairs() - solver.counters[
            "rg_pairs_added"
        ]
        assert base_pairs >= 0
        assert "base_utility_milli" in solver.counters

    def test_base_planning_is_superset_preserved(self, small_synthetic):
        """+RG only adds pairs; the base planning's pairs all survive."""
        base = DeGreedy().solve(small_synthetic)
        plus = DeGreedyPlusRG().solve(small_synthetic)
        assert set(base.iter_pairs()) <= set(plus.iter_pairs())

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cr=st.sampled_from([0.0, 0.25, 0.75]),
    )
    def test_monotone_improvement_random(self, seed, cr):
        inst = generate_instance(
            SyntheticConfig(
                num_events=8,
                num_users=12,
                mean_capacity=3,
                conflict_ratio=cr,
                grid_size=20,
                seed=seed,
            )
        )
        for base_name, plus_name in (
            ("DeDPO", "DeDPO+RG"),
            ("DeGreedy", "DeGreedy+RG"),
        ):
            base = make_solver(base_name).solve(inst).total_utility()
            plus_planning = make_solver(plus_name).solve(inst)
            validate_planning(plus_planning)
            assert plus_planning.total_utility() >= base - 1e-9

    def test_augmented_planning_is_maximal(self, small_synthetic):
        """After +RG no valid pair remains among spare-capacity events.

        Events full at the start of the pass are excluded by
        construction; every other event must be saturated: either full,
        or no user can still validly take it.
        """
        planning = DeGreedyPlusRG().solve(small_synthetic)
        inst = small_synthetic
        for v in range(inst.num_events):
            for u in range(inst.num_users):
                if v in planning.schedule_of(u):
                    continue
                insertion = planning.plan_valid_insertion(v, u)
                if insertion is not None:
                    # only allowed if v was already full before the pass
                    # (we cannot observe that directly, but then it must
                    # be full *now* too, contradicting a valid insertion)
                    pytest.fail(f"pair ({v}, {u}) still addable after +RG")

    def test_helps_degreedy_more_than_dedpo(self):
        """The paper's observation: DeGreedy leaves more room for +RG.

        Aggregated over seeds to be robust: total RG gain on DeGreedy
        >= total RG gain on DeDPO.
        """
        gain_dg = gain_dp = 0.0
        for seed in range(6):
            inst = generate_instance(
                SyntheticConfig(
                    num_events=15,
                    num_users=40,
                    mean_capacity=5,
                    conflict_ratio=0.5,
                    grid_size=30,
                    seed=seed,
                )
            )
            gain_dg += (
                DeGreedyPlusRG().solve(inst).total_utility()
                - DeGreedy().solve(inst).total_utility()
            )
            gain_dp += (
                DeDPOPlusRG().solve(inst).total_utility()
                - DeDPO().solve(inst).total_utility()
            )
        assert gain_dg >= gain_dp - 1e-9
