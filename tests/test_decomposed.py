"""Tests for the two-step framework: DeDP, DeDPO, DeGreedy.

The central property is Lemma 2 in executable form: DeDPO must produce
*exactly* the same planning as DeDP (same tie-breaking throughout), at a
fraction of the memory.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DeDP, DeDPO, DeGreedy
from repro.algorithms.decomposed import _PseudoEventPool
from repro.core import validate_planning
from repro.datagen import SyntheticConfig, generate_instance
from tests.conftest import grid_instance


class TestPseudoEventPool:
    def test_free_copies_first(self):
        pool = _PseudoEventPool(2)
        utils = [0.9, 0.5, 0.7]
        k, mu = pool.pick(0.5, utils)
        assert (k, mu) == (0, 0.5)
        pool.assign(0, 1, utils[1])
        k, mu = pool.pick(0.9, utils)
        assert (k, mu) == (1, 0.9)

    def test_steals_cheapest_owner(self):
        pool = _PseudoEventPool(2)
        utils = [0.9, 0.2, 0.7]
        pool.assign(0, 0, utils[0])  # owner utility 0.9
        pool.assign(1, 1, utils[1])  # owner utility 0.2
        k, mu = pool.pick(0.7, utils)
        assert k == 1  # cheaper owner
        assert mu == pytest.approx(0.7 - 0.2)

    def test_lazy_heap_survives_resteal(self):
        pool = _PseudoEventPool(1)
        utils = [0.1, 0.5, 0.9]
        pool.assign(0, 0, utils[0])
        k, mu = pool.pick(0.5, utils)
        assert mu == pytest.approx(0.4)
        pool.assign(0, 1, utils[1])  # re-stolen by user 1
        k, mu = pool.pick(0.9, utils)
        assert mu == pytest.approx(0.9 - 0.5)  # against the NEW owner


class TestDeDPBehaviour:
    def test_capacity_one_goes_to_best_user(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.5, 0.9]],
        )
        planning = DeDP().solve(inst)
        # user 1 values it more; decomposition reassigns it to user 1.
        assert planning.as_dict() == {1: [0]}

    def test_reassignment_only_for_strictly_better(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.9, 0.9]],  # tie: the earlier user keeps it
        )
        planning = DeDP().solve(inst)
        assert planning.as_dict() == {0: [0]}

    def test_user_gets_optimal_schedule_alone(self):
        """With one user, DeDP == DPSingle == optimal."""
        inst = grid_instance(
            [
                ((1, 0), 1, 0, 30),
                ((1, 0), 1, 0, 10),
                ((1, 0), 1, 20, 30),
            ],
            [((0, 0), 100)],
            [[0.9], [0.8], [0.8]],
        )
        planning = DeDP().solve(inst)
        assert planning.as_dict() == {0: [1, 2]}
        assert planning.total_utility() == pytest.approx(1.6)

    def test_valid_on_synthetic(self, small_synthetic):
        validate_planning(DeDP().solve(small_synthetic))

    def test_counters(self, small_synthetic):
        solver = DeDP()
        solver.solve(small_synthetic)
        assert solver.counters["dp_calls"] == small_synthetic.num_users
        assert solver.counters["hat_pairs"] >= solver.counters["removed_pairs"]


class TestDeDPOEquivalence:
    def test_identical_on_fixture(self, small_synthetic):
        a = DeDP().solve(small_synthetic)
        b = DeDPO().solve(small_synthetic)
        assert a.as_dict() == b.as_dict()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        cr=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        capacity=st.integers(1, 6),
    )
    def test_identical_on_random_instances(self, seed, cr, capacity):
        """Lemma 2: the select-array rewrite never changes the planning."""
        inst = generate_instance(
            SyntheticConfig(
                num_events=10,
                num_users=12,
                mean_capacity=capacity,
                conflict_ratio=cr,
                grid_size=25,
                seed=seed,
            )
        )
        a = DeDP().solve(inst)
        b = DeDPO().solve(inst)
        assert a.as_dict() == b.as_dict()
        validate_planning(a)
        validate_planning(b)


class TestDeGreedy:
    def test_valid_on_synthetic(self, small_synthetic):
        validate_planning(DeGreedy().solve(small_synthetic))

    def test_never_beats_dedpo(self, small_synthetic):
        """Greedy per-user schedules cannot beat DP per-user schedules...

        in *total* this is not a theorem (step-2 interactions), but on
        typical instances DeGreedy <= DeDPO holds; assert the documented
        weaker invariant instead: both are feasible and within 2x.
        """
        dg = DeGreedy().solve(small_synthetic).total_utility()
        dp = DeDPO().solve(small_synthetic).total_utility()
        assert dg <= dp * 2 + 1e-9
        assert dp <= dg * 2 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_feasible_on_random_instances(self, seed):
        inst = generate_instance(
            SyntheticConfig(
                num_events=8, num_users=10, mean_capacity=3, grid_size=20, seed=seed
            )
        )
        validate_planning(DeGreedy().solve(inst))

    def test_capacity_clamped_to_num_users(self):
        """Events with huge capacities must not blow up the expansion."""
        inst = grid_instance(
            [((1, 0), 10**9, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.5, 0.9]],
        )
        for solver in (DeDP(), DeDPO(), DeGreedy()):
            planning = solver.solve(inst)
            assert planning.occupancy(0) == 2
