"""Tests for the planning analytics module."""

import pytest

from repro.algorithms import DeDPO, RatioGreedy
from repro.analysis import analyze_planning, compare_plannings, gini_coefficient
from repro.core import Planning
from tests.conftest import grid_instance


class TestGini:
    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_all_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_perfect_equality(self):
        assert gini_coefficient([2.0, 2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_total_inequality_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # [1, 3]: MAD over all ordered pairs = (0+2+2+0)/4 = 1; mean = 2
        # -> gini = 1 / (2 * 2) = 0.25
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        a = [1.0, 2.0, 5.0]
        b = [10.0, 20.0, 50.0]
        assert gini_coefficient(a) == pytest.approx(gini_coefficient(b))


@pytest.fixture
def inst():
    return grid_instance(
        [((2, 0), 2, 0, 10), ((4, 0), 1, 20, 30)],
        [((0, 0), 50), ((6, 0), 50), ((1, 1), 2)],
        [[0.9, 0.5, 0.4], [0.8, 0.7, 0.0]],
    )


class TestAnalyzePlanning:
    def test_empty_planning(self, inst):
        report = analyze_planning(Planning(inst))
        assert report.total_utility == 0.0
        assert report.users_served == 0
        assert report.user_coverage == 0.0
        assert report.mean_fill_rate == 0.0
        assert report.utility_gini == 0.0
        assert report.max_schedule_length == 0

    def test_counts(self, inst):
        planning = Planning(inst)
        planning.add_pair(0, 0)
        planning.add_pair(1, 0)
        planning.add_pair(0, 1)
        report = analyze_planning(planning)
        assert report.arranged_pairs == 3
        assert report.users_served == 2
        assert report.user_coverage == pytest.approx(2 / 3)
        assert report.events_used == 2
        assert report.full_events == 2  # both events at capacity
        assert report.mean_fill_rate == pytest.approx(1.0)
        assert report.max_schedule_length == 2
        assert report.mean_schedule_length == pytest.approx(1.5)

    def test_budget_utilisation(self, inst):
        planning = Planning(inst)
        planning.add_pair(0, 0)  # round trip 4 of budget 50
        report = analyze_planning(planning)
        assert report.mean_budget_utilisation == pytest.approx(4 / 50)

    def test_per_user_utility(self, inst):
        planning = Planning(inst)
        planning.add_pair(0, 1)
        report = analyze_planning(planning)
        assert report.per_user_utility == [0.0, 0.5, 0.0]

    def test_summary_rows_render(self, inst):
        planning = Planning(inst)
        planning.add_pair(0, 0)
        rows = analyze_planning(planning).summary_rows()
        metrics = {row["metric"] for row in rows}
        assert "total utility" in metrics
        assert "utility Gini" in metrics

    def test_real_solver_outputs(self, small_synthetic):
        planning = DeDPO().solve(small_synthetic)
        report = analyze_planning(planning)
        assert 0.0 <= report.user_coverage <= 1.0
        assert 0.0 <= report.mean_fill_rate <= 1.0
        assert 0.0 <= report.utility_gini <= 1.0
        assert report.mean_budget_utilisation <= 1.0 + 1e-9


class TestComparePlannings:
    def test_rows(self, small_synthetic):
        rows = compare_plannings(
            {
                "DeDPO": DeDPO().solve(small_synthetic),
                "RatioGreedy": RatioGreedy().solve(small_synthetic),
            }
        )
        assert [row["solver"] for row in rows] == ["DeDPO", "RatioGreedy"]
        assert all("gini" in row for row in rows)
