"""Unit tests for USEPInstance: validation, derived structures, caches."""

import math

import numpy as np
import pytest

from repro.core import (
    Event,
    GridCostModel,
    InvalidInstanceError,
    TimeInterval,
    USEPInstance,
    User,
)
from tests.conftest import grid_instance, make_events, make_users


class TestValidation:
    def test_rejects_non_dense_event_ids(self):
        events = [Event(id=1, location=(0, 0), capacity=1, interval=TimeInterval(0, 1))]
        users = make_users([((0, 0), 10)])
        with pytest.raises(InvalidInstanceError, match="dense"):
            USEPInstance(events, users, GridCostModel(), [[0.5]])

    def test_rejects_non_dense_user_ids(self):
        events = make_events([((0, 0), 1, 0, 1)])
        users = [User(id=5, location=(0, 0), budget=10)]
        with pytest.raises(InvalidInstanceError, match="dense"):
            USEPInstance(events, users, GridCostModel(), [[0.5]])

    def test_rejects_bad_utility_shape(self):
        with pytest.raises(InvalidInstanceError, match="shape"):
            grid_instance([((0, 0), 1, 0, 1)], [((0, 0), 10)], [[0.5, 0.5]])

    def test_rejects_out_of_range_utilities(self):
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            grid_instance([((0, 0), 1, 0, 1)], [((0, 0), 10)], [[1.5]])
        with pytest.raises(InvalidInstanceError, match=r"\[0, 1\]"):
            grid_instance([((0, 0), 1, 0, 1)], [((0, 0), 10)], [[-0.1]])


class TestDerivedStructures:
    def test_sorted_event_ids_by_end_time(self, line_instance):
        assert line_instance.sorted_event_ids == [0, 1, 2]

    def test_sorted_order_with_shuffled_ends(self):
        inst = grid_instance(
            [((0, 0), 1, 20, 30), ((0, 0), 1, 0, 10), ((0, 0), 1, 10, 20)],
            [((0, 0), 10)],
            [[0.5], [0.5], [0.5]],
        )
        assert inst.sorted_event_ids == [1, 2, 0]
        # sorted_position is the inverse permutation
        for pos, ev_id in enumerate(inst.sorted_event_ids):
            assert inst.sorted_position[ev_id] == pos

    def test_l_index_counts_compatible_predecessors(self):
        # ends: 10, 20, 30; starts: 0, 10, 20
        inst = grid_instance(
            [((0, 0), 1, 0, 10), ((0, 0), 1, 10, 20), ((0, 0), 1, 20, 30)],
            [((0, 0), 10)],
            [[0.5], [0.5], [0.5]],
        )
        # event at pos 0 has no predecessors; pos 1 can follow pos 0;
        # pos 2 can follow pos 0 and pos 1.
        assert inst.l_index == [0, 1, 2]

    def test_l_index_with_overlaps(self):
        inst = grid_instance(
            [((0, 0), 1, 0, 10), ((0, 0), 1, 5, 15), ((0, 0), 1, 9, 30)],
            [((0, 0), 10)],
            [[0.5], [0.5], [0.5]],
        )
        # all three pairwise overlap: nothing precedes anything
        assert inst.l_index == [0, 0, 0]


class TestCostAccess:
    def test_cost_uv_matches_model(self, line_instance):
        assert line_instance.cost_uv(0, 0) == 2
        assert line_instance.cost_uv(1, 0) == 6

    def test_cost_vv_infeasible_for_wrong_order(self, line_instance):
        assert line_instance.cost_vv(0, 1) == 2
        assert math.isinf(line_instance.cost_vv(1, 0))

    def test_round_trip(self, line_instance):
        assert line_instance.round_trip_cost(0, 2) == 12

    def test_cost_rows_cached(self, line_instance):
        row1 = line_instance.costs_to_events(0)
        row2 = line_instance.costs_to_events(0)
        assert row1 is row2

    def test_cost_rows_not_cached_when_disabled(self):
        inst = USEPInstance(
            make_events([((2, 0), 1, 0, 10)]),
            make_users([((0, 0), 10)]),
            GridCostModel(),
            [[0.5]],
            cache_user_costs=False,
        )
        assert inst.costs_to_events(0) is not inst.costs_to_events(0)
        assert inst.costs_to_events(0) == [2]


class TestUtilities:
    def test_utility_lookup(self, line_instance):
        assert line_instance.utility(0, 0) == 0.9
        assert line_instance.utility(2, 1) == 0.3

    def test_row_and_column_views(self, line_instance):
        assert line_instance.utilities_for_user(0) == [0.9, 0.8, 0.7]
        assert line_instance.utilities_for_event(1) == [0.8, 0.2]

    def test_matrix_view_read_only(self, line_instance):
        view = line_instance.utility_matrix()
        with pytest.raises(ValueError):
            view[0, 0] = 0.1


class TestDiagnostics:
    def test_measured_conflict_ratio(self, conflict_instance):
        # events 0 and 1 overlap; 2 is compatible with both: 1/3.
        assert conflict_instance.measured_conflict_ratio() == pytest.approx(1 / 3)

    def test_clamped_capacity(self):
        inst = grid_instance(
            [((0, 0), 100, 0, 1)], [((0, 0), 10), ((1, 1), 10)], [[0.5, 0.5]]
        )
        assert inst.clamped_capacity(0) == 2

    def test_describe(self, line_instance):
        info = line_instance.describe()
        assert info["num_events"] == 3
        assert info["num_users"] == 2
        assert info["positive_utility_fraction"] == 1.0
