"""Tests for the Table 7 distribution samplers."""

import numpy as np
import pytest

from repro.core import InvalidInstanceError
from repro.datagen.distributions import (
    parse_power_param,
    sample_capacities,
    sample_clustered_points,
    sample_points,
    sample_utilities,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestUtilities:
    def test_uniform_range_and_mean(self, rng):
        draws = sample_utilities(rng, 20_000, "uniform")
        assert draws.min() >= 0.0 and draws.max() <= 1.0
        assert draws.mean() == pytest.approx(0.5, abs=0.02)

    def test_normal_clipped(self, rng):
        draws = sample_utilities(rng, 20_000, "normal")
        assert draws.min() >= 0.0 and draws.max() <= 1.0
        assert draws.mean() == pytest.approx(0.5, abs=0.02)
        # clipping creates mass at the boundaries
        assert (draws == 0.0).any()

    def test_power_low_param_skews_to_zero(self, rng):
        draws = sample_utilities(rng, 20_000, "power:0.5")
        # E[X] = a / (a + 1) = 1/3 for a = 0.5
        assert draws.mean() == pytest.approx(1 / 3, abs=0.02)

    def test_power_high_param_skews_to_one(self, rng):
        draws = sample_utilities(rng, 20_000, "power:4")
        assert draws.mean() == pytest.approx(4 / 5, abs=0.02)

    def test_shape_argument(self, rng):
        assert sample_utilities(rng, (3, 7), "uniform").shape == (3, 7)

    def test_unknown_spec(self, rng):
        with pytest.raises(InvalidInstanceError):
            sample_utilities(rng, 10, "cauchy")

    def test_bad_power_spec(self):
        with pytest.raises(InvalidInstanceError):
            parse_power_param("power:abc")
        with pytest.raises(InvalidInstanceError):
            parse_power_param("power:-1")


class TestCapacities:
    def test_uniform_mean_and_positivity(self, rng):
        caps = sample_capacities(rng, 20_000, mean=50)
        assert caps.min() >= 1
        assert caps.mean() == pytest.approx(50, rel=0.03)

    def test_uniform_mean_one(self, rng):
        caps = sample_capacities(rng, 100, mean=1)
        assert set(caps) == {1}

    def test_normal_mean_and_positivity(self, rng):
        caps = sample_capacities(rng, 20_000, mean=40, spec="normal")
        assert caps.min() >= 1
        assert caps.mean() == pytest.approx(40, rel=0.05)

    def test_integer_dtype(self, rng):
        caps = sample_capacities(rng, 10, mean=5, spec="normal")
        assert np.issubdtype(caps.dtype, np.integer)

    def test_rejects_bad_mean(self, rng):
        with pytest.raises(InvalidInstanceError):
            sample_capacities(rng, 10, mean=0)

    def test_unknown_spec(self, rng):
        with pytest.raises(InvalidInstanceError):
            sample_capacities(rng, 10, mean=5, spec="poisson")


class TestPoints:
    def test_points_on_lattice(self, rng):
        pts = sample_points(rng, 500, grid_size=30)
        assert pts.shape == (500, 2)
        assert pts.min() >= 0 and pts.max() <= 30
        assert np.issubdtype(pts.dtype, np.integer)

    def test_clustered_points_within_grid(self, rng):
        pts = sample_clustered_points(rng, 500, grid_size=100, num_clusters=4, spread=5)
        assert pts.min() >= 0 and pts.max() <= 100
        assert np.issubdtype(pts.dtype, np.integer)

    def test_clustered_points_actually_cluster(self, rng):
        clustered = sample_clustered_points(
            rng, 2000, grid_size=1000, num_clusters=3, spread=10
        )
        uniform = sample_points(rng, 2000, grid_size=1000)
        assert clustered.std() < uniform.std()

    def test_zero_points(self, rng):
        assert sample_clustered_points(rng, 0, 10, 2, 1.0).shape == (0, 2)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = sample_utilities(np.random.default_rng(7), 100, "power:4")
        b = sample_utilities(np.random.default_rng(7), 100, "power:4")
        assert np.array_equal(a, b)
