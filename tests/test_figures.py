"""Tests for the declarative figure specs (the experiment index)."""

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, SCALABLE_ALGORITHMS
from repro.experiments import ALL_SPECS, get_spec, list_specs
from repro.experiments.figures import BASE_CONFIGS


class TestSpecRegistry:
    def test_every_figure_panel_covered(self):
        """DESIGN.md's experiment index: all 13 sweeps registered."""
        expected = {
            "fig2-v", "fig2-u", "fig2-cv", "fig2-cr",
            "fig3-fb", "fig3-power", "fig3-cv-normal", "fig3-bu-normal",
            "fig4-v100", "fig4-v200", "fig4-v500", "fig4-real", "fig4-spot",
        }
        assert set(ALL_SPECS) == expected

    def test_get_spec_error(self):
        with pytest.raises(KeyError, match="available"):
            get_spec("fig9-z")

    def test_list_specs_order_stable(self):
        keys = [s.key for s in list_specs()]
        assert keys[0] == "fig2-v"
        assert keys[-1] == "fig4-spot"

    def test_experiment_ids_unique(self):
        ids = [s.experiment_id for s in list_specs()]
        assert len(ids) == len(set(ids))


class TestPaperScaleMatchesTable7:
    def test_fig2_sweeps(self):
        assert [p.axis_value for p in get_spec("fig2-v").points("paper")] == [
            20, 50, 100, 200, 500,
        ]
        assert [p.axis_value for p in get_spec("fig2-u").points("paper")] == [
            100, 200, 500, 1000, 5000,
        ]
        assert [p.axis_value for p in get_spec("fig2-cv").points("paper")] == [
            10, 20, 50, 100, 200,
        ]
        assert [p.axis_value for p in get_spec("fig2-cr").points("paper")] == [
            0.0, 0.25, 0.5, 0.75, 1.0,
        ]

    def test_fig3_budget_sweep(self):
        assert [p.axis_value for p in get_spec("fig3-fb").points("paper")] == [
            0.5, 1.0, 2.0, 5.0, 10.0,
        ]

    def test_fig4_scalability_sweep(self):
        values = [p.axis_value for p in get_spec("fig4-v100").points("paper")]
        assert values == [10_000, 20_000, 30_000, 40_000, 50_000, 100_000]

    def test_paper_base_config_is_table7_default(self):
        base = BASE_CONFIGS["paper"]
        assert base.num_events == 100
        assert base.num_users == 5000
        assert base.mean_capacity == 50

    def test_fig4_excludes_dedp(self):
        """The paper drops DeDP from scalability runs (not scalable)."""
        for key in ("fig4-v100", "fig4-v200", "fig4-v500"):
            assert list(get_spec(key).algorithms) == SCALABLE_ALGORITHMS

    def test_fig2_uses_all_six(self):
        assert list(get_spec("fig2-v").algorithms) == PAPER_ALGORITHMS


class TestPointConstruction:
    def test_points_lazy(self):
        # Building the SweepPoint list must not build instances.
        points = get_spec("fig2-v").points("paper")
        assert len(points) == 5  # no instance was generated to get here

    def test_tiny_points_build_real_instances(self):
        point = get_spec("fig2-v").points("tiny")[0]
        inst = point.build()
        assert inst.num_events == point.axis_value

    def test_varied_parameter_lands_in_instance(self):
        point = get_spec("fig2-cr").points("tiny")[-1]
        inst = point.build()
        assert inst.measured_conflict_ratio() == 1.0

    def test_fig3_power_uses_power_utilities(self):
        inst = get_spec("fig3-power").points("tiny")[0].build()
        # Power(0.5) mean is 1/3, far from uniform's 1/2
        assert inst.utility_matrix().mean() < 0.45

    def test_fig4_real_builds_city(self):
        inst = get_spec("fig4-real").points("tiny")[0].build()
        assert inst.num_events == 37  # auckland at tiny scale

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_spec("fig2-v").points("huge")

    def test_scalability_points_disable_cost_cache(self):
        inst = get_spec("fig4-v100").points("tiny")[0].build()
        assert inst._cache_user_costs is False
