"""Tests for tag vocabulary and tag similarity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ebsn.tags import (
    TAG_VOCABULARY,
    cosine_similarity,
    jaccard_similarity,
    sample_tag_set,
    zipf_weights,
)

tag_sets = st.frozensets(st.sampled_from(TAG_VOCABULARY[:20]), max_size=8)


class TestVocabulary:
    def test_no_duplicates(self):
        assert len(TAG_VOCABULARY) == len(set(TAG_VOCABULARY))

    def test_reasonably_large(self):
        assert len(TAG_VOCABULARY) >= 100


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(50).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(30)
        assert all(w[i] >= w[i + 1] for i in range(len(w) - 1))

    def test_exponent_controls_skew(self):
        flat = zipf_weights(30, exponent=0.1)
        steep = zipf_weights(30, exponent=2.0)
        assert steep[0] > flat[0]


class TestSampleTagSet:
    def test_non_empty(self):
        rng = np.random.default_rng(0)
        weights = zipf_weights(40)
        for _ in range(50):
            assert len(sample_tag_set(rng, weights, mean_tags=3)) >= 1

    def test_head_tags_more_frequent(self):
        rng = np.random.default_rng(1)
        weights = zipf_weights(60)
        counts = {t: 0 for t in TAG_VOCABULARY[:60]}
        for _ in range(2000):
            for tag in sample_tag_set(rng, weights, mean_tags=4):
                counts[tag] += 1
        head = sum(counts[t] for t in TAG_VOCABULARY[:10])
        tail = sum(counts[t] for t in TAG_VOCABULARY[50:60])
        assert head > tail * 3

    def test_within_vocabulary(self):
        rng = np.random.default_rng(2)
        weights = zipf_weights(25)
        tags = sample_tag_set(rng, weights, mean_tags=5)
        assert tags <= set(TAG_VOCABULARY[:25])


class TestSimilarity:
    def test_cosine_identical(self):
        s = frozenset({"a", "b"})
        assert cosine_similarity(s, s) == 1.0

    def test_cosine_disjoint(self):
        assert cosine_similarity(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_cosine_partial(self):
        a = frozenset({"a", "b", "c", "d"})
        b = frozenset({"a"})
        assert cosine_similarity(a, b) == pytest.approx(1 / 2)

    def test_empty_sets(self):
        assert cosine_similarity(frozenset(), frozenset({"a"})) == 0.0
        assert jaccard_similarity(frozenset(), frozenset()) == 0.0

    def test_jaccard(self):
        a = frozenset({"a", "b", "c"})
        b = frozenset({"b", "c", "d"})
        assert jaccard_similarity(a, b) == pytest.approx(2 / 4)

    @given(a=tag_sets, b=tag_sets)
    def test_similarity_bounds_and_symmetry(self, a, b):
        for sim in (cosine_similarity, jaccard_similarity):
            value = sim(a, b)
            assert 0.0 <= value <= 1.0
            assert value == sim(b, a)

    @given(a=tag_sets, b=tag_sets)
    def test_jaccard_leq_cosine(self, a, b):
        # |a&b|/|a|b|| >= |a&b|/sqrt(|a||b|) is false in general;
        # the true relation is jaccard <= cosine.
        assert jaccard_similarity(a, b) <= cosine_similarity(a, b) + 1e-12
