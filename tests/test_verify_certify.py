"""Certificates beyond feasibility (repro.verify.certify).

Omega recomputation, the Theorem 3 half-approximation bound checked
against the exact solver, and capacity monotonicity of the verified
optimum — plus the failure paths (a lying utility, a bound violation)
that each certificate must flag.
"""

import numpy as np
import pytest

from repro.algorithms import make_solver
from repro.core.costs import GridCostModel
from repro.core.entities import Event, User
from repro.core.instance import USEPInstance
from repro.core.timeutils import TimeInterval
from repro.datagen import SyntheticConfig, generate_instance
from repro.verify.certify import (
    HALF_APPROX_ALGORITHMS,
    certify_capacity_monotonicity,
    certify_half_approximation,
    certify_omega,
    exact_optimum,
    recompute_utility,
    with_increased_capacity,
)


def small_instance(seed=3, num_events=5, num_users=4, **overrides):
    return generate_instance(
        SyntheticConfig(
            num_events=num_events,
            num_users=num_users,
            mean_capacity=2,
            grid_size=15,
            seed=seed,
            **overrides,
        )
    )


class TestOmega:
    def test_recompute_matches_planning(self):
        inst = small_instance()
        planning = make_solver("DeDPO").solve(inst)
        assert recompute_utility(inst, planning.as_dict()) == pytest.approx(
            planning.total_utility()
        )

    def test_certify_omega_passes_on_honest_planning(self):
        inst = small_instance()
        planning = make_solver("DeGreedy").solve(inst)
        certificate = certify_omega(inst, planning)
        assert certificate.passed, certificate.details

    def test_certify_omega_fails_on_lied_utility(self):
        inst = small_instance()
        planning = make_solver("DeGreedy").solve(inst)
        certificate = certify_omega(
            inst, planning, reported_utility=planning.total_utility() + 0.5
        )
        assert not certificate.passed
        assert "delta" in certificate.details


class TestHalfApproximation:
    @pytest.mark.parametrize("seed", [1, 7, 21, 33])
    def test_dedp_family_certified_on_small_instances(self, seed):
        inst = small_instance(seed=seed)
        certificates = certify_half_approximation(inst)
        assert len(certificates) == len(HALF_APPROX_ALGORITHMS)
        for certificate in certificates:
            assert certificate.passed, (
                f"{certificate.name}: {certificate.details}"
            )

    def test_infeasible_output_fails_the_certificate(self):
        """A 'solver' whose output flunks the oracle cannot be certified,
        whatever utility it claims."""
        from repro.algorithms.base import Solver
        from repro.algorithms.registry import _FACTORIES
        from repro.core.planning import Planning

        class _Cheater(Solver):
            name = "Cheater"

            def solve(self, instance):
                planning = Planning(instance)
                for user_id in range(instance.num_users):
                    try:
                        planning.add_pair(0, user_id)
                    except Exception:
                        pass
                return planning

        inst = small_instance(seed=9, num_events=3, num_users=4)
        _FACTORIES["Cheater"] = _Cheater
        try:
            certificates = certify_half_approximation(
                inst, algorithms=["Cheater"]
            )
        finally:
            del _FACTORIES["Cheater"]
        # either the oracle rejects the planning or the (feasible) output
        # is certified like any other solver — on this instance event 0
        # has bounded capacity, so the oracle must reject
        assert not certificates[0].passed
        assert "oracle" in certificates[0].details


class TestCapacityMonotonicity:
    def test_raising_capacity_never_lowers_the_optimum(self):
        for seed in (2, 5, 12):
            inst = small_instance(seed=seed, num_events=4, num_users=3)
            certificate = certify_capacity_monotonicity(inst, event_id=0)
            assert certificate.passed, certificate.details

    def test_with_increased_capacity_only_touches_one_event(self):
        inst = small_instance(num_events=4, num_users=3)
        raised = with_increased_capacity(inst, 2, delta=3)
        assert raised.events[2].capacity == inst.events[2].capacity + 3
        for i in (0, 1, 3):
            assert raised.events[i] == inst.events[i]
        assert raised.users == inst.users
        assert np.array_equal(raised.utility_matrix(), inst.utility_matrix())

    def test_negative_delta_rejected(self):
        inst = small_instance(num_events=3, num_users=2)
        with pytest.raises(ValueError):
            with_increased_capacity(inst, 0, delta=-1)

    def test_empty_instance_trivially_monotone(self):
        inst = USEPInstance([], [], GridCostModel(), np.zeros((0, 0)))
        assert certify_capacity_monotonicity(inst).passed


class TestExactOptimum:
    def test_exact_optimum_is_verified_and_maximal(self):
        inst = small_instance(seed=17, num_events=4, num_users=3)
        opt = exact_optimum(inst)
        for name in ("RatioGreedy", "DeDP", "DeDPO", "DeGreedy"):
            utility = make_solver(name).solve(inst).total_utility()
            assert utility <= opt + 1e-9

    def test_certificate_serialises(self):
        inst = small_instance(seed=17, num_events=3, num_users=2)
        certificate = certify_capacity_monotonicity(inst)
        data = certificate.to_dict()
        assert data["name"] == "capacity-monotonicity"
        assert isinstance(data["passed"], bool)


def test_hand_built_monotonicity_example():
    """One seat, two users who both want the event: +1 capacity raises
    the optimum by exactly the second user's utility."""
    events = [Event(0, (0, 0), 1, TimeInterval(0, 1))]
    users = [User(0, (0, 0), 10), User(1, (0, 0), 10)]
    mu = np.array([[0.9, 0.7]])
    inst = USEPInstance(events, users, GridCostModel(), mu)
    assert exact_optimum(inst) == pytest.approx(0.9)
    raised = with_increased_capacity(inst, 0)
    assert exact_optimum(raised) == pytest.approx(1.6)
    assert certify_capacity_monotonicity(inst).passed
