"""Tests for the seeded fault-injection harness itself."""

import pytest

from repro.service import faults
from repro.service.faults import FaultPlan, FaultSpec, TransientFault


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.install(None)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("bitrot")

    def test_armed_window(self):
        spec = FaultSpec("transient", attempts=2)
        assert spec.armed(0) and spec.armed(1)
        assert not spec.armed(2)

    def test_permanent_fault(self):
        spec = FaultSpec("crash", attempts=-1)
        assert all(spec.armed(attempt) for attempt in range(10))


class TestFaultPlan:
    def test_random_plan_is_seed_deterministic(self):
        algorithms = ["DeDPO", "DeGreedy", "RatioGreedy"]
        a = FaultPlan.random(42, points=10, algorithms=algorithms)
        b = FaultPlan.random(42, points=10, algorithms=algorithms)
        c = FaultPlan.random(43, points=10, algorithms=algorithms)
        assert a.describe() == b.describe()
        assert a.describe() != c.describe()

    def test_random_plan_respects_rate(self):
        algorithms = ["DeDPO", "DeGreedy"]
        none = FaultPlan.random(1, points=20, algorithms=algorithms, rate=0.0)
        all_ = FaultPlan.random(1, points=20, algorithms=algorithms, rate=1.0)
        assert not none.faults
        assert len(all_.faults) == 40

    def test_spec_lookup(self):
        plan = FaultPlan({(3, "DeDPO"): FaultSpec("hang")})
        assert plan.spec_for((3, "DeDPO")).kind == "hang"
        assert plan.spec_for((3, "DeGreedy")) is None


class TestFiring:
    def test_disarmed_is_a_noop(self):
        faults.install(None)
        faults.fire_pre((0, "DeDPO"), 0, supervised=False)  # no raise

    def test_transient_raises(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("transient", -1)})
        )
        with pytest.raises(TransientFault):
            faults.fire_pre((0, "DeDPO"), 0, supervised=False)

    def test_memory_raises(self):
        faults.install(FaultPlan({(0, "DeDPO"): FaultSpec("memory", -1)}))
        with pytest.raises(MemoryError):
            faults.fire_pre((0, "DeDPO"), 0, supervised=False)

    def test_crash_unsupervised_is_catchable_base_exception(self):
        faults.install(FaultPlan({(0, "DeDPO"): FaultSpec("crash", -1)}))
        with pytest.raises(faults.SimulatedCrash):
            faults.fire_pre((0, "DeDPO"), 0, supervised=False)
        # and it must NOT be an ordinary Exception (solver guards
        # cannot swallow it, mirroring a real crash)
        assert not issubclass(faults.SimulatedCrash, Exception)

    def test_expired_fault_does_not_fire(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("transient", 1)})
        )
        with pytest.raises(TransientFault):
            faults.fire_pre((0, "DeDPO"), 0, supervised=False)
        faults.fire_pre((0, "DeDPO"), 1, supervised=False)  # no raise

    def test_other_cells_unaffected(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("transient", -1)})
        )
        faults.fire_pre((1, "DeDPO"), 0, supervised=False)
        faults.fire_pre((0, "DeGreedy"), 0, supervised=False)


class TestCorruption:
    def test_corrupts_non_empty_schedules_deterministically(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("corrupt", -1)}, seed=9)
        )
        schedules = {0: [1, 2], 1: [3]}
        a = faults.corrupt_schedules((0, "DeDPO"), 0, dict(schedules), 5)
        b = faults.corrupt_schedules((0, "DeDPO"), 0, dict(schedules), 5)
        assert a == b
        assert a != schedules  # actually corrupted
        # a duplicated event somewhere
        assert any(len(evs) != len(set(evs)) for evs in a.values())

    def test_corrupts_empty_planning(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("corrupt", -1)}, seed=9)
        )
        out = faults.corrupt_schedules((0, "DeDPO"), 0, {}, 4)
        assert out  # a bogus pair was introduced

    def test_no_corrupt_fault_passthrough(self):
        faults.install(FaultPlan({(0, "DeDPO"): FaultSpec("hang", -1)}))
        schedules = {0: [1]}
        assert (
            faults.corrupt_schedules((0, "DeDPO"), 0, schedules, 5)
            == schedules
        )

    def test_input_not_mutated(self):
        faults.install(
            FaultPlan({(0, "DeDPO"): FaultSpec("corrupt", -1)}, seed=9)
        )
        schedules = {0: [1, 2]}
        faults.corrupt_schedules((0, "DeDPO"), 0, schedules, 5)
        assert schedules == {0: [1, 2]}


class TestDiskFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="disk fault kind"):
            faults.DiskFaultSpec("disk-melted")

    def test_negative_after_writes_rejected(self):
        with pytest.raises(ValueError, match="after_writes"):
            faults.DiskFaultSpec("disk-eio", after_writes=-1)

    def test_armed_window(self):
        spec = faults.DiskFaultSpec("disk-eio", after_writes=2, attempts=3)
        assert [spec.armed(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_permanent_fault(self):
        spec = faults.DiskFaultSpec("disk-enospc", after_writes=1)
        assert not spec.armed(0)
        assert all(spec.armed(i) for i in range(1, 50))

    def test_from_string_full_form(self):
        spec = faults.DiskFaultSpec.from_string("disk-torn:5:2")
        assert spec == faults.DiskFaultSpec(
            "disk-torn", after_writes=5, attempts=2
        )

    def test_from_string_kind_only(self):
        spec = faults.DiskFaultSpec.from_string("disk-eio")
        assert spec == faults.DiskFaultSpec("disk-eio")

    def test_random_is_seed_deterministic(self):
        assert faults.DiskFaultSpec.random(41) == faults.DiskFaultSpec.random(
            41
        )
        specs = {faults.DiskFaultSpec.random(seed).kind for seed in range(40)}
        assert specs == set(faults.DISK_FAULT_KINDS)


class TestDiskFaultInstall:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        faults.install_disk(None)

    def test_install_and_disarm(self):
        assert faults.active_disk_io() is None
        faults.install_disk(faults.DiskFaultSpec("disk-eio"))
        assert faults.active_disk_io() is not None
        faults.install_disk(None)
        assert faults.active_disk_io() is None

    def test_reinstall_resets_the_write_counter(self):
        faults.install_disk(faults.DiskFaultSpec("disk-eio", after_writes=3))
        faults.active_disk_io().writes = 99
        faults.install_disk(faults.DiskFaultSpec("disk-eio", after_writes=3))
        assert faults.active_disk_io().writes == 0

    def test_install_from_env(self):
        spec = faults.install_disk_from_env({"REPRO_DISK_FAULT": "disk-torn:4"})
        assert spec == faults.DiskFaultSpec("disk-torn", after_writes=4)
        assert faults.active_disk_io().spec is spec

    def test_install_from_env_absent_is_noop(self):
        assert faults.install_disk_from_env({}) is None
        assert faults.active_disk_io() is None

    def test_install_from_env_blank_is_noop(self):
        assert faults.install_disk_from_env({"REPRO_DISK_FAULT": "  "}) is None
