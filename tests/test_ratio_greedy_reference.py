"""RatioGreedy's heap engine vs the naive global-best-pair reference.

Algorithm 1's heap maintenance exists purely for speed; semantically the
algorithm is "repeatedly add the feasible pair with the best ratio key".
This file implements that one-liner directly (quadratic rescan) and
property-tests that the production engine follows the exact same
trajectory — including the paper's tie-breaking rules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import RatioGreedy
from repro.algorithms.base import ratio_sort_key
from repro.core import Planning, validate_planning
from repro.datagen import SyntheticConfig, generate_instance


def ratio_greedy_reference(instance) -> Planning:
    """Naive Algorithm 1: rescan every pair, apply the global best."""
    planning = Planning(instance)
    while True:
        best_key = None
        best_pair = None
        for event_id in range(instance.num_events):
            if planning.is_full(event_id):
                continue
            utilities = instance.utilities_for_event(event_id)
            for user_id, mu in enumerate(utilities):
                if mu <= 0.0:
                    continue
                insertion = planning.plan_valid_insertion(event_id, user_id)
                if insertion is None:
                    continue
                key = ratio_sort_key(mu, insertion.inc_cost, event_id, user_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (event_id, user_id)
        if best_pair is None:
            return planning
        planning.add_pair(*best_pair)


class TestEngineMatchesReference:
    def test_on_paper_example(self):
        from repro.paper_example import build_example_instance

        inst = build_example_instance()
        assert RatioGreedy().solve(inst).as_dict() == (
            ratio_greedy_reference(inst).as_dict()
        )

    def test_on_fixture(self, small_synthetic):
        engine = RatioGreedy().solve(small_synthetic)
        reference = ratio_greedy_reference(small_synthetic)
        assert engine.as_dict() == reference.as_dict()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        cr=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        fb=st.sampled_from([0.5, 2.0, 10.0]),
        capacity=st.integers(1, 4),
    )
    def test_on_random_instances(self, seed, cr, fb, capacity):
        inst = generate_instance(
            SyntheticConfig(
                num_events=8,
                num_users=10,
                mean_capacity=capacity,
                conflict_ratio=cr,
                budget_factor=fb,
                grid_size=20,
                seed=seed,
            )
        )
        engine = RatioGreedy().solve(inst)
        reference = ratio_greedy_reference(inst)
        validate_planning(engine)
        assert engine.as_dict() == reference.as_dict()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sparse_utilities(self, seed):
        """Zero-heavy utility matrices exercise the 'no valid user' paths."""
        rng = np.random.default_rng(seed)
        inst = generate_instance(
            SyntheticConfig(
                num_events=6, num_users=8, mean_capacity=2, grid_size=15,
                utility_distribution="power:0.5", seed=seed,
            )
        )
        # zero out a random half of the pairs via the Remark-1 reduction
        from repro.variants import restrict_candidate_sets

        candidate_sets = {
            u: [v for v in range(inst.num_events) if rng.uniform() < 0.5]
            for u in range(inst.num_users)
        }
        restricted = restrict_candidate_sets(inst, candidate_sets)
        engine = RatioGreedy().solve(restricted)
        reference = ratio_greedy_reference(restricted)
        assert engine.as_dict() == reference.as_dict()
