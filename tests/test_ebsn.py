"""Tests for the EBSN platform simulator and the Table 6 city builders."""

import numpy as np
import pytest

from repro.core import InvalidInstanceError, validate_planning
from repro.ebsn import (
    CITY_PRESETS,
    CityConfig,
    build_city_instance,
    compute_utilities,
    generate_platform,
)


@pytest.fixture(scope="module")
def platform():
    return generate_platform(
        np.random.default_rng(4), num_users=200, num_events=40, grid_size=100
    )


class TestPlatformGeneration:
    def test_counts(self, platform):
        assert len(platform.users) == 200
        assert len(platform.events) == 40
        assert len(platform.groups) >= 1

    def test_events_inherit_group_tags(self, platform):
        """The paper's convention: event tags = creating group's tags."""
        for event in platform.events:
            assert event.tags == platform.groups[event.group_id].tags

    def test_events_near_group_district(self, platform):
        for event in platform.events[:10]:
            district = platform.groups[event.group_id].district
            dist = abs(event.location[0] - district[0]) + abs(
                event.location[1] - district[1]
            )
            assert dist < 100  # within a district radius, not uniform

    def test_memberships_share_tags(self, platform):
        for user in platform.users:
            for gid in user.groups:
                assert user.tags & platform.groups[gid].tags

    def test_every_user_has_tags(self, platform):
        assert all(user.tags for user in platform.users)

    def test_deterministic(self):
        a = generate_platform(np.random.default_rng(9), 50, 10, 50)
        b = generate_platform(np.random.default_rng(9), 50, 10, 50)
        assert [u.tags for u in a.users] == [u.tags for u in b.users]
        assert [e.location for e in a.events] == [e.location for e in b.events]


class TestComputeUtilities:
    def test_shape_and_range(self, platform):
        mu = compute_utilities(platform)
        assert mu.shape == (40, 200)
        assert mu.min() >= 0.0 and mu.max() <= 1.0

    def test_sparser_than_uniform(self, platform):
        """Tag-based utilities are sparse: many exact zeros."""
        mu = compute_utilities(platform)
        assert (mu == 0.0).mean() > 0.2

    def test_membership_boost(self, platform):
        plain = compute_utilities(platform, membership_boost=0.0)
        boosted = compute_utilities(platform, membership_boost=0.3)
        assert (boosted >= plain - 1e-12).all()
        assert (boosted > plain).any()

    def test_jaccard_option(self, platform):
        cos = compute_utilities(platform, similarity="cosine")
        jac = compute_utilities(platform, similarity="jaccard", membership_boost=0.0)
        assert (jac <= cos + 1e-12).all()

    def test_unknown_similarity(self, platform):
        with pytest.raises(InvalidInstanceError):
            compute_utilities(platform, similarity="dice")


class TestCityPresets:
    """EX-T6: the city snapshots reproduce Table 6."""

    def test_table6_statistics(self):
        assert CITY_PRESETS["vancouver"].num_events == 225
        assert CITY_PRESETS["vancouver"].num_users == 2012
        assert CITY_PRESETS["auckland"].num_events == 37
        assert CITY_PRESETS["auckland"].num_users == 569
        assert CITY_PRESETS["singapore"].num_events == 87
        assert CITY_PRESETS["singapore"].num_users == 1500
        for config in CITY_PRESETS.values():
            assert config.mean_capacity == 50
            assert config.conflict_ratio == 0.25


class TestBuildCityInstance:
    @pytest.fixture(scope="class")
    def auckland(self):
        return build_city_instance("auckland")

    def test_dimensions_match_table6(self, auckland):
        assert auckland.num_events == 37
        assert auckland.num_users == 569

    def test_capacity_mean_near_50(self, auckland):
        caps = [ev.capacity for ev in auckland.events]
        assert np.mean(caps) == pytest.approx(50, rel=0.3)

    def test_conflict_ratio_near_quarter(self, auckland):
        assert auckland.measured_conflict_ratio() == pytest.approx(0.25, abs=0.1)

    def test_budget_factor_override(self):
        lo = build_city_instance("auckland", budget_factor=0.5)
        hi = build_city_instance("auckland", budget_factor=5.0)
        assert np.mean([u.budget for u in hi.users]) > np.mean(
            [u.budget for u in lo.users]
        )

    def test_accepts_config_object(self):
        config = CityConfig(name="mini", num_events=5, num_users=20)
        inst = build_city_instance(config)
        assert inst.num_events == 5

    def test_rejects_unknown_city(self):
        with pytest.raises(InvalidInstanceError):
            build_city_instance("atlantis")

    def test_rejects_wrong_type(self):
        with pytest.raises(InvalidInstanceError):
            build_city_instance(42)

    def test_solvers_run_on_city(self):
        from repro.algorithms import make_solver

        config = CityConfig(name="mini", num_events=8, num_users=30)
        inst = build_city_instance(config)
        for name in ("RatioGreedy", "DeDPO", "DeGreedy+RG"):
            validate_planning(make_solver(name).solve(inst))
