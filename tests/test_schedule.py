"""Unit tests for Schedule: Equation (3) inc_cost, feasibility, mutation."""

import pytest

from repro.core import InfeasibleScheduleError, Schedule
from tests.conftest import grid_instance


@pytest.fixture
def inst():
    """Four sequential events on a line; user at origin.

    x positions: u=0, v0=2, v1=4, v2=6, v3=8;
    times: [0,10], [10,20], [20,30], [30,40].
    """
    return grid_instance(
        [
            ((2, 0), 5, 0, 10),
            ((4, 0), 5, 10, 20),
            ((6, 0), 5, 20, 30),
            ((8, 0), 5, 30, 40),
        ],
        [((0, 0), 1000)],
        [[0.5], [0.5], [0.5], [0.5]],
    )


class TestIncCostEquation3:
    """Each arm of Equation (3), on hand-computed Manhattan values."""

    def test_empty_schedule_round_trip(self, inst):
        s = Schedule(0)
        ins = s.plan_insertion(inst, 1)
        # cost(u,v1) + cost(v1,u) = 4 + 4
        assert ins.inc_cost == 8
        assert ins.position == 0

    def test_prepend(self, inst):
        s = Schedule(0)
        s.insert_event(inst, 1)  # schedule = [v1] at x=4
        ins = s.plan_insertion(inst, 0)  # v0 at x=2 goes first
        # cost(u,v0) + cost(v0,v1) - cost(u,v1) = 2 + 2 - 4
        assert ins.inc_cost == 0
        assert ins.position == 0

    def test_insert_between(self, inst):
        s = Schedule(0)
        s.insert_event(inst, 0)
        s.insert_event(inst, 2)  # schedule = [v0, v2]
        ins = s.plan_insertion(inst, 1)
        # cost(v0,v1) + cost(v1,v2) - cost(v0,v2) = 2 + 2 - 4
        assert ins.inc_cost == 0
        assert ins.position == 1

    def test_append(self, inst):
        s = Schedule(0)
        s.insert_event(inst, 0)  # [v0]
        ins = s.plan_insertion(inst, 3)
        # cost(v0,v3) + cost(v3,u) - cost(v0,u) = 6 + 8 - 2
        assert ins.inc_cost == 12
        assert ins.position == 1

    def test_detour_costs_positive(self):
        # v1 requires a detour off the u->v0 line: inc_cost > 0.
        inst = grid_instance(
            [((10, 0), 5, 10, 20), ((5, 5), 5, 0, 10)],
            [((0, 0), 1000)],
            [[0.5], [0.5]],
        )
        s = Schedule(0)
        s.insert_event(inst, 0)  # straight line, cost 20 round trip
        ins = s.plan_insertion(inst, 1)
        # cost(u,v1)+cost(v1,v0)-cost(u,v0) = 10 + 10 - 10
        assert ins.inc_cost == 10

    def test_total_cost_tracks_insertions(self, inst):
        s = Schedule(0)
        total = 0.0
        for ev in [1, 0, 3, 2]:
            ins = s.plan_insertion(inst, ev)
            total += ins.inc_cost
            s.insert(inst, ins)
        assert s.total_cost(inst) == total
        # recomputation agrees: u->2->4->6->8->u = 2+2+2+2+8
        assert Schedule(0, s.event_ids).total_cost(inst) == 16


class TestFeasibility:
    def test_rejects_duplicate(self, inst):
        s = Schedule(0)
        s.insert_event(inst, 1)
        assert s.plan_insertion(inst, 1) is None

    def test_rejects_overlap(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        s = Schedule(0)
        s.insert_event(inst, 0)
        assert s.plan_insertion(inst, 1) is None

    def test_rejects_unreachable_leg(self):
        # speed 1, gap 1 time unit, distance 50: leg is infeasible.
        inst = grid_instance(
            [((0, 0), 1, 0, 10), ((50, 0), 1, 11, 20)],
            [((0, 0), 1000)],
            [[0.5], [0.5]],
            speed=1.0,
        )
        s = Schedule(0)
        s.insert_event(inst, 0)
        assert s.plan_insertion(inst, 1) is None

    def test_back_to_back_allowed(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((1, 0), 1, 10, 20)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        s = Schedule(0)
        s.insert_event(inst, 0)
        assert s.plan_insertion(inst, 1) is not None

    def test_is_time_feasible(self, inst):
        s = Schedule(0, [0, 2])
        assert s.is_time_feasible(inst)

    def test_fits_budget(self):
        inst = grid_instance(
            [((5, 0), 1, 0, 10)], [((0, 0), 9)], [[0.5]]
        )
        s = Schedule(0)
        ins = s.plan_insertion(inst, 0)
        assert ins.inc_cost == 10
        assert not s.fits_budget(inst, ins.inc_cost)


class TestMutation:
    def test_insert_stale_raises(self, inst):
        s = Schedule(0)
        ins = s.plan_insertion(inst, 2)
        s.insert_event(inst, 1)  # schedule changed since planning
        with pytest.raises(InfeasibleScheduleError):
            s.insert(inst, ins)

    def test_insert_event_infeasible_raises(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        s = Schedule(0)
        s.insert_event(inst, 0)
        with pytest.raises(InfeasibleScheduleError):
            s.insert_event(inst, 1)

    def test_remove_recomputes_cost(self, inst):
        s = Schedule(0)
        for ev in [0, 1, 2]:
            s.insert_event(inst, ev)
        s.remove(inst, 1)
        assert s.event_ids == [0, 2]
        # u->2->6->u = 2 + 4 + 6
        assert s.total_cost(inst) == 12

    def test_remove_missing_raises(self, inst):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(0).remove(inst, 0)

    def test_copy_is_independent(self, inst):
        s = Schedule(0)
        s.insert_event(inst, 0)
        dup = s.copy()
        dup.insert_event(inst, 1)
        assert len(s) == 1
        assert len(dup) == 2

    def test_maintains_time_order(self, inst):
        s = Schedule(0)
        for ev in [3, 0, 2, 1]:
            s.insert_event(inst, ev)
        assert s.event_ids == [0, 1, 2, 3]
