"""Tests for the Solver base machinery (instrumentation, validation)."""

import pytest

from repro.algorithms import make_solver
from repro.algorithms.base import Solver, warm_instance
from repro.core import ConstraintViolationError, Planning
from repro.datagen import SyntheticConfig, generate_instance


class _BrokenSolver(Solver):
    """Deliberately violates the capacity constraint (for testing run())."""

    name = "Broken"

    def solve(self, instance):
        planning = Planning(instance)
        # force two attendees into a capacity-1 event by bypassing guards
        victims = [u for u in range(instance.num_users)][:2]
        for user_id in victims:
            planning.schedules[user_id].replace_events(instance, [0])
            planning._occupancy[0] += 1
        return planning


def _tight_instance():
    return generate_instance(
        SyntheticConfig(num_events=3, num_users=5, mean_capacity=1, seed=1)
    )


class TestRunValidation:
    def test_validate_catches_broken_solver(self):
        inst = _tight_instance()
        assert inst.events[0].capacity == 1
        with pytest.raises(ConstraintViolationError):
            _BrokenSolver().run(inst, validate=True)

    def test_no_validate_lets_it_through(self):
        inst = _tight_instance()
        result = _BrokenSolver().run(inst, validate=False)
        assert result.utility > 0  # garbage, but returned


class TestMemoryMeasurement:
    def test_memory_none_without_flag(self, tiny_synthetic):
        result = make_solver("DeGreedy").run(tiny_synthetic)
        assert result.peak_memory_bytes is None

    def test_memory_positive_with_flag(self, tiny_synthetic):
        result = make_solver("DeGreedy").run(tiny_synthetic, measure_memory=True)
        assert result.peak_memory_bytes > 0

    def test_warm_instance_skips_user_rows_when_uncached(self):
        inst = generate_instance(
            SyntheticConfig(
                num_events=4, num_users=6, mean_capacity=2, seed=1,
                cache_user_costs=False,
            )
        )
        warm_instance(inst)
        assert inst._to_event_cache == {}
        assert inst._vv_cost is not None

    def test_tracemalloc_stopped_after_run(self, tiny_synthetic):
        import tracemalloc

        make_solver("DeGreedy").run(tiny_synthetic, measure_memory=True)
        assert not tracemalloc.is_tracing()

    def test_tracemalloc_stopped_even_on_error(self):
        import tracemalloc

        class _Exploding(Solver):
            name = "Exploding"

            def solve(self, instance):
                raise RuntimeError("boom")

        inst = _tight_instance()
        with pytest.raises(RuntimeError):
            _Exploding().run(inst, measure_memory=True)
        assert not tracemalloc.is_tracing()


class TestCounters:
    def test_counters_copied_into_result(self, tiny_synthetic):
        result = make_solver("RatioGreedy").run(tiny_synthetic)
        assert "pairs_added" in result.counters
        # the dict is a snapshot, not a live reference
        result.counters["pairs_added"] = -1
        fresh = make_solver("RatioGreedy").run(tiny_synthetic)
        assert fresh.counters["pairs_added"] >= 0
