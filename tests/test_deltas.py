"""Property tests of the dynamic mutation layer (repro.core.deltas).

The contracts under test, per the module's own invalidation table:

* **dirty-set exactness** — every mutation kind reports exactly the
  analytically-affected users (candidate-view membership for event
  edits, the touched user for budget edits even when the view is
  unchanged, the Lemma-1 survivor set for a new event);
* **structural bit-identity** — after any mutation, every derived
  array and index row equals a from-scratch build on the mutated
  content, and a delta re-solve's planning bit-matches a cold solve;
* **memo exactness** — a delta re-solve re-runs Step 1 only for the
  dirty users, everyone else memo-hits;
* **staleness is impossible by construction** — the whole-solve replay
  cache is keyed on the content token and can never replay a
  pre-mutation planning, the batch shape cache is cleared on event-set
  changes, and the cross-cell build cache drops its registration so
  the old fingerprint cannot adopt the mutated object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import make_solver
from repro.core import build_cache
from repro.core.deltas import (
    AddEvent,
    AddUser,
    BudgetChange,
    CapacityChange,
    DropEvent,
    DropUser,
    UtilityChange,
    apply_mutation,
    apply_mutations,
    dirty_union,
)
from repro.core.exceptions import InvalidInstanceError
from repro.datagen import SyntheticConfig, generate_instance
from repro.io import (
    canonical_planning_bytes,
    instance_from_dict,
    instance_to_dict,
)

SOLVERS = ("DeDP", "DeDPO", "DeGreedy")


def make_instance(**overrides) -> "USEPInstance":
    defaults = dict(num_events=10, num_users=24, mean_capacity=3, seed=42)
    defaults.update(overrides)
    return generate_instance(SyntheticConfig(**defaults))


def cold_twin(instance):
    """A from-scratch instance of the same content (fresh JSON decode)."""
    return instance_from_dict(instance_to_dict(instance))


def assert_structurally_fresh(instance):
    """Every derived structure equals a from-scratch build, bit for bit."""
    cold = cold_twin(instance)
    live_a, cold_a = instance.arrays(), cold.arrays()
    for attr in ("mu", "vv", "event_start", "event_end", "order", "pos",
                 "l_index", "budgets", "to_events", "from_events",
                 "round_trip"):
        live_v, cold_v = getattr(live_a, attr), getattr(cold_a, attr)
        if live_v is None or cold_v is None:
            assert live_v is cold_v, attr
            continue
        np.testing.assert_array_equal(live_v, cold_v, err_msg=attr)
    live_i, cold_i = live_a.engine().index, cold_a.engine().index
    if live_i is None or cold_i is None:
        assert live_i is cold_i
        return
    assert live_i.per_user == cold_i.per_user
    assert live_i.static_views == cold_i.static_views
    assert live_i.positive_pairs == cold_i.positive_pairs
    assert live_i.pruned_pairs == cold_i.pruned_pairs
    assert live_i.survivor_pairs == cold_i.survivor_pairs


def assert_delta_matches_cold(instance):
    """Delta re-solves bit-match cold solves of the mutated content."""
    cold = cold_twin(instance)
    for name in SOLVERS:
        delta = make_solver(name).solve(instance)
        fresh = make_solver(name).solve(cold)
        assert canonical_planning_bytes(delta) == canonical_planning_bytes(
            fresh
        ), name


def candidate_view_members(instance, event_id):
    index = instance.arrays().engine().index
    return frozenset(
        u for u, cands in enumerate(index.per_user) if event_id in cands
    )


def analytic_survivors(instance, event_id):
    arrays = instance.arrays()
    positive = arrays.mu[event_id, :] > 0.0
    feasible = arrays.round_trip[:, event_id] <= arrays.budgets
    return frozenset(np.nonzero(positive & feasible)[0].tolist())


class TestValidationLeavesInstanceUntouched:
    def test_bad_event_id(self):
        instance = make_instance()
        before = instance_to_dict(instance)
        with pytest.raises(InvalidInstanceError):
            apply_mutation(instance, CapacityChange(instance.num_events, 3))
        assert instance.version == 0
        assert instance_to_dict(instance) == before

    def test_bad_user_id(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(instance, BudgetChange(-1, 5.0))
        assert instance.version == 0

    def test_utility_out_of_range(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(instance, UtilityChange(0, 0, 1.5))
        assert instance.version == 0

    def test_add_user_wrong_utility_length(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(
                instance,
                AddUser(location=(1.0, 1.0), budget=5.0, utilities=(0.5,)),
            )
        assert instance.version == 0
        assert instance.num_users == 24

    def test_add_event_bad_interval(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(
                instance,
                AddEvent(
                    location=(1.0, 1.0),
                    capacity=2,
                    start=10.0,
                    end=10.0,
                    utilities=tuple(0.5 for _ in range(instance.num_users)),
                ),
            )
        assert instance.version == 0

    def test_capacity_below_one(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(instance, CapacityChange(0, 0))
        assert instance.version == 0

    def test_unknown_mutation_type(self):
        instance = make_instance()
        with pytest.raises(InvalidInstanceError):
            apply_mutation(instance, "not-a-mutation")

    def test_stream_stops_at_first_invalid(self):
        instance = make_instance()
        stream = [
            BudgetChange(0, 1.25),
            CapacityChange(instance.num_events, 3),  # invalid
            BudgetChange(1, 2.5),
        ]
        with pytest.raises(InvalidInstanceError):
            apply_mutations(instance, stream)
        # the valid prefix stayed applied, the suffix never ran
        assert instance.version == 1
        assert instance.users[0].budget == 1.25
        assert instance.users[1].budget != 2.5


class TestDirtySetExactness:
    """Each kind's dirty set equals the analytically-affected set."""

    def test_budget_change_dirties_exactly_the_user(self):
        instance = make_instance()
        make_solver("DeDPO").solve(instance)
        report = apply_mutation(instance, BudgetChange(5, 0.25))
        assert report.dirty_users == frozenset({5})

    def test_budget_change_dirties_even_when_view_unchanged(self):
        # Raising an already-ample budget keeps the candidate view
        # identical, but the budget value itself feeds the DP threshold
        # walk — a memo hit would replay a schedule computed under the
        # old budget, so the user must still be dirty.
        instance = make_instance()
        index = instance.arrays().engine().index
        apply_mutation(instance, BudgetChange(7, 1e6))  # everything in view
        view_before = index.static_views[7]
        report = apply_mutation(instance, BudgetChange(7, 2e6))
        assert index.static_views[7] == view_before
        assert report.dirty_users == frozenset({7})

    def test_utility_change_dirty_iff_feasible_and_positive(self):
        instance = make_instance()
        arrays = instance.arrays()
        # a budget-feasible (event, user) pair with positive utility
        feasible = np.nonzero(
            (arrays.round_trip <= arrays.budgets[:, None]) & (arrays.mu.T > 0)
        )
        user_id, event_id = int(feasible[0][0]), int(feasible[1][0])
        report = apply_mutation(
            instance, UtilityChange(event_id, user_id, 0.123456)
        )
        assert report.dirty_users == frozenset({user_id})

    def test_utility_change_on_infeasible_event_is_clean(self):
        instance = make_instance()
        apply_mutation(instance, BudgetChange(3, 0.0))  # nothing reachable
        report = apply_mutation(instance, UtilityChange(0, 3, 0.9))
        assert report.dirty_users == frozenset()

    def test_zero_to_zero_utility_is_noop(self):
        instance = make_instance()
        arrays = instance.arrays()
        zeros = np.nonzero(arrays.mu == 0.0)
        if not len(zeros[0]):
            pytest.skip("no zero utility cell in this instance")
        event_id, user_id = int(zeros[0][0]), int(zeros[1][0])
        version = instance.version
        report = apply_mutation(instance, UtilityChange(event_id, user_id, 0.0))
        assert report.noop
        assert instance.version == version

    def test_capacity_change_dirties_candidate_view_members(self):
        instance = make_instance()
        expected = candidate_view_members(instance, 2)
        report = apply_mutation(instance, CapacityChange(2, 1))
        assert report.dirty_users == expected

    def test_add_event_dirties_its_lemma1_survivors(self):
        instance = make_instance()
        instance.arrays().engine()  # build the index first
        mutation = AddEvent(
            location=(3.0, 4.0),
            capacity=2,
            start=1.0,
            end=9.0,
            utilities=tuple(
                0.8 if u % 3 else 0.0 for u in range(instance.num_users)
            ),
        )
        report = apply_mutation(instance, mutation)
        new_event = instance.num_events - 1
        assert report.dirty_users == analytic_survivors(instance, new_event)

    def test_drop_event_dirties_predrop_view_members(self):
        instance = make_instance()
        expected = candidate_view_members(instance, 4)
        report = apply_mutation(instance, DropEvent(4))
        assert report.dirty_users == expected

    def test_add_user_dirties_only_the_new_user(self):
        instance = make_instance()
        instance.arrays().engine()
        report = apply_mutation(
            instance,
            AddUser(
                location=(2.0, 2.0),
                budget=30.0,
                utilities=tuple(0.5 for _ in range(instance.num_events)),
            ),
        )
        assert report.dirty_users == frozenset({instance.num_users - 1})

    def test_drop_user_dirties_nobody(self):
        instance = make_instance()
        instance.arrays().engine()
        report = apply_mutation(instance, DropUser(6))
        assert report.dirty_users == frozenset()

    def test_dirty_union(self):
        instance = make_instance()
        reports = apply_mutations(
            instance, [BudgetChange(1, 0.5), BudgetChange(9, 0.5)]
        )
        assert dirty_union(reports) == frozenset({1, 9})


MUTATION_CASES = [
    ("budget_change", lambda i: BudgetChange(5, 2.75)),
    ("capacity_change", lambda i: CapacityChange(3, 1)),
    ("utility_change", lambda i: UtilityChange(2, 8, 0.654321)),
    ("drop_user", lambda i: DropUser(4)),
    ("drop_event", lambda i: DropEvent(1)),
    (
        "add_user",
        lambda i: AddUser(
            location=(7.0, 3.0),
            budget=25.0,
            utilities=tuple(
                0.4 if v % 2 else 0.0 for v in range(i.num_events)
            ),
        ),
    ),
    (
        "add_event",
        lambda i: AddEvent(
            location=(5.0, 5.0),
            capacity=3,
            start=2.0,
            end=11.0,
            utilities=tuple(
                0.6 if u % 2 else 0.0 for u in range(i.num_users)
            ),
        ),
    ),
]


class TestStructuralBitIdentity:
    @pytest.mark.parametrize("kind,build", MUTATION_CASES, ids=[k for k, _ in MUTATION_CASES])
    def test_arrays_and_index_match_fresh_build(self, kind, build):
        instance = make_instance()
        make_solver("DeDPO").solve(instance)  # warm every layer
        apply_mutation(instance, build(instance))
        assert_structurally_fresh(instance)

    @pytest.mark.parametrize("kind,build", MUTATION_CASES, ids=[k for k, _ in MUTATION_CASES])
    def test_delta_solve_bitmatches_cold_solve(self, kind, build):
        instance = make_instance()
        for name in SOLVERS:
            make_solver(name).solve(instance)
        apply_mutation(instance, build(instance))
        assert_delta_matches_cold(instance)

    def test_mutation_stream_stays_bit_identical(self):
        instance = make_instance(num_events=8, num_users=16)
        make_solver("DeDPO").solve(instance)
        stream = [
            BudgetChange(2, 1.5),
            CapacityChange(0, 2),
            UtilityChange(3, 5, 0.42),
            DropEvent(6),
            AddUser(
                location=(1.0, 9.0),
                budget=40.0,
                utilities=tuple(0.3 for _ in range(7)),
            ),
            DropUser(0),
        ]
        for mutation in stream:
            apply_mutation(instance, mutation)
            assert_delta_matches_cold(instance)
        assert_structurally_fresh(instance)


class TestMemoExactness:
    def test_delta_resolve_reruns_only_dirty_users(self):
        # Uncontended capacities: every user keeps their static view,
        # so a re-solve after one budget edit misses exactly once (the
        # dirty user) and memo-hits everyone else.
        instance = make_instance(mean_capacity=5000, num_users=50)
        engine = instance.arrays().engine()
        make_solver("DeDPO").solve(instance)
        apply_mutation(instance, BudgetChange(3, 1.0))
        hits0, misses0 = engine.memo.hits, engine.memo.misses
        make_solver("DeDPO").solve(instance)
        assert engine.memo.misses - misses0 == 1
        assert engine.memo.hits - hits0 == instance.num_users - 1

    def test_memo_entries_survive_user_renumbering(self):
        instance = make_instance(mean_capacity=5000, num_users=30)
        engine = instance.arrays().engine()
        make_solver("DeDPO").solve(instance)
        apply_mutation(instance, DropUser(10))
        misses0 = engine.memo.misses
        make_solver("DeDPO").solve(instance)
        # nobody is dirty: remaining users' entries were id-shifted
        assert engine.memo.misses == misses0


class TestStalenessImpossibleByConstruction:
    """Regressions for the replay/shape/build-cache staleness hazards."""

    def test_mutate_then_resolve_never_replays_premutation_planning(self):
        # The whole-solve replay cache is keyed on the content token;
        # before the fix it was keyed on (solver, kind, scheduler) only
        # and would happily replay the pre-mutation planning.
        instance = make_instance()
        engine = instance.arrays().engine()
        solver = make_solver("DeDPO")
        before = solver.solve(instance)
        token_before = engine.content_token()
        arrays = instance.arrays()
        # kill the utility of a scheduled pair: the planning must change
        user_id, events = next(
            (u, evs) for u, evs in sorted(before.as_dict().items()) if evs
        )
        apply_mutation(instance, UtilityChange(events[0], user_id, 0.0))
        assert engine.content_token() != token_before
        assert not engine._solutions  # replay cache emptied
        after = make_solver("DeDPO").solve(instance)
        assert canonical_planning_bytes(after) != canonical_planning_bytes(
            before
        )
        assert_delta_matches_cold(instance)

    def test_content_token_stable_without_mutation(self):
        instance = make_instance()
        engine = instance.arrays().engine()
        assert engine.content_token() == engine.content_token()

    def test_replay_cache_hits_again_on_same_content(self):
        instance = make_instance()
        engine = instance.arrays().engine()
        solver = make_solver("DeDPO")
        solver.solve(instance)
        assert engine._solutions  # recorded
        apply_mutation(instance, BudgetChange(0, 0.125))
        solver.solve(instance)
        stored = len(engine._solutions)
        solver.solve(instance)  # same content again: replay, no growth
        assert len(engine._solutions) == stored

    @pytest.mark.parametrize("kind", ["add_event", "drop_event"])
    def test_shape_cache_cleared_on_event_set_changes(self, kind):
        # Shape-cache entries embed event ids and leg submatrices; an
        # event-set change must drop them or the batch kernel replays
        # predecessor tables of the old event numbering.
        instance = make_instance(num_users=40)
        engine = instance.arrays().engine()
        make_solver("DeDPO").solve(instance)
        if not engine.shape_cache:
            pytest.skip("batch layer did not populate the shape cache")
        if kind == "drop_event":
            apply_mutation(instance, DropEvent(0))
        else:
            apply_mutation(
                instance,
                AddEvent(
                    location=(1.0, 1.0),
                    capacity=2,
                    start=0.0,
                    end=5.0,
                    utilities=tuple(0.5 for _ in range(instance.num_users)),
                ),
            )
        assert engine.shape_cache == {}
        assert_delta_matches_cold(instance)

    def test_value_edit_keeps_shape_cache(self):
        instance = make_instance(num_users=40)
        engine = instance.arrays().engine()
        make_solver("DeDPO").solve(instance)
        if not engine.shape_cache:
            pytest.skip("batch layer did not populate the shape cache")
        entries = len(engine.shape_cache)
        apply_mutation(instance, BudgetChange(0, 0.5))
        assert len(engine.shape_cache) == entries
        assert_delta_matches_cold(instance)

    def test_build_cache_never_adopts_mutated_object(self):
        # Register the live instance, snapshot its content, mutate it.
        # A later arrival with the *old* content must not be handed the
        # mutated live object.
        instance = make_instance(seed=77)
        old_content = instance_to_dict(instance)
        registered, _hit = build_cache.get_or_register(instance)
        try:
            apply_mutation(instance, BudgetChange(0, 0.0625))
            arrival = instance_from_dict(old_content)
            resolved, _hit = build_cache.get_or_register(arrival)
            assert resolved is not instance
            np.testing.assert_array_equal(
                resolved.utility_matrix(),
                instance_from_dict(old_content).utility_matrix(),
            )
            assert resolved.users[0].budget == arrival.users[0].budget
        finally:
            build_cache.forget(instance)
            build_cache.forget(arrival)

    def test_forget_removes_registration(self):
        instance = make_instance(seed=78)
        build_cache.get_or_register(instance)
        assert build_cache.forget(instance) >= 1
        assert build_cache.forget(instance) == 0


class TestNoops:
    def test_same_capacity_is_noop(self):
        instance = make_instance()
        make_solver("DeDPO").solve(instance)
        engine = instance.arrays().engine()
        solutions = dict(engine._solutions)
        report = apply_mutation(
            instance, CapacityChange(0, instance.events[0].capacity)
        )
        assert report.noop
        assert report.dirty_users == frozenset()
        assert instance.version == 0
        assert engine._solutions == solutions  # replay cache intact

    def test_same_budget_is_noop(self):
        instance = make_instance()
        report = apply_mutation(
            instance, BudgetChange(2, instance.users[2].budget)
        )
        assert report.noop
        assert instance.version == 0


class TestDegenerateDimensions:
    def test_drop_to_zero_events_and_back(self):
        instance = make_instance(num_events=2, num_users=5)
        make_solver("DeDPO").solve(instance)
        apply_mutation(instance, DropEvent(1))
        apply_mutation(instance, DropEvent(0))
        assert instance.num_events == 0
        assert_delta_matches_cold(instance)
        apply_mutation(
            instance,
            AddEvent(
                location=(1.0, 1.0),
                capacity=1,
                start=0.0,
                end=4.0,
                utilities=tuple(0.9 for _ in range(5)),
            ),
        )
        assert_delta_matches_cold(instance)

    def test_drop_to_zero_users_and_back(self):
        instance = make_instance(num_events=4, num_users=2)
        make_solver("DeDPO").solve(instance)
        apply_mutation(instance, DropUser(1))
        apply_mutation(instance, DropUser(0))
        assert instance.num_users == 0
        assert_delta_matches_cold(instance)
        apply_mutation(
            instance,
            AddUser(
                location=(0.0, 0.0),
                budget=50.0,
                utilities=tuple(0.5 for _ in range(4)),
            ),
        )
        assert_delta_matches_cold(instance)
