"""End-to-end guarantees of the incremental scheduling engine.

The engine (docs/performance.md) may only skip work, never change an
answer: warm re-solves, cross-solver memo sharing, +RG compositions and
checkpoint-resumed sweeps must all produce plannings bit-identical to a
cold run — which the golden suite separately pins to the ``*-seed``
references.  Profile counters must stay out of default rows.
"""

import pytest

from repro.algorithms import make_solver
from repro.core import instrument
from repro.core.candidates import get_engine
from repro.datagen import SyntheticConfig, generate_instance
from repro.experiments import SweepPoint, run_sweep
from repro.service.checkpoint import strip_timing

CONFIGS = [
    SyntheticConfig(
        seed=seed,
        num_events=7 + (seed * 5) % 8,
        num_users=18 + (seed * 3) % 22,
        mean_capacity=2 + seed % 4,
        conflict_ratio=(seed % 3) * 0.3,
        budget_factor=1.0 + (seed % 3) * 0.75,
        utility_distribution=("uniform", "normal", "power:0.5")[seed % 3],
    )
    for seed in range(400, 408)
]

SOLVERS = ("DeDP", "DeDPO", "DeGreedy", "DeDPO+RG", "DeGreedy+RG")


def _ids(config):
    return f"seed{config.seed}"


@pytest.fixture(params=CONFIGS, ids=_ids)
def config(request):
    return request.param


@pytest.mark.parametrize("name", SOLVERS)
def test_warm_resolve_bit_identical(config, name):
    """Three solves on one instance == a solve on a fresh instance."""
    warm = generate_instance(config)
    solver = make_solver(name)
    plannings = [solver.solve(warm).as_dict() for _ in range(3)]
    cold = make_solver(name).solve(generate_instance(config)).as_dict()
    assert plannings[0] == plannings[1] == plannings[2] == cold


def test_second_solve_is_all_memo_hits(config):
    instance = generate_instance(config)
    engine = get_engine(instance)
    make_solver("DeDPO").solve(instance)
    hits0, misses0 = engine.memo.hits, engine.memo.misses
    make_solver("DeDPO").solve(instance)
    assert engine.memo.hits - hits0 == instance.num_users
    assert engine.memo.misses == misses0


def test_dedp_warms_dedpo(config):
    """Lemma 2: DeDP and DeDPO see the same per-user candidate views,
    so DeDPO after DeDP on the same instance reuses schedules.  Not
    necessarily all of them: DeDP reaches ``mu - mu(v, u_last)`` by a
    telescoping chain of float subtractions while DeDPO subtracts once,
    so a re-stolen copy's view can differ by ulps — an exact-key miss
    that recomputes (never a wrong hit).  Plannings stay identical."""
    instance = generate_instance(config)
    engine = get_engine(instance)
    dedp = make_solver("DeDP").solve(instance)
    hits0 = engine.memo.hits
    dedpo = make_solver("DeDPO").solve(instance)
    assert dedp.as_dict() == dedpo.as_dict()
    assert engine.memo.hits - hits0 >= instance.num_users * 3 // 4


def test_augmented_base_reuses_memo(config):
    """+RG re-runs its base solver; on a warm instance that re-run must
    be pure memo hits and the composite planning must be unchanged."""
    instance = generate_instance(config)
    engine = get_engine(instance)
    cold = make_solver("DeGreedy+RG").solve(instance).as_dict()
    hits0, misses0 = engine.memo.hits, engine.memo.misses
    warm = make_solver("DeGreedy+RG").solve(instance).as_dict()
    assert warm == cold
    assert engine.memo.misses == misses0
    assert engine.memo.hits - hits0 == instance.num_users


def test_default_rows_carry_no_profile_counters(config):
    """Profile counters depend on cache warmth — default rows (whose
    byte-identity journals and parallel sweeps rely on) must not see
    them, and no counter set may leak active after a run."""
    instance = generate_instance(config)
    run = make_solver("DeDPO").run(instance)
    assert not any(instrument.is_profile_key(key) for key in run.counters)
    assert instrument.active() is None
    profiled = make_solver("DeDPO").run(instance, profile=True)
    assert any(instrument.is_profile_key(key) for key in profiled.counters)
    assert instrument.active() is None


def _points(n=2):
    def builder(seed):
        return lambda: generate_instance(
            SyntheticConfig(
                num_events=6, num_users=12, mean_capacity=3, grid_size=15, seed=seed
            )
        )

    return [SweepPoint(axis_value=seed, build=builder(seed)) for seed in range(n)]


def test_resume_after_checkpoint_matches_uninterrupted(tmp_path):
    """A sweep killed mid-way and resumed must reproduce the
    uninterrupted sweep's rows (timing aside) — the resumed cells run
    on a rebuilt instance whose engine starts cold, so this also pins
    warm-vs-cold equality at the row level."""
    algorithms = ["DeDPO", "DeGreedy", "DeDPO+RG"]
    uninterrupted = run_sweep("n", _points(), algorithms, measure_memory=False)

    journal = tmp_path / "sweep.jsonl"
    run_sweep(
        "n", _points(), algorithms, measure_memory=False, journal=str(journal)
    )
    lines = journal.read_text().splitlines()
    cut = 1 + (len(lines) - 1) // 2  # header + half the cells survive
    journal.write_text("\n".join(lines[:cut]) + "\n")
    resumed = run_sweep(
        "n",
        _points(),
        algorithms,
        measure_memory=False,
        journal=str(journal),
        resume=True,
    )
    assert sum(1 for row in resumed.rows if row.get("resumed")) == cut - 1
    for fresh, replay in zip(uninterrupted.rows, resumed.rows):
        fresh = dict(strip_timing(fresh))
        replay = dict(strip_timing(replay))
        fresh.pop("resumed", None)
        replay.pop("resumed", None)
        assert fresh == replay
