"""End-to-end tests of the online planning daemon.

Covers the tentpole contracts of the serving layer:

* well-formed JSON on every path — success, shed, invalid, failed —
  and never an unhandled traceback;
* admission semantics over real HTTP: 429 with ``Retry-After`` from
  the rate limiter, 503 from queue overflow and exhausted deadlines,
  degradation tagged with the ladder rung that produced the plan;
* every ``200`` passes the independent oracle, re-checked here from
  the raw response body;
* the overload soak: N ≫ queue capacity concurrent requests, zero
  server crashes, and ``/stats`` counters that sum exactly to N.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.io import instance_to_dict
from repro.paper_example import build_example_instance
from repro.service.admission import AdmissionConfig
from repro.service.server import ServerConfig, make_server
from repro.verify.oracle import verify_schedules


@pytest.fixture
def example_payload():
    return {
        "instance": instance_to_dict(build_example_instance()),
        "algorithm": "DeDP",
        "deadline_s": 10,
    }


def _start(config: ServerConfig):
    server = make_server(port=0, config=config)
    server.serve_in_thread()
    return server


def _request(server, path, payload=None, raw_body=None, timeout=30):
    """One HTTP round trip; returns (status, parsed JSON body, headers)."""
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = raw_body
    if payload is not None:
        data = json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, json.loads(body), dict(exc.headers)


@pytest.fixture
def server():
    srv = _start(ServerConfig())
    yield srv
    srv.shutdown()


@pytest.fixture
def in_process_server():
    srv = _start(ServerConfig(in_process=True, memory_limit_bytes=None))
    yield srv
    srv.shutdown()


class TestEndpoints:
    def test_healthz(self, server):
        status, body, _ = _request(server, "/healthz")
        assert (status, body["status"]) == (200, "ok")

    def test_readyz_flips_on_drain(self, server):
        assert _request(server, "/readyz")[0] == 200
        server.drain()
        status, body, _ = _request(server, "/readyz")
        assert status == 503
        assert body["error"] == "draining"

    def test_stats_shape(self, server):
        status, body, _ = _request(server, "/stats")
        assert status == 200
        for key in ("counters", "inflight", "queued", "config", "build_cache"):
            assert key in body
        assert set(body["counters"]) == {
            "received", "ok", "degraded", "shed", "invalid", "failed",
        }

    def test_unknown_path_404_json(self, server):
        status, body, _ = _request(server, "/nope")
        assert status == 404
        assert body["error"] == "not-found"
        status, body, _ = _request(server, "/nope", payload={})
        assert status == 404


class TestSolve:
    def test_solve_ok_and_oracle_verified(self, server, example_payload):
        status, body, _ = _request(server, "/solve", payload=example_payload)
        assert status == 200
        assert body["status"] == "ok"
        assert body["rung"] == 0 and body["degraded_to"] is None
        assert body["guarantee"] == "1/2-approx"
        # Re-check the returned plan with the independent oracle.
        schedules = {int(u): evs for u, evs in body["schedules"].items()}
        report = verify_schedules(
            build_example_instance(), schedules, reported_utility=body["utility"]
        )
        assert report.ok, report.summary()

    def test_repeat_solve_hits_build_cache(self, server, example_payload):
        first = _request(server, "/solve", payload=example_payload)[1]
        second = _request(server, "/solve", payload=example_payload)[1]
        assert first["utility"] == second["utility"]
        assert second["cache_hit"] is True

    def test_deadline_clamped_to_cap(self, example_payload):
        srv = _start(
            ServerConfig(admission=AdmissionConfig(deadline_cap_s=3.0))
        )
        try:
            example_payload["deadline_s"] = 999
            status, body, _ = _request(srv, "/solve", payload=example_payload)
            assert status == 200
            assert body["deadline_s"] == 3.0
        finally:
            srv.shutdown()

    def test_default_algorithm_when_absent(self, server, example_payload):
        del example_payload["algorithm"]
        status, body, _ = _request(server, "/solve", payload=example_payload)
        assert status == 200
        assert body["algorithm"] == server.config.default_algorithm


class TestUntrustedInput:
    def test_malformed_json_is_typed_400(self, server):
        status, body, _ = _request(server, "/solve", raw_body=b"{nope")
        assert status == 400
        assert body["error"] == "bad-json"

    def test_invalid_instance_carries_json_path(self, server, example_payload):
        example_payload["instance"]["users"][1]["budget"] = "plenty"
        status, body, _ = _request(server, "/solve", payload=example_payload)
        assert status == 400
        assert body["error"] == "invalid-instance"
        assert "users[1].budget" in body["detail"]

    def test_non_object_body_400(self, server):
        status, body, _ = _request(server, "/solve", payload=[1, 2, 3])
        assert status == 400
        assert body["error"] == "bad-envelope"

    def test_unknown_algorithm_400(self, server, example_payload):
        example_payload["algorithm"] = "Clairvoyant"
        status, body, _ = _request(server, "/solve", payload=example_payload)
        assert status == 400
        assert body["error"] == "unknown-algorithm"

    def test_bad_deadline_400(self, server, example_payload):
        for bad in (0, -3, "soon", True):
            example_payload["deadline_s"] = bad
            status, body, _ = _request(server, "/solve", payload=example_payload)
            assert status == 400
            assert body["error"] == "bad-envelope"

    def test_oversize_payload_413(self, example_payload):
        srv = _start(
            ServerConfig(admission=AdmissionConfig(max_body_bytes=64))
        )
        try:
            status, body, _ = _request(srv, "/solve", payload=example_payload)
            assert status == 413
            assert body["error"] == "payload-too-large"
            # the guard still counts toward the stats invariant
            counters = _request(srv, "/stats")[1]["counters"]
            assert counters["received"] == counters["invalid"] == 1
        finally:
            srv.shutdown()

    def test_fuzz_corpus_never_crashes_http_path(self, server, example_payload):
        """A sample of hostile bodies: every response is typed JSON."""
        hostile = [
            b"",
            b"null",
            b"[]",
            b'"instance"',
            b"{\"instance\": 5}",
            b'{"instance": {"format_version": 1}}',
            b'{"instance": {"format_version": 99, "events": []}}',
            json.dumps(
                {"instance": {**example_payload["instance"], "events": None}}
            ).encode(),
            b"\xff\xfe\x00garbage",
        ]
        for raw in hostile:
            status, body, _ = _request(server, "/solve", raw_body=raw)
            assert status == 400
            assert body["error"] in ("bad-json", "bad-envelope", "invalid-instance")
        assert _request(server, "/healthz")[0] == 200


class TestAdmissionOverHTTP:
    def test_rate_limited_429_with_retry_after(self, example_payload):
        srv = _start(
            ServerConfig(
                admission=AdmissionConfig(rate_burst=1, rate_per_s=0.01)
            )
        )
        try:
            assert _request(srv, "/solve", payload=example_payload)[0] == 200
            status, body, headers = _request(
                srv, "/solve", payload=example_payload
            )
            assert status == 429
            assert body["error"] == "rate-limited"
            assert body["retry_after"] > 0
            assert "Retry-After" in headers
        finally:
            srv.shutdown()

    def test_past_deadline_shed_503(self, server, example_payload):
        example_payload["deadline_s"] = 1e-6
        status, body, _ = _request(server, "/solve", payload=example_payload)
        assert status == 503
        assert body["error"] == "deadline-exhausted"
        assert body["retry_after"] > 0

    def test_queue_pressure_degrades_with_rung_tag(self, example_payload):
        """Deterministic degrade: hold the only slot, stack the queue."""
        srv = _start(
            ServerConfig(
                in_process=True,
                memory_limit_bytes=None,
                admission=AdmissionConfig(max_inflight=1, queue_depth=2),
            )
        )
        release = threading.Event()
        first_entered = threading.Event()
        calls = []

        def hook(_ticket):
            calls.append(1)
            if len(calls) == 1:
                first_entered.set()
                release.wait(timeout=30)

        srv.pre_solve_hook = hook
        results = []

        def post(payload):
            results.append(_request(srv, "/solve", payload=payload))

        try:
            t1 = threading.Thread(target=post, args=(example_payload,))
            t1.start()
            assert first_entered.wait(timeout=10)
            # Slot held: next two requests queue; the second of them
            # lands in a non-empty queue and must be degraded.
            t2 = threading.Thread(target=post, args=(example_payload,))
            t2.start()
            time.sleep(0.2)  # let t2 reach the queue before t3 admits
            t3 = threading.Thread(target=post, args=(example_payload,))
            t3.start()
            time.sleep(0.2)
            release.set()
            for thread in (t1, t2, t3):
                thread.join(timeout=30)
            statuses = sorted(r[0] for r in results)
            assert statuses == [200, 200, 200]
            degraded = [r[1] for r in results if r[1]["status"] == "degraded"]
            assert degraded, "queue pressure produced no degraded response"
            for body in degraded:
                assert body["rung"] >= 1
                assert body["degraded_to"] is not None
                assert body["guarantee"]
        finally:
            release.set()
            srv.shutdown()


class TestOverloadSoak:
    def test_2x_queue_capacity_sheds_cleanly(self, example_payload):
        """N = 2 x (inflight + queue) concurrent solves: stay up, shed
        structured, verify every accepted plan, counters sum to N."""
        admission = AdmissionConfig(max_inflight=2, queue_depth=4)
        srv = _start(
            ServerConfig(
                in_process=True, memory_limit_bytes=None, admission=admission
            )
        )
        srv.pre_solve_hook = lambda _ticket: time.sleep(0.15)
        capacity = admission.max_inflight + admission.queue_depth
        n = 2 * capacity + 12  # well past 2x saturation
        barrier = threading.Barrier(n)
        results = []
        lock = threading.Lock()

        def client():
            barrier.wait(timeout=30)
            try:
                outcome = _request(srv, "/solve", payload=example_payload)
            except Exception as exc:  # transport failure = test failure
                outcome = ("transport-error", str(exc), {})
            with lock:
                results.append(outcome)

        try:
            threads = [threading.Thread(target=client) for _ in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert len(results) == n
            assert not [r for r in results if r[0] == "transport-error"]

            accepted = [r for r in results if r[0] == 200]
            shed = [r for r in results if r[0] in (429, 503)]
            assert len(accepted) + len(shed) == n
            assert shed, "overload produced no shedding"
            instance = build_example_instance()
            for _, body, _ in accepted:
                assert body["status"] in ("ok", "degraded")
                if body["status"] == "degraded":
                    assert body["rung"] >= 1 and body["degraded_to"]
                schedules = {
                    int(u): evs for u, evs in body["schedules"].items()
                }
                report = verify_schedules(
                    instance, schedules, reported_utility=body["utility"]
                )
                assert report.ok, report.summary()
            for _, body, headers in shed:
                assert body["retry_after"] > 0
                assert "Retry-After" in headers
                assert body["error"] in ("queue-full", "deadline-exhausted")

            stats = _request(srv, "/stats")[1]
            counters = stats["counters"]
            assert counters["received"] == n
            assert (
                counters["ok"]
                + counters["degraded"]
                + counters["shed"]
                + counters["invalid"]
                + counters["failed"]
                == n
            )
            assert counters["failed"] == 0
            assert counters["shed"] == len(shed)
            assert counters["ok"] + counters["degraded"] == len(accepted)
            assert stats["inflight"] == 0 and stats["queued"] == 0
            # the server is still healthy after the storm
            assert _request(srv, "/healthz")[0] == 200
        finally:
            srv.shutdown()


class TestHostileInstanceContainment:
    def test_memory_guard_contains_allocation_in_child(self):
        """The per-request rlimit makes a large allocation fail inside
        the forked worker instead of driving the host toward OOM."""
        import os

        import repro.service.executor as executor

        if not executor.fork_supported():
            pytest.skip("fork-less platform: no child to contain")
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: guard, then try to allocate 512 MiB
            os.close(read_fd)
            executor._apply_memory_limit(64 << 20)
            try:
                blob = bytearray(512 << 20)
                blob[0] = 1
                verdict = b"allocated"
            except MemoryError:
                verdict = b"contained"
            os.write(write_fd, verdict)
            os._exit(0)
        os.close(write_fd)
        try:
            verdict = os.read(read_fd, 32)
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        assert verdict == b"contained"

    def test_all_rungs_failing_yields_structured_500(
        self, example_payload, monkeypatch
    ):
        """Every rung failing produces a typed 500 with per-rung
        reasons — never a traceback — and the server stays healthy."""
        import repro.service.server as server_mod
        from repro.service.executor import ExecutionOutcome

        def always_crash(instance, name, **kwargs):
            return ExecutionOutcome(
                status="crash", solver=name, error="synthetic crash"
            )

        monkeypatch.setattr(server_mod, "run_supervised", always_crash)
        srv = _start(ServerConfig())
        try:
            status, body, _ = _request(srv, "/solve", payload=example_payload)
            assert status == 500
            assert body["error"] == "solve-failed"
            rungs = [f["rung"] for f in body["failures"]]
            assert rungs[0] == "DeDP"  # the requested algorithm
            assert len(rungs) == len(set(rungs)) >= 2  # ladder walked
            assert all(f["reason"] == "crash" for f in body["failures"])
            assert _request(srv, "/healthz")[0] == 200
            counters = _request(srv, "/stats")[1]["counters"]
            assert counters["failed"] == 1
            assert counters["received"] == 1
        finally:
            srv.shutdown()


# ----------------------------------------------------------------------
# long-lived instances: /instances + /mutate + instance_id solves
# ----------------------------------------------------------------------


class TestInstanceStore:
    def test_register_solve_mutate_solve_roundtrip(self, in_process_server):
        server = in_process_server
        instance = build_example_instance()
        status, body, _ = _request(
            server, "/instances", {"instance": instance_to_dict(instance)}
        )
        assert status == 200
        assert body["version"] == 0
        assert (body["num_events"], body["num_users"]) == (
            instance.num_events,
            instance.num_users,
        )
        instance_id = body["instance_id"]

        status, solve1, _ = _request(
            server, "/solve", {"instance_id": instance_id, "algorithm": "DeDP"}
        )
        assert status == 200
        assert solve1["instance_id"] == instance_id
        assert solve1["instance_version"] == 0

        status, mutated, _ = _request(
            server,
            "/mutate",
            {
                "instance_id": instance_id,
                "mutations": [
                    {"op": "budget_change", "user_id": 0, "budget": 0.0}
                ],
            },
        )
        assert status == 200
        assert mutated["applied"] == 1
        assert mutated["version"] == 1
        assert mutated["dirty_users"] == [0]

        status, solve2, _ = _request(
            server, "/solve", {"instance_id": instance_id, "algorithm": "DeDP"}
        )
        assert status == 200
        assert solve2["instance_version"] == 1
        # user 0 can afford nothing now; the plan must have changed
        assert solve2["schedules"].get("0", []) == []

    def test_solve_response_verified_against_stored_content(
        self, in_process_server
    ):
        server = in_process_server
        instance = build_example_instance()
        _, body, _ = _request(
            server, "/instances", {"instance": instance_to_dict(instance)}
        )
        instance_id = body["instance_id"]
        _request(
            server,
            "/mutate",
            {
                "instance_id": instance_id,
                "mutations": [
                    {"op": "capacity_change", "event_id": 0, "capacity": 1}
                ],
            },
        )
        status, solved, _ = _request(
            server, "/solve", {"instance_id": instance_id, "algorithm": "DeDP"}
        )
        assert status == 200
        entry = server.instances.get(instance_id)
        report = verify_schedules(
            entry.instance,
            {int(uid): evs for uid, evs in solved["schedules"].items()},
            reported_utility=solved["utility"],
        )
        assert report.ok, report.summary()

    def test_unknown_instance_404(self, in_process_server):
        status, body, _ = _request(
            in_process_server, "/solve", {"instance_id": "inst-404404"}
        )
        assert status == 404
        assert body["error"] == "not-found"
        status, body, _ = _request(
            in_process_server,
            "/mutate",
            {"instance_id": "inst-404404", "mutations": []},
        )
        assert status == 404

    def test_instance_and_id_together_rejected(self, in_process_server, example_payload):
        payload = dict(example_payload)
        payload["instance_id"] = "inst-000000"
        status, body, _ = _request(in_process_server, "/solve", payload)
        assert status == 400
        assert body["error"] == "bad-envelope"

    def test_invalid_mutation_keeps_applied_prefix(self, in_process_server):
        server = in_process_server
        _, body, _ = _request(
            server,
            "/instances",
            {"instance": instance_to_dict(build_example_instance())},
        )
        instance_id = body["instance_id"]
        status, body, _ = _request(
            server,
            "/mutate",
            {
                "instance_id": instance_id,
                "mutations": [
                    {"op": "budget_change", "user_id": 0, "budget": 3.5},
                    {"op": "budget_change", "user_id": 9999, "budget": 1.0},
                ],
            },
        )
        assert status == 400
        assert body["applied"] == 1
        assert body["requested"] == 2
        assert body["error"] == "invalid-instance"
        entry = server.instances.get(instance_id)
        assert entry.instance.users[0].budget == 3.5

    def test_malformed_mutation_typed_400(self, in_process_server):
        _, body, _ = _request(
            in_process_server,
            "/instances",
            {"instance": instance_to_dict(build_example_instance())},
        )
        status, body, _ = _request(
            in_process_server,
            "/mutate",
            {
                "instance_id": body["instance_id"],
                "mutations": [{"op": "become-sentient"}],
            },
        )
        assert status == 400
        assert body["error"] == "invalid-instance"
        assert "mutations[0]" in body["detail"]

    def test_store_is_lru_bounded(self):
        server = _start(
            ServerConfig(in_process=True, memory_limit_bytes=None, max_instances=2)
        )
        try:
            ids = []
            for _ in range(3):
                _, body, _ = _request(
                    server,
                    "/instances",
                    {"instance": instance_to_dict(build_example_instance())},
                )
                ids.append(body["instance_id"])
            assert server.instances.get(ids[0]) is None  # evicted
            assert server.instances.get(ids[1]) is not None
            assert server.instances.get(ids[2]) is not None
            _, stats, _ = _request(server, "/stats")
            assert stats["instances"] == 2
        finally:
            server.shutdown()


class TestChurnUnderConcurrency:
    """Interleave /mutate and /solve; every 200 must be the planning of
    the exact instance version it was admitted under."""

    def test_interleaved_mutate_solve_verified_per_version(self):
        from repro.core.deltas import BudgetChange, apply_mutation
        from repro.io import instance_from_dict

        server = _start(
            ServerConfig(
                in_process=True,
                memory_limit_bytes=None,
                admission=AdmissionConfig(max_inflight=4, queue_depth=32),
            )
        )
        try:
            base = build_example_instance()
            _, body, _ = _request(
                server, "/instances", {"instance": instance_to_dict(base)}
            )
            instance_id = body["instance_id"]

            # Client-side mirror: version v = budgets[0] set to 10 + v.
            # Strictly increasing values are never no-ops, so each
            # single-mutation batch bumps the version by exactly one.
            mirror = instance_from_dict(instance_to_dict(base))
            snapshots = {0: instance_to_dict(mirror)}
            num_mutations = 12
            for v in range(1, num_mutations + 1):
                apply_mutation(mirror, BudgetChange(0, 10.0 + v))
                snapshots[v] = instance_to_dict(mirror)

            solve_results = []
            errors = []

            def mutator():
                for v in range(1, num_mutations + 1):
                    status, body, _ = _request(
                        server,
                        "/mutate",
                        {
                            "instance_id": instance_id,
                            "mutations": [
                                {
                                    "op": "budget_change",
                                    "user_id": 0,
                                    "budget": 10.0 + v,
                                }
                            ],
                        },
                    )
                    if status != 200 or body["version"] != v:
                        errors.append(("mutate", status, body))

            def solver():
                for _ in range(8):
                    status, body, _ = _request(
                        server,
                        "/solve",
                        {"instance_id": instance_id, "algorithm": "DeDP"},
                    )
                    if status == 200:
                        solve_results.append(body)
                    elif status not in (429, 503):
                        errors.append(("solve", status, body))

            threads = [threading.Thread(target=mutator)] + [
                threading.Thread(target=solver) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not errors, errors[:3]
            assert solve_results
            for solved in solve_results:
                version = solved["instance_version"]
                assert 0 <= version <= num_mutations
                admitted_under = instance_from_dict(snapshots[version])
                report = verify_schedules(
                    admitted_under,
                    {
                        int(uid): evs
                        for uid, evs in solved["schedules"].items()
                    },
                    reported_utility=solved["utility"],
                )
                assert report.ok, (version, report.summary())

            # counters invariant: every request reached one disposition
            _, stats, _ = _request(server, "/stats")
            counters = stats["counters"]
            assert (
                counters["ok"]
                + counters["degraded"]
                + counters["shed"]
                + counters["invalid"]
                + counters["failed"]
                == counters["received"]
            )
        finally:
            server.shutdown()


class TestEvictionAndSeq:
    """PR 8 fixes: structured 410 for evicted ids, seq-based dedupe."""

    def _small_store_server(self, tmp_path=None):
        return _start(
            ServerConfig(
                in_process=True,
                memory_limit_bytes=None,
                max_instances=2,
                journal_dir=str(tmp_path) if tmp_path is not None else None,
            )
        )

    def test_evicted_instance_mutate_is_410(self):
        server = self._small_store_server()
        try:
            ids = []
            for _ in range(3):
                _, body, _ = _request(
                    server,
                    "/instances",
                    {"instance": instance_to_dict(build_example_instance())},
                )
                ids.append(body["instance_id"])
            status, body, _ = _request(
                server,
                "/mutate",
                {"instance_id": ids[0], "mutations": []},
            )
            assert status == 410
            assert body["error"] == "instance-evicted"
            assert "register it again" in body["detail"]
        finally:
            server.shutdown()

    def test_evicted_instance_solve_is_410(self):
        server = self._small_store_server()
        try:
            ids = []
            for _ in range(3):
                _, body, _ = _request(
                    server,
                    "/instances",
                    {"instance": instance_to_dict(build_example_instance())},
                )
                ids.append(body["instance_id"])
            status, body, _ = _request(
                server, "/solve", {"instance_id": ids[0], "deadline_s": 5}
            )
            assert status == 410
            assert body["error"] == "instance-evicted"
            # a never-registered id is still the plain 404
            status, body, _ = _request(
                server, "/solve", {"instance_id": "inst-999999"}
            )
            assert (status, body["error"]) == (404, "not-found")
        finally:
            server.shutdown()

    def test_eviction_deletes_the_journal(self, tmp_path):
        server = self._small_store_server(tmp_path)
        try:
            ids = []
            for _ in range(3):
                _, body, _ = _request(
                    server,
                    "/instances",
                    {"instance": instance_to_dict(build_example_instance())},
                )
                assert body["durable"] is True
                ids.append(body["instance_id"])
            from repro.service.journal import journal_path

            assert not os.path.exists(journal_path(str(tmp_path), ids[0]))
            assert os.path.exists(journal_path(str(tmp_path), ids[1]))
        finally:
            server.shutdown()

    def test_mutate_seq_dedupes_replayed_batch(self, in_process_server):
        server = in_process_server
        _, body, _ = _request(
            server,
            "/instances",
            {"instance": instance_to_dict(build_example_instance())},
        )
        instance_id = body["instance_id"]
        batch = {
            "instance_id": instance_id,
            "seq": 0,
            "mutations": [
                {"op": "utility_change", "user_id": 0, "event_id": 1,
                 "utility": 0.123456}
            ],
        }
        status, body, _ = _request(server, "/mutate", batch)
        assert (status, body["applied"], body["version"]) == (200, 1, 1)
        # the retry: same seq, acknowledged without re-applying
        status, body, _ = _request(server, "/mutate", batch)
        assert status == 200
        assert body["deduped"] is True
        assert (body["applied"], body["version"]) == (0, 1)
        # a later seq applies normally (a fresh value, not the no-op)
        batch["seq"] = 1
        batch["mutations"][0]["utility"] = 0.654321
        status, body, _ = _request(server, "/mutate", batch)
        assert (status, body["applied"], body["version"]) == (200, 1, 2)

    def test_mutate_rejects_bad_seq(self, in_process_server):
        server = in_process_server
        _, body, _ = _request(
            server,
            "/instances",
            {"instance": instance_to_dict(build_example_instance())},
        )
        for bad in (-1, True, "zero", 1.5):
            status, body2, _ = _request(
                server,
                "/mutate",
                {"instance_id": body["instance_id"], "seq": bad,
                 "mutations": []},
            )
            assert status == 400, bad
            assert body2["error"] == "bad-envelope"


class TestJournalRecovery:
    """A restarted server resumes journalled instances bit-identically."""

    def test_restart_resumes_same_ids_and_versions(self, tmp_path):
        from repro.core import build_cache
        from repro.service.server import make_server as _make

        config = ServerConfig(
            in_process=True, memory_limit_bytes=None,
            journal_dir=str(tmp_path),
        )
        first = _start(config)
        try:
            _, body, _ = _request(
                first,
                "/instances",
                {"instance": instance_to_dict(build_example_instance())},
            )
            instance_id = body["instance_id"]
            _request(
                first,
                "/mutate",
                {"instance_id": instance_id, "seq": 0, "mutations": [
                    {"op": "utility_change", "user_id": 2, "event_id": 3,
                     "utility": 0.77},
                    {"op": "capacity_change", "event_id": 0, "capacity": 2},
                ]},
            )
            live = first.instances.get(instance_id)
            live_fingerprint = build_cache.instance_fingerprint(live.instance)
            live_version = live.instance.version
        finally:
            first.shutdown()

        second = _make(port=0, config=config)
        recovered = second.recover_instances()
        second.serve_in_thread()
        try:
            assert recovered == [instance_id]
            assert second.recovery_failures == []
            entry = second.instances.get(instance_id)
            assert entry.instance.version == live_version
            assert entry.last_seq == 0
            assert build_cache.instance_fingerprint(
                entry.instance
            ) == live_fingerprint
            # the high-water mark survives: the pre-crash batch dedupes
            status, body, _ = _request(
                second,
                "/mutate",
                {"instance_id": instance_id, "seq": 0, "mutations": [
                    {"op": "capacity_change", "event_id": 0, "capacity": 9}
                ]},
            )
            assert (status, body.get("deduped")) == (200, True)
            # and the recovered instance solves under its original id
            status, body, _ = _request(
                second,
                "/solve",
                {"instance_id": instance_id, "algorithm": "DeDP",
                 "deadline_s": 10},
            )
            assert status == 200
            assert body["instance_version"] == live_version
            # stats surface the recovery
            _, stats, _ = _request(second, "/stats")
            assert stats["recovery"] == {"recovered": 1, "failures": 0}
            # fresh registrations never collide with recovered ids
            _, body, _ = _request(
                second,
                "/instances",
                {"instance": instance_to_dict(build_example_instance())},
            )
            assert body["instance_id"] != instance_id
        finally:
            second.shutdown()

    def test_recovery_replays_identically_twice(self, tmp_path):
        """Determinism satellite at the server level: two fresh servers
        recovering the same journal dir hold fingerprint-identical
        instances."""
        from repro.core import build_cache
        from repro.service.server import make_server as _make

        config = ServerConfig(
            in_process=True, memory_limit_bytes=None,
            journal_dir=str(tmp_path),
        )
        first = _start(config)
        try:
            _, body, _ = _request(
                first,
                "/instances",
                {"instance": instance_to_dict(build_example_instance())},
            )
            instance_id = body["instance_id"]
            _request(
                first,
                "/mutate",
                {"instance_id": instance_id, "mutations": [
                    {"op": "utility_change", "user_id": 1, "event_id": 1,
                     "utility": 0.31}
                ]},
            )
        finally:
            first.shutdown()

        fingerprints = []
        for _ in range(2):
            replica = _make(port=0, config=config)
            replica.recover_instances()
            entry = replica.instances.get(instance_id)
            fingerprints.append(
                build_cache.instance_fingerprint(entry.instance)
            )
            replica.server_close()
        assert fingerprints[0] is not None
        assert fingerprints[0] == fingerprints[1]
