"""Unit tests for RatioGreedy (Algorithm 1) and the greedy_augment pass."""

import pytest

from repro.algorithms import RatioGreedy, greedy_augment
from repro.algorithms.base import ratio_sort_key
from repro.core import Planning, validate_planning
from tests.conftest import grid_instance


class TestRatioSortKey:
    def test_larger_ratio_first(self):
        better = ratio_sort_key(0.9, 1.0, 0, 0)
        worse = ratio_sort_key(0.5, 1.0, 0, 0)
        assert better < worse  # min-heap order

    def test_ratio_tie_prefers_smaller_inc_cost(self):
        # same ratio 0.5: (0.5, 1) vs (1.0, 2)
        cheap = ratio_sort_key(0.5, 1.0, 0, 0)
        pricey = ratio_sort_key(1.0, 2.0, 0, 0)
        assert cheap < pricey

    def test_free_pairs_rank_first(self):
        free = ratio_sort_key(0.1, 0.0, 0, 0)
        paid = ratio_sort_key(1.0, 0.5, 0, 0)
        assert free < paid

    def test_free_pairs_ordered_by_utility(self):
        hi = ratio_sort_key(0.9, 0.0, 0, 0)
        lo = ratio_sort_key(0.1, 0.0, 0, 0)
        assert hi < lo

    def test_deterministic_id_tiebreak(self):
        a = ratio_sort_key(0.5, 1.0, 0, 1)
        b = ratio_sort_key(0.5, 1.0, 0, 2)
        assert a < b


class TestRatioGreedy:
    def test_picks_best_ratio_first(self):
        """Two users want the capacity-1 event; higher ratio wins."""
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.9, 0.5]],
        )
        planning = RatioGreedy().solve(inst)
        assert planning.as_dict() == {0: [0]}

    def test_ratio_beats_raw_utility(self):
        """A cheap low-utility pair outranks a pricey high-utility one."""
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((20, 0), 100)],
            # ratios: 0.5/2 = 0.25 vs 0.9/40 = 0.0225
            [[0.5, 0.9]],
        )
        planning = RatioGreedy().solve(inst)
        assert planning.as_dict() == {0: [0]}

    def test_respects_capacity(self):
        inst = grid_instance(
            [((1, 0), 2, 0, 10)],
            [((0, 0), 10), ((2, 0), 10), ((0, 1), 10)],
            [[0.9, 0.8, 0.7]],
        )
        planning = RatioGreedy().solve(inst)
        assert planning.occupancy(0) == 2
        assert 2 not in planning.as_dict()  # lowest ratio user misses out

    def test_respects_budget_across_additions(self):
        """A user's early additions consume budget for later ones."""
        inst = grid_instance(
            [((5, 0), 1, 0, 10), ((-5, 0), 1, 20, 30)],
            [((0, 0), 21)],
            [[0.9], [0.8]],
        )
        planning = RatioGreedy().solve(inst)
        validate_planning(planning)
        # both round trips are 10; chaining costs 5+10+5 = 20 <= 21: ok
        assert planning.as_dict() == {0: [0, 1]}
        tight = grid_instance(
            [((5, 0), 1, 0, 10), ((-5, 0), 1, 20, 30)],
            [((0, 0), 15)],
            [[0.9], [0.8]],
        )
        planning = RatioGreedy().solve(tight)
        validate_planning(planning)
        assert planning.total_arranged_pairs() == 1

    def test_skips_zero_utility(self):
        inst = grid_instance(
            [((1, 0), 5, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.0, 0.4]],
        )
        planning = RatioGreedy().solve(inst)
        assert planning.as_dict() == {1: [0]}

    def test_empty_instance_edge(self):
        inst = grid_instance([((1, 0), 1, 0, 10)], [((0, 0), 0)], [[0.9]])
        # budget 0 < round trip 2: nothing plannable
        assert RatioGreedy().solve(inst).total_arranged_pairs() == 0

    def test_counters_populated(self, small_synthetic):
        solver = RatioGreedy()
        planning = solver.solve(small_synthetic)
        assert solver.counters["pairs_added"] == planning.total_arranged_pairs()
        assert solver.counters["heap_pushes"] > 0

    def test_result_valid_on_synthetic(self, small_synthetic):
        validate_planning(RatioGreedy().solve(small_synthetic))

    def test_terminates_saturated(self, small_synthetic):
        """At termination no valid pair remains for a *maximal* check.

        RatioGreedy's planning must be maximal: no (event, user) pair can
        still be added without violating a constraint.
        """
        planning = RatioGreedy().solve(small_synthetic)
        inst = small_synthetic
        for v in range(inst.num_events):
            for u in range(inst.num_users):
                if v in planning.schedule_of(u):
                    continue
                assert planning.plan_valid_insertion(v, u) is None, (
                    f"pair ({v}, {u}) still addable after termination"
                )


class TestGreedyAugment:
    def test_only_adds_pairs(self, small_synthetic):
        base = RatioGreedy().solve(small_synthetic)
        before = base.total_utility()
        pairs_before = set(base.iter_pairs())
        greedy_augment(base)
        assert base.total_utility() >= before
        assert pairs_before <= set(base.iter_pairs())

    def test_fills_spare_capacity(self):
        inst = grid_instance(
            [((1, 0), 2, 0, 10)],
            [((0, 0), 10), ((2, 0), 10)],
            [[0.9, 0.8]],
        )
        planning = Planning(inst)
        planning.add_pair(0, 0)
        counters = greedy_augment(planning)
        assert counters["pairs_added"] == 1
        assert planning.as_dict() == {0: [0], 1: [0]}

    def test_allowed_events_restricts(self):
        inst = grid_instance(
            [((1, 0), 2, 0, 10), ((1, 1), 2, 20, 30)],
            [((0, 0), 50)],
            [[0.9], [0.9]],
        )
        planning = Planning(inst)
        greedy_augment(planning, allowed_events=[1])
        assert planning.as_dict() == {0: [1]}

    def test_full_events_excluded_by_default(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((1, 1), 1, 20, 30)],
            [((0, 0), 50), ((0, 1), 50)],
            [[0.9, 0.8], [0.9, 0.8]],
        )
        planning = Planning(inst)
        planning.add_pair(0, 0)  # event 0 now full
        greedy_augment(planning)
        validate_planning(planning)
        assert planning.occupancy(0) == 1
