"""Property-based tests on the Schedule invariants (hypothesis).

The incremental-cost bookkeeping is the most bug-prone part of the core
model: Equation (3)'s four arms must compose so that the cached running
total always equals the from-scratch trip cost, in any insertion order,
with any geometry.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Schedule
from tests.conftest import grid_instance


def random_instance(seed, num_events):
    rng = np.random.default_rng(seed)
    specs = []
    t = 0
    for _ in range(num_events):
        t += int(rng.integers(0, 6))
        dur = int(rng.integers(1, 8))
        specs.append(
            ((int(rng.integers(0, 20)), int(rng.integers(0, 20))), 3, t, t + dur)
        )
        t += dur
        if rng.uniform() < 0.3:
            t -= int(rng.integers(0, dur + 3))  # create some overlaps
        t = max(t, 0)
    utilities = [[float(rng.uniform(0.1, 1.0))] for _ in range(num_events)]
    return grid_instance(
        specs, [((int(rng.integers(0, 20)), int(rng.integers(0, 20))), 10**6)], utilities
    )


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_events=st.integers(1, 10),
    order_seed=st.integers(0, 1000),
)
def test_inc_costs_telescope_to_total_cost(seed, num_events, order_seed):
    """Sum of applied inc_costs == recomputed total cost, any order."""
    inst = random_instance(seed, num_events)
    order = list(np.random.default_rng(order_seed).permutation(num_events))
    schedule = Schedule(0)
    running = 0.0
    for event_id in order:
        insertion = schedule.plan_insertion(inst, int(event_id))
        if insertion is None:
            continue
        running += insertion.inc_cost
        schedule.insert(inst, insertion)
    recomputed = Schedule(0, schedule.event_ids).total_cost(inst)
    assert math.isclose(running, recomputed, abs_tol=1e-6)
    assert math.isclose(schedule.total_cost(inst), recomputed, abs_tol=1e-6)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000), num_events=st.integers(1, 10))
def test_inserted_schedules_always_time_ordered(seed, num_events):
    inst = random_instance(seed, num_events)
    schedule = Schedule(0)
    for event_id in range(num_events):
        insertion = schedule.plan_insertion(inst, event_id)
        if insertion is not None:
            schedule.insert(inst, insertion)
    starts = [inst.events[v].start for v in schedule]
    assert starts == sorted(starts)
    assert schedule.is_time_feasible(inst)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000), num_events=st.integers(1, 10))
def test_inc_cost_non_negative_under_manhattan(seed, num_events):
    """With a metric cost model, Equation (3) never goes negative."""
    inst = random_instance(seed, num_events)
    schedule = Schedule(0)
    for event_id in range(num_events):
        insertion = schedule.plan_insertion(inst, event_id)
        if insertion is not None:
            assert insertion.inc_cost >= -1e-9
            schedule.insert(inst, insertion)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_events=st.integers(2, 10),
    remove_seed=st.integers(0, 1000),
)
def test_remove_then_reinsert_is_identity(seed, num_events, remove_seed):
    inst = random_instance(seed, num_events)
    schedule = Schedule(0)
    for event_id in range(num_events):
        insertion = schedule.plan_insertion(inst, event_id)
        if insertion is not None:
            schedule.insert(inst, insertion)
    if len(schedule) == 0:
        return
    rng = np.random.default_rng(remove_seed)
    victim = int(rng.choice(schedule.event_ids))
    before_events = list(schedule.event_ids)
    before_cost = schedule.total_cost(inst)
    schedule.remove(inst, victim)
    schedule.insert_event(inst, victim)
    assert schedule.event_ids == before_events
    assert math.isclose(schedule.total_cost(inst), before_cost, abs_tol=1e-6)
