"""Cross-cell build cache: fingerprinting, adoption, LRU bounds.

The cache (``repro.core.build_cache``) may only equate instances whose
*content* is identical — same events, users, utility matrix and cost
model — and must refuse to fingerprint cost models it cannot identify.
Adoption hands back the registered instance with its warm derived
structures; plannings must be unaffected.  See docs/performance.md.
"""

import pytest

from repro.algorithms import make_solver
from repro.core import build_cache
from repro.core.build_cache import get_or_register, instance_fingerprint
from repro.core.candidates import get_engine
from repro.core.costs import GridCostModel
from repro.core.instance import USEPInstance
from repro.datagen import SyntheticConfig, generate_instance


@pytest.fixture(autouse=True)
def fresh_cache():
    build_cache.clear()
    yield
    build_cache.clear()


def _instance(seed=11, **overrides):
    params = dict(num_events=6, num_users=12, mean_capacity=3, grid_size=15)
    params.update(overrides)
    return generate_instance(SyntheticConfig(seed=seed, **params))


class TestFingerprint:
    def test_identical_content_identical_fingerprint(self):
        assert instance_fingerprint(_instance()) == instance_fingerprint(_instance())

    def test_any_content_change_changes_fingerprint(self):
        base = instance_fingerprint(_instance())
        assert instance_fingerprint(_instance(seed=12)) != base
        assert instance_fingerprint(_instance(num_users=13)) != base
        assert instance_fingerprint(_instance(mean_capacity=4)) != base

    def test_utility_perturbation_changes_fingerprint(self):
        instance = _instance()
        mu = instance.utility_matrix().copy()
        mu[0][0] = mu[0][0] / 2.0 + 0.1
        twin = USEPInstance(
            instance.events, instance.users, instance.cost_model, mu
        )
        assert instance_fingerprint(twin) != instance_fingerprint(instance)

    def test_cache_flag_is_part_of_the_fingerprint(self):
        instance = _instance()
        off = USEPInstance(
            instance.events,
            instance.users,
            instance.cost_model,
            instance.utility_matrix(),
            cache_user_costs=False,
        )
        assert instance_fingerprint(off) != instance_fingerprint(instance)

    def test_unknown_cost_model_is_unfingerprintable(self):
        class OpaqueModel(GridCostModel):
            pass

        instance = _instance()
        opaque = USEPInstance(
            instance.events,
            instance.users,
            OpaqueModel(),
            instance.utility_matrix(),
        )
        assert instance_fingerprint(opaque) is None
        adopted, hit = get_or_register(opaque)
        assert adopted is opaque and hit is False
        assert build_cache.stats()["uncacheable"] == 1


class TestAdoption:
    def test_rebuild_adopts_the_registered_donor(self):
        first, hit1 = get_or_register(_instance())
        rebuilt, hit2 = get_or_register(_instance())
        assert hit1 is False and hit2 is True
        assert rebuilt is first
        stats = build_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_adopted_instance_carries_warm_state(self):
        donor, _ = get_or_register(_instance())
        cold_planning = make_solver("DeDPO").solve(donor).as_dict()
        engine = get_engine(donor)
        hits0 = engine.memo.hits
        adopted, hit = get_or_register(_instance())
        assert hit is True
        warm_planning = make_solver("DeDPO").solve(adopted).as_dict()
        assert warm_planning == cold_planning
        assert engine.memo.hits - hits0 == adopted.num_users

    def test_different_content_never_adopts(self):
        get_or_register(_instance(seed=11))
        other, hit = get_or_register(_instance(seed=12))
        assert hit is False
        assert build_cache.stats()["misses"] == 2


class TestBounds:
    def test_lru_eviction_beyond_max_entries(self):
        instances = [
            _instance(seed=20 + i) for i in range(build_cache.MAX_ENTRIES + 2)
        ]
        for instance in instances:
            get_or_register(instance)
        stats = build_cache.stats()
        assert stats["entries"] == build_cache.MAX_ENTRIES
        assert stats["evictions"] == 2
        # oldest entry is gone: re-registering it is a miss again
        _, hit = get_or_register(_instance(seed=20))
        assert hit is False
        # newest entry is still warm
        _, hit = get_or_register(_instance(seed=20 + build_cache.MAX_ENTRIES + 1))
        assert hit is True

    def test_clear_resets_everything(self):
        get_or_register(_instance())
        build_cache.clear()
        stats = build_cache.stats()
        assert stats == {
            "hits": 0, "misses": 0, "uncacheable": 0, "evictions": 0, "entries": 0,
        }


class TestPrepareBuild:
    def test_prepare_build_materialises_arrays_and_index(self):
        instance = _instance()
        build_cache.prepare_build(instance)
        assert instance._arrays is not None
        engine = instance._arrays.engine()
        assert engine._index_built and engine.index is not None
