"""Tests for the conflict-ratio-controlled interval generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvalidInstanceError
from repro.core.timeutils import conflict_ratio
from repro.datagen.conflicts import generate_intervals


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestEdgeCases:
    def test_zero_events(self, rng):
        assert generate_intervals(0, 0.5, rng) == []

    def test_single_event(self, rng):
        ivs = generate_intervals(1, 0.5, rng)
        assert len(ivs) == 1

    def test_cr_zero_has_no_overlaps(self, rng):
        ivs = generate_intervals(50, 0.0, rng)
        assert conflict_ratio(ivs) == 0.0

    def test_cr_zero_is_chainable(self, rng):
        """With cr = 0 a user could attend every event in sequence."""
        ivs = generate_intervals(20, 0.0, rng)
        ordered = sorted(ivs, key=lambda iv: iv.start)
        assert all(a.precedes(b) for a, b in zip(ordered, ordered[1:]))

    def test_cr_one_all_overlap(self, rng):
        ivs = generate_intervals(30, 1.0, rng)
        assert conflict_ratio(ivs) == 1.0

    def test_rejects_out_of_range_cr(self, rng):
        with pytest.raises(InvalidInstanceError):
            generate_intervals(10, 1.5, rng)
        with pytest.raises(InvalidInstanceError):
            generate_intervals(10, -0.1, rng)


class TestCalibration:
    @pytest.mark.parametrize("target", [0.1, 0.25, 0.5, 0.75, 0.9])
    def test_measured_ratio_near_target(self, target):
        rng = np.random.default_rng(7)
        ivs = generate_intervals(100, target, rng)
        assert conflict_ratio(ivs) == pytest.approx(target, abs=0.05)

    def test_uncalibrated_is_roughly_right(self, rng):
        ivs = generate_intervals(200, 0.5, rng, calibrate=False)
        assert conflict_ratio(ivs) == pytest.approx(0.5, abs=0.15)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        target=st.floats(0.05, 0.95),
        n=st.integers(20, 80),
    )
    def test_calibration_property(self, seed, target, n):
        rng = np.random.default_rng(seed)
        ivs = generate_intervals(n, target, rng)
        # small n -> coarser achievable ratios; tolerance scales
        tolerance = max(0.03, 3.0 / n)
        assert conflict_ratio(ivs) == pytest.approx(target, abs=tolerance)


class TestDeterminism:
    def test_same_seed_same_intervals(self):
        a = generate_intervals(40, 0.3, np.random.default_rng(5))
        b = generate_intervals(40, 0.3, np.random.default_rng(5))
        assert a == b

    def test_integer_bounds(self, rng):
        for iv in generate_intervals(30, 0.4, rng):
            assert float(iv.start).is_integer()
            assert float(iv.end).is_integer()
