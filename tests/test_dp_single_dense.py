"""Tests for the literal dense-table DPSingle and DeDPO-dense."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ExactSolver, make_solver
from repro.algorithms.dp_single import dp_single
from repro.algorithms.dp_single_dense import DeDPODense, dp_single_dense
from repro.core import Schedule, SolverError, validate_planning
from repro.datagen import SyntheticConfig, generate_instance
from tests.conftest import grid_instance


def _utilities(inst, user_id):
    utilities = {v: inst.utility(v, user_id) for v in range(inst.num_events)}
    candidates = [v for v, mu in utilities.items() if mu > 0]
    return candidates, utilities


class TestAgainstReference:
    def test_same_utility_on_fixture(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            candidates, utilities = _utilities(inst, user_id)
            ref = dp_single(inst, user_id, candidates, utilities)
            fast = dp_single_dense(inst, user_id, candidates, utilities)
            assert sum(utilities[v] for v in fast) == pytest.approx(
                sum(utilities[v] for v in ref)
            )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000), cr=st.sampled_from([0.0, 0.25, 0.75]))
    def test_same_utility_random(self, seed, cr):
        inst = generate_instance(
            SyntheticConfig(
                num_events=12, num_users=4, mean_capacity=3,
                conflict_ratio=cr, grid_size=25, seed=seed,
            )
        )
        for user_id in range(inst.num_users):
            candidates, utilities = _utilities(inst, user_id)
            ref = dp_single(inst, user_id, candidates, utilities)
            fast = dp_single_dense(inst, user_id, candidates, utilities)
            assert sum(utilities[v] for v in fast) == pytest.approx(
                sum(utilities[v] for v in ref)
            )

    def test_schedules_feasible_and_affordable(self, small_synthetic):
        inst = small_synthetic
        for user_id in range(inst.num_users):
            candidates, utilities = _utilities(inst, user_id)
            schedule = dp_single_dense(inst, user_id, candidates, utilities)
            s = Schedule(user_id, schedule)
            assert s.is_time_feasible(inst)
            assert s.total_cost(inst) <= inst.users[user_id].budget


class TestGuards:
    def test_rejects_non_integer_budget(self):
        inst = grid_instance([((1, 0), 1, 0, 10)], [((0, 0), 10)], [[0.5]])
        with pytest.raises(SolverError):
            dp_single_dense(inst, 0, [0], {0: 0.5}, budget=2.5)

    def test_empty_cases(self):
        inst = grid_instance([((1, 0), 1, 0, 10)], [((0, 0), 10)], [[0.5]])
        assert dp_single_dense(inst, 0, [], {}) == []
        assert dp_single_dense(inst, 0, [0], {0: 0.0}) == []
        assert dp_single_dense(inst, 0, [0], {0: 0.5}, budget=1) == []

    def test_zero_budget_colocated(self):
        inst = grid_instance([((0, 0), 1, 0, 10)], [((0, 0), 0)], [[0.5]])
        assert dp_single_dense(inst, 0, [0], {0: 0.5}) == [0]


class TestDeDPODense:
    def test_registry_entry(self):
        solver = make_solver("DeDPO-dense")
        assert isinstance(solver, DeDPODense)

    def test_same_utility_as_dedpo(self, small_synthetic):
        fast = make_solver("DeDPO-dense").solve(small_synthetic)
        ref = make_solver("DeDPO").solve(small_synthetic)
        validate_planning(fast)
        # per-user DPs are both exact; the plannings may differ on ties
        # but quality stays within a whisker (identical in practice).
        assert fast.total_utility() == pytest.approx(
            ref.total_utility(), rel=1e-6
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_half_approximation_holds(self, seed):
        inst = generate_instance(
            SyntheticConfig(
                num_events=5, num_users=3, mean_capacity=2, grid_size=12, seed=seed
            )
        )
        opt = ExactSolver().solve(inst).total_utility()
        planning = make_solver("DeDPO-dense").solve(inst)
        validate_planning(planning)
        assert planning.total_utility() >= 0.5 * opt - 1e-9
