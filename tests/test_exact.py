"""Tests for the exact branch-and-bound oracle."""

import pytest

from repro.algorithms import ExactSolver, enumerate_feasible_schedules
from repro.core import SolverError, validate_planning
from tests.conftest import grid_instance


class TestEnumerateFeasibleSchedules:
    def test_includes_empty_schedule(self, tiny_synthetic):
        options = enumerate_feasible_schedules(tiny_synthetic, 0)
        assert ((), 0.0) in options

    def test_simple_chain(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 20, 30)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        schedules = {opt[0] for opt in enumerate_feasible_schedules(inst, 0)}
        assert schedules == {(), (0,), (1,), (0, 1)}

    def test_conflicting_pair_excluded(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        schedules = {opt[0] for opt in enumerate_feasible_schedules(inst, 0)}
        assert (0, 1) not in schedules

    def test_budget_excludes_expensive(self):
        inst = grid_instance(
            [((10, 0), 1, 0, 10)],
            [((0, 0), 19)],
            [[0.5]],
        )
        schedules = {opt[0] for opt in enumerate_feasible_schedules(inst, 0)}
        assert schedules == {()}

    def test_zero_utility_excluded(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 100)],
            [[0.0]],
        )
        schedules = {opt[0] for opt in enumerate_feasible_schedules(inst, 0)}
        assert schedules == {()}

    def test_all_schedules_feasible(self, tiny_synthetic):
        from repro.core import Schedule

        for user_id in range(tiny_synthetic.num_users):
            for events, utility in enumerate_feasible_schedules(
                tiny_synthetic, user_id
            ):
                s = Schedule(user_id, list(events))
                assert s.is_time_feasible(tiny_synthetic)
                assert (
                    s.total_cost(tiny_synthetic)
                    <= tiny_synthetic.users[user_id].budget
                )
                assert utility == pytest.approx(s.utility(tiny_synthetic))


class TestExactSolver:
    def test_refuses_large_instances(self, small_synthetic):
        with pytest.raises(SolverError):
            ExactSolver().solve(small_synthetic)

    def test_finds_capacity_constrained_optimum(self):
        """Greedy-per-user would double-book; exact must coordinate.

        One event of capacity 1, two users; u0 likes it a bit more but
        u1's alternative is worthless — optimal gives the event to u1
        only when that maximises the sum.
        """
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((1, 1), 1, 20, 30)],
            [((0, 0), 100), ((0, 1), 100)],
            # u0: 0.6 / 0.5 ; u1: 0.9 / 0.0
            [[0.6, 0.9], [0.5, 0.0]],
        )
        planning = ExactSolver().solve(inst)
        validate_planning(planning)
        # optimum: u1 takes event 0 (0.9), u0 takes event 1 (0.5) = 1.4
        assert planning.total_utility() == pytest.approx(1.4)
        assert planning.as_dict() == {0: [1], 1: [0]}

    def test_beats_or_matches_all_heuristics(self, tiny_synthetic):
        from repro.algorithms import PAPER_ALGORITHMS, make_solver

        opt = ExactSolver().solve(tiny_synthetic).total_utility()
        for name in PAPER_ALGORITHMS:
            got = make_solver(name).solve(tiny_synthetic).total_utility()
            assert got <= opt + 1e-9

    def test_counters(self, tiny_synthetic):
        solver = ExactSolver()
        solver.solve(tiny_synthetic)
        assert solver.counters["nodes"] > 0
        assert solver.counters["schedule_options"] >= tiny_synthetic.num_users
