"""Unit tests for Planning and the four-constraint validator."""

import pytest

from repro.core import (
    ConstraintViolationError,
    Planning,
    planning_from_dict,
    validate_planning,
)
from tests.conftest import grid_instance


@pytest.fixture
def inst():
    return grid_instance(
        [((2, 0), 1, 0, 10), ((4, 0), 2, 10, 20), ((6, 0), 1, 20, 30)],
        [((0, 0), 30), ((8, 0), 30)],
        [[0.9, 0.1], [0.8, 0.0], [0.7, 0.3]],
    )


class TestPlanningAccounting:
    def test_total_utility_empty(self, inst):
        assert Planning(inst).total_utility() == 0.0

    def test_add_pair_updates_utility_and_occupancy(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)
        p.add_pair(1, 0)
        assert p.total_utility() == pytest.approx(1.7)
        assert p.occupancy(0) == 1
        assert p.occupancy(1) == 1
        assert p.total_arranged_pairs() == 2

    def test_remaining_capacity_and_is_full(self, inst):
        p = Planning(inst)
        assert p.remaining_capacity(1) == 2
        p.add_pair(1, 0)
        p.add_pair(1, 1)
        assert p.is_full(1)
        assert not p.is_full(0)

    def test_remove_pair(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)
        p.remove_pair(0, 0)
        assert p.occupancy(0) == 0
        assert p.total_utility() == 0.0

    def test_set_schedule_keeps_occupancy_coherent(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)
        p.set_schedule(0, [1, 2])
        assert p.occupancy(0) == 0
        assert p.occupancy(1) == 1
        assert p.occupancy(2) == 1

    def test_iter_pairs_and_as_dict(self, inst):
        p = Planning(inst)
        p.add_pair(2, 0)
        p.add_pair(0, 0)
        assert sorted(p.iter_pairs()) == [(0, 0), (2, 0)]
        assert p.as_dict() == {0: [0, 2]}

    def test_copy_is_deep(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)
        dup = p.copy()
        dup.add_pair(1, 1)
        assert p.occupancy(1) == 0
        assert dup.occupancy(1) == 1


class TestPlanValidInsertion:
    def test_rejects_zero_utility(self, inst):
        # mu(v1, u1) = 0.0 -> utility constraint
        assert Planning(inst).plan_valid_insertion(1, 1) is None

    def test_rejects_full_event(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)  # v0 capacity 1
        assert p.plan_valid_insertion(0, 1) is None

    def test_rejects_budget_violation(self, inst):
        p = Planning(inst)
        p.add_pair(0, 0)
        p.add_pair(1, 0)
        # adding v2 would make the trip 2+2+2+6 = 12 <= 30: fine.
        assert p.plan_valid_insertion(2, 0) is not None
        # but a user with tight budget cannot:
        tight = grid_instance(
            [((20, 0), 1, 0, 10)], [((0, 0), 39)], [[0.9]]
        )
        assert Planning(tight).plan_valid_insertion(0, 0) is None

    def test_accepts_valid_pair(self, inst):
        ins = Planning(inst).plan_valid_insertion(0, 0)
        assert ins is not None
        assert ins.inc_cost == 4


class TestValidatePlanning:
    def test_valid_planning_passes(self, inst):
        p = planning_from_dict(inst, {0: [0, 1, 2], 1: [2]})
        # v2 capacity 1 — user 1 can't also have it; build a legal one:
        p = planning_from_dict(inst, {0: [0, 1], 1: [2]})
        validate_planning(p)

    def test_detects_capacity_violation(self, inst):
        p = Planning(inst)
        p.set_schedule(0, [0])
        # bypass add_pair guard by writing the schedule directly
        p.schedules[1].replace_events(inst, [0])
        p._occupancy[0] += 1
        with pytest.raises(ConstraintViolationError) as err:
            validate_planning(p)
        assert err.value.constraint == "capacity"

    def test_detects_budget_violation(self, inst):
        p = Planning(inst)
        p.schedules[0].replace_events(inst, [2])
        p._occupancy[2] += 1
        # trip = 6 + 6 = 12 <= 30 fine; shrink budget via a new instance
        tight = grid_instance(
            [((20, 0), 1, 0, 10)], [((0, 0), 10)], [[0.9]]
        )
        bad = Planning(tight)
        bad.schedules[0].replace_events(tight, [0])
        bad._occupancy[0] += 1
        with pytest.raises(ConstraintViolationError) as err:
            validate_planning(bad)
        assert err.value.constraint == "budget"

    def test_detects_time_overlap(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        p = Planning(inst)
        p.schedules[0].replace_events(inst, [0, 1])
        p._occupancy[0] += 1
        p._occupancy[1] += 1
        with pytest.raises(ConstraintViolationError) as err:
            validate_planning(p)
        assert err.value.constraint == "feasibility"

    def test_detects_utility_violation(self, inst):
        p = Planning(inst)
        p.schedules[1].replace_events(inst, [1])  # mu(v1, u1) = 0
        p._occupancy[1] += 1
        with pytest.raises(ConstraintViolationError) as err:
            validate_planning(p)
        assert err.value.constraint == "utility"

    def test_detects_repeated_event(self, inst):
        p = Planning(inst)
        p.schedules[0].event_ids = [0, 0]
        p._occupancy[0] += 2
        with pytest.raises(ConstraintViolationError):
            validate_planning(p)


class TestPlanningFromDict:
    def test_orders_events_by_time(self, inst):
        p = planning_from_dict(inst, {0: [2, 0]})
        assert p.schedule_of(0).event_ids == [0, 2]

    def test_rejects_infeasible(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((2, 0), 1, 5, 15)],
            [((0, 0), 100)],
            [[0.5], [0.5]],
        )
        with pytest.raises(Exception):
            planning_from_dict(inst, {0: [0, 1]})
