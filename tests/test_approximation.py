"""Empirical verification of Theorem 3: the DeDP family is 1/2-approximate.

Every instance small enough for the exact oracle is solved both ways;
DeDP / DeDPO / DeDPO+RG (and DeDP+RG) must achieve at least half the
optimum.  DeGreedy carries no guarantee, but we track it too and assert
only feasibility for it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DeDP,
    DeDPO,
    DeDPOPlusRG,
    DeGreedy,
    DeGreedyPlusRG,
    ExactSolver,
    RatioGreedy,
)
from repro.core import validate_planning
from repro.datagen import SyntheticConfig, generate_instance

GUARANTEED = [DeDP, DeDPO, DeDPOPlusRG]


def tiny_instance(seed, num_events, num_users, cr, capacity, budget_factor):
    return generate_instance(
        SyntheticConfig(
            num_events=num_events,
            num_users=num_users,
            mean_capacity=capacity,
            conflict_ratio=cr,
            budget_factor=budget_factor,
            grid_size=15,
            seed=seed,
        )
    )


class TestHalfApproximation:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 1_000_000),
        num_events=st.integers(2, 6),
        num_users=st.integers(1, 4),
        cr=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        capacity=st.integers(1, 3),
        budget_factor=st.sampled_from([0.5, 1.0, 2.0, 5.0]),
    )
    def test_dedp_family_meets_bound(
        self, seed, num_events, num_users, cr, capacity, budget_factor
    ):
        inst = tiny_instance(seed, num_events, num_users, cr, capacity, budget_factor)
        opt = ExactSolver().solve(inst).total_utility()
        for solver_cls in GUARANTEED:
            planning = solver_cls().solve(inst)
            validate_planning(planning)
            got = planning.total_utility()
            assert got >= 0.5 * opt - 1e-9, (
                f"{solver_cls.__name__} got {got} < half of optimum {opt} "
                f"on seed={seed}"
            )
            assert got <= opt + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_heuristics_feasible_and_bounded_by_optimum(self, seed):
        inst = tiny_instance(seed, 5, 3, 0.25, 2, 2.0)
        opt = ExactSolver().solve(inst).total_utility()
        for solver in (RatioGreedy(), DeGreedy(), DeGreedyPlusRG()):
            planning = solver.solve(inst)
            validate_planning(planning)
            assert planning.total_utility() <= opt + 1e-9


class TestKnownTightScenarios:
    def test_capacity_contention(self):
        """Decomposition's worst enemy: one seat, many users."""
        for seed in range(10):
            inst = tiny_instance(seed, 3, 4, 0.5, 1, 2.0)
            opt = ExactSolver().solve(inst).total_utility()
            got = DeDPO().solve(inst).total_utility()
            assert got >= 0.5 * opt - 1e-9

    def test_all_conflicting_events(self):
        """cr = 1: every user attends at most one event."""
        for seed in range(10):
            inst = tiny_instance(seed, 4, 3, 1.0, 1, 2.0)
            planning = DeDPO().solve(inst)
            validate_planning(planning)
            assert all(len(s) <= 1 for s in planning.schedules)
            opt = ExactSolver().solve(inst).total_utility()
            assert planning.total_utility() >= 0.5 * opt - 1e-9
