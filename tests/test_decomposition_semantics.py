"""Fine-grained tests of the two-step framework's reassignment semantics.

The decomposition's characteristic behaviour is that a pseudo-event may
be scheduled by several users during step 1 and ends up with the *last*
of them (= the one whose marginal value exceeded all earlier owners').
These tests construct instances where that behaviour is forced and
observable.
"""

import pytest

from repro.algorithms import DeDP, DeDPO, DeGreedy
from tests.conftest import grid_instance


def contested_event(values):
    """One capacity-1 event everyone can afford; utilities per user."""
    return grid_instance(
        [((1, 0), 1, 0, 10)],
        [((0, 0), 10) for _ in values],
        [list(values)],
    )


class TestReassignmentChains:
    def test_strictly_increasing_chain_goes_to_last(self):
        inst = contested_event([0.2, 0.5, 0.9])
        for solver in (DeDP(), DeDPO(), DeGreedy()):
            assert solver.solve(inst).as_dict() == {2: [0]}

    def test_strictly_decreasing_chain_stays_with_first(self):
        inst = contested_event([0.9, 0.5, 0.2])
        for solver in (DeDP(), DeDPO(), DeGreedy()):
            assert solver.solve(inst).as_dict() == {0: [0]}

    def test_non_monotone_chain(self):
        # u0 takes it (0.5); u1's marginal 0.4-0.5 < 0: skipped;
        # u2's marginal 0.8-0.5 > 0: steals it.
        inst = contested_event([0.5, 0.4, 0.8])
        for solver in (DeDP(), DeDPO()):
            assert solver.solve(inst).as_dict() == {2: [0]}

    def test_equal_values_keep_first_owner(self):
        inst = contested_event([0.7, 0.7, 0.7])
        for solver in (DeDP(), DeDPO()):
            assert solver.solve(inst).as_dict() == {0: [0]}

    def test_capacity_two_serves_top_two(self):
        inst = grid_instance(
            [((1, 0), 2, 0, 10)],
            [((0, 0), 10), ((2, 0), 10), ((1, 1), 10)],
            [[0.3, 0.6, 0.9]],
        )
        for solver in (DeDP(), DeDPO()):
            planning = solver.solve(inst)
            # copies: u0 takes k0; u1 takes k1; u2 steals the cheaper
            # owner's copy (u0's) -> final: u1 and u2.
            assert planning.as_dict() == {1: [0], 2: [0]}

    def test_counters_reflect_reassignments(self):
        inst = contested_event([0.2, 0.5, 0.9])
        dedp = DeDP()
        dedp.solve(inst)
        # all three users scheduled the copy; two lost it in step 2
        assert dedp.counters["hat_pairs"] == 3
        assert dedp.counters["removed_pairs"] == 2
        dedpo = DeDPO()
        dedpo.solve(inst)
        assert dedpo.counters["reassignments"] == 2
        assert dedpo.counters["selected_copies"] == 1


class TestMarginalValueInteraction:
    def test_schedule_choice_uses_marginal_not_raw_utility(self):
        """A later user sees only the *marginal* value of a taken copy.

        Two events; u0 takes event 0 (its only affordable event).
        u1 could attend either but not both (conflict). Raw utilities
        for u1: event0 = 0.9, event1 = 0.6. The marginal value of
        event0 for u1 is 0.9 - 0.8 = 0.1 < 0.6, so the decomposition
        correctly sends u1 to event1 instead of stealing.
        """
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((30, 0), 1, 5, 15)],  # overlapping times
            [((0, 0), 10), ((29, 0), 70)],
            [[0.8, 0.9], [0.0, 0.6]],
        )
        for solver in (DeDP(), DeDPO()):
            planning = solver.solve(inst)
            assert planning.as_dict() == {0: [0], 1: [1]}
            assert planning.total_utility() == pytest.approx(1.4)

    def test_greedy_framework_shares_semantics(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((30, 0), 1, 5, 15)],
            [((0, 0), 10), ((29, 0), 70)],
            [[0.8, 0.9], [0.0, 0.6]],
        )
        assert DeGreedy().solve(inst).as_dict() == {0: [0], 1: [1]}
