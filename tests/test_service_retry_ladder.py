"""Tests for the retry policy, circuit breaker and degradation ladder."""

import pytest

from repro.algorithms.registry import available_solvers
from repro.service.ladder import (
    DEFAULT_LADDER,
    guarantee_of,
    ladder_for,
    parse_ladder,
)
from repro.service.retry import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_delay_count_matches_max_retries(self):
        assert len(RetryPolicy(max_retries=4).preview()) == 4
        assert RetryPolicy(max_retries=0).preview() == []

    def test_full_jitter_bounds(self):
        policy = RetryPolicy(
            max_retries=6, base_delay_s=0.1, max_delay_s=1.0, seed=3
        )
        for attempt, delay in enumerate(policy.delays()):
            assert 0.0 <= delay <= min(1.0, 0.1 * 2 ** attempt)

    def test_deterministic_per_seed(self):
        a = RetryPolicy(max_retries=5, seed=17).preview()
        b = RetryPolicy(max_retries=5, seed=17).preview()
        c = RetryPolicy(max_retries=5, seed=18).preview()
        assert a == b
        assert a != c

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=1.0, max_delay_s=0.25, seed=0
        )
        assert all(d <= 0.25 for d in policy.delays())


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.is_open("DeDPO")
        breaker.record_failure("DeDPO")
        assert not breaker.is_open("DeDPO")
        breaker.record_failure("DeDPO")
        assert breaker.is_open("DeDPO")

    def test_success_closes(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("DeDPO")
        breaker.record_failure("DeDPO")
        breaker.record_success("DeDPO")
        assert not breaker.is_open("DeDPO")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("DeDPO")
        assert breaker.is_open("DeDPO")
        assert not breaker.is_open("DeGreedy")

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(10):
            breaker.record_failure("DeDPO")
        assert not breaker.is_open("DeDPO")


class TestLadder:
    def test_default_ladder_names_are_registered(self):
        registered = set(available_solvers())
        assert set(DEFAULT_LADDER) <= registered

    def test_parse_arrow_spec_case_insensitive(self):
        rungs = parse_ladder("exact->dedpo+rg->degreedy->ratio-greedy")
        assert rungs == ["Exact", "DeDPO+RG", "DeGreedy", "RatioGreedy"]

    def test_parse_comma_and_exact_names(self):
        assert parse_ladder("DeDPO, DeGreedy") == ["DeDPO", "DeGreedy"]

    def test_parse_unknown_rung(self):
        with pytest.raises(ValueError, match="unknown ladder rung"):
            parse_ladder("dedpo->nosuchsolver")

    def test_parse_empty(self):
        with pytest.raises(ValueError):
            parse_ladder("  ->  ")

    def test_ladder_for_dedupes_primary(self):
        rungs = ladder_for("DeGreedy", ["DeDPO+RG", "DeGreedy", "RatioGreedy"])
        assert rungs == ["DeGreedy", "DeDPO+RG", "RatioGreedy"]

    def test_guarantees(self):
        assert guarantee_of("Exact") == "optimal"
        assert guarantee_of("DeDP") == "1/2-approx"
        assert guarantee_of("DeDPO+RG") == "1/2-approx"
        assert guarantee_of("DeGreedy") == "heuristic"
        assert guarantee_of("RatioGreedy") == "heuristic"
