"""Reproduction of the paper's running example (Table 1, Examples 1-4).

These tests pin the package to the paper's published outputs: the exact
plannings and total utility scores of Examples 2 (RatioGreedy),
3 (DeDP) and 4 (DeGreedy), on the recovered Figure 1 geometry.
"""

import pytest

from repro.algorithms import DeDP, DeDPO, DeGreedy, ExactSolver, RatioGreedy
from repro.core import validate_planning
from repro.paper_example import (
    EXPECTED_PLANNINGS,
    EXPECTED_UTILITY,
    UTILITIES,
    build_example_instance,
)


@pytest.fixture(scope="module")
def instance():
    return build_example_instance()


class TestInstanceMatchesTable1:
    def test_dimensions(self, instance):
        assert instance.num_events == 4
        assert instance.num_users == 5

    def test_capacities(self, instance):
        assert [ev.capacity for ev in instance.events] == [1, 3, 4, 2]

    def test_budgets(self, instance):
        assert [u.budget for u in instance.users] == [59, 29, 51, 9, 33]

    def test_event_times(self, instance):
        assert [ev.interval.as_tuple() for ev in instance.events] == [
            (13, 16), (15, 18), (13, 14), (18, 19),
        ]

    def test_utilities(self, instance):
        for v in range(4):
            for u in range(5):
                assert instance.utility(v, u) == UTILITIES[v][u]

    def test_recovered_costs_match_example_2(self, instance):
        """The user->v1 cost row printed behind Table 3's ratio row."""
        assert [instance.cost_uv(u, 0) for u in range(5)] == [9, 2, 2, 3, 8]
        assert instance.cost_uv(0, 3) == 1  # cost(u1, v4) = 1
        assert instance.cost_uv(2, 2) == 6  # cost(u3, v3) = 6

    def test_sorted_event_order(self, instance):
        # Example 3: "the sorted list of V is v3, v1, v2, v4"
        assert instance.sorted_event_ids == [2, 0, 1, 3]


class TestExample2RatioGreedy:
    def test_planning_and_utility(self, instance):
        planning = RatioGreedy().solve(instance)
        validate_planning(planning)
        assert planning.as_dict() == EXPECTED_PLANNINGS["RatioGreedy"]
        assert planning.total_utility() == pytest.approx(3.6)


class TestExample3DeDP:
    def test_planning_and_utility(self, instance):
        planning = DeDP().solve(instance)
        validate_planning(planning)
        assert planning.as_dict() == EXPECTED_PLANNINGS["DeDP"]
        assert planning.total_utility() == pytest.approx(4.6)

    def test_dedpo_identical(self, instance):
        planning = DeDPO().solve(instance)
        validate_planning(planning)
        assert planning.as_dict() == EXPECTED_PLANNINGS["DeDP"]
        assert planning.total_utility() == pytest.approx(4.6)


class TestExample4DeGreedy:
    def test_planning_and_utility(self, instance):
        planning = DeGreedy().solve(instance)
        validate_planning(planning)
        assert planning.as_dict() == EXPECTED_PLANNINGS["DeGreedy"]
        assert planning.total_utility() == pytest.approx(4.5)


class TestAgainstOptimum:
    def test_dedp_within_half_of_optimal(self, instance):
        opt = ExactSolver().solve(instance).total_utility()
        dedp = DeDP().solve(instance).total_utility()
        assert opt >= dedp >= 0.5 * opt
        # Per the paper's discussion, the example's optimum is at least 4.6.
        assert opt >= 4.6

    def test_expected_utilities_are_consistent(self):
        assert EXPECTED_UTILITY["RatioGreedy"] < EXPECTED_UTILITY["DeGreedy"]
        assert EXPECTED_UTILITY["DeGreedy"] < EXPECTED_UTILITY["DeDP"]
