"""Tests for instance/planning JSON serialisation."""

import json

import numpy as np
import pytest

from repro.algorithms import DeDPO
from repro.core import InvalidInstanceError, MatrixCostModel, validate_planning
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_planning,
    planning_to_dict,
    save_instance,
    save_planning,
)
from repro.paper_example import build_example_instance
from repro.reductions import knapsack_to_usep


class TestInstanceRoundTrip:
    def test_grid_instance(self, small_synthetic, tmp_path):
        path = str(tmp_path / "inst.json")
        save_instance(small_synthetic, path)
        loaded = load_instance(path)
        assert loaded.num_events == small_synthetic.num_events
        assert loaded.num_users == small_synthetic.num_users
        assert np.array_equal(
            loaded.utility_matrix(), small_synthetic.utility_matrix()
        )
        assert [e.location for e in loaded.events] == [
            e.location for e in small_synthetic.events
        ]
        assert [u.budget for u in loaded.users] == [
            u.budget for u in small_synthetic.users
        ]

    def test_matrix_instance_with_inf(self, tmp_path):
        inst = knapsack_to_usep([3.0, 5.0], [2, 4], 5)
        path = str(tmp_path / "knap.json")
        save_instance(inst, path)
        # strict JSON on disk: no bare Infinity tokens
        raw = open(path).read()
        assert "Infinity" not in raw
        loaded = load_instance(path)
        assert loaded.cost_vv(0, 1) == inst.cost_vv(0, 1)
        assert loaded.cost_vv(1, 0) == inst.cost_vv(1, 0)  # inf round-trips

    def test_solvers_agree_after_round_trip(self, tmp_path):
        inst = build_example_instance()
        path = str(tmp_path / "paper.json")
        save_instance(inst, path)
        loaded = load_instance(path)
        assert DeDPO().solve(loaded).as_dict() == DeDPO().solve(inst).as_dict()

    def test_rejects_unknown_version(self, small_synthetic):
        data = instance_to_dict(small_synthetic)
        data["format_version"] = 99
        with pytest.raises(InvalidInstanceError, match="version"):
            instance_from_dict(data)

    def test_rejects_unknown_cost_model_type(self, small_synthetic):
        data = instance_to_dict(small_synthetic)
        data["cost_model"] = {"type": "teleporter"}
        with pytest.raises(InvalidInstanceError, match="cost model"):
            instance_from_dict(data)

    def test_event_user_matrix_preserved(self, tmp_path):
        from repro.core import Event, TimeInterval, USEPInstance, User

        events = [
            Event(id=0, location=(0, 0), capacity=1, interval=TimeInterval(0, 1))
        ]
        users = [User(id=0, location=(0, 0), budget=10)]
        model = MatrixCostModel([[0.0]], [[2.0]], event_user=[[5.0]])
        inst = USEPInstance(events, users, model, [[0.5]])
        path = str(tmp_path / "asym.json")
        save_instance(inst, path)
        loaded = load_instance(path)
        assert loaded.cost_uv(0, 0) == 2.0
        assert loaded.cost_vu(0, 0) == 5.0


class TestCityRoundTrip:
    def test_city_instance_round_trips(self, tmp_path):
        from repro.ebsn import CityConfig, build_city_instance

        inst = build_city_instance(
            CityConfig(name="mini", num_events=6, num_users=15)
        )
        path = str(tmp_path / "city.json")
        save_instance(inst, path)
        loaded = load_instance(path)
        assert loaded.num_events == 6
        assert np.array_equal(loaded.utility_matrix(), inst.utility_matrix())
        assert DeDPO().solve(loaded).as_dict() == DeDPO().solve(inst).as_dict()

    def test_speed_model_round_trips(self, tmp_path):
        from repro.datagen import SyntheticConfig, generate_instance

        inst = generate_instance(
            SyntheticConfig(num_events=6, num_users=8, speed=2.0, seed=3)
        )
        path = str(tmp_path / "speed.json")
        save_instance(inst, path)
        loaded = load_instance(path)
        assert loaded.cost_model.speed == 2.0
        assert loaded.measured_conflict_ratio() == inst.measured_conflict_ratio()


class TestPlanningRoundTrip:
    def test_round_trip_and_validation(self, small_synthetic, tmp_path):
        planning = DeDPO().solve(small_synthetic)
        path = str(tmp_path / "plan.json")
        save_planning(planning, path)
        loaded = load_planning(small_synthetic, path)
        validate_planning(loaded)
        assert loaded.as_dict() == planning.as_dict()
        assert loaded.total_utility() == pytest.approx(planning.total_utility())

    def test_serialised_shape(self, small_synthetic):
        planning = DeDPO().solve(small_synthetic)
        data = planning_to_dict(planning)
        assert data["total_utility"] == pytest.approx(planning.total_utility())
        assert all(isinstance(k, str) for k in data["schedules"])
        json.dumps(data)  # strictly JSON-serialisable

    def test_tampered_planning_fails_validation(self, tmp_path):
        """A recorded planning that breaks feasibility is rejected on load."""
        inst = build_example_instance()
        planning = DeDPO().solve(inst)
        data = planning_to_dict(planning)
        # v1 (id 0) and v3 (id 2) overlap in time: infeasible pair
        data["schedules"]["0"] = [0, 2]
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(Exception):
            load_planning(inst, path)
