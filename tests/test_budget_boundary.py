"""Regression: the nextafter budget-pruning boundary in DPSingle.

The array kernel hoists the budget check out of the inner loop by
precomputing, per candidate event, the largest representable frontier
cost ``thresh`` with ``thresh + back <= budget`` (pinned with
``math.nextafter`` walks).  The boundary contract is: a frontier entry
whose total round-trip cost is *exactly* the budget must survive
pruning — the constraint is ``<=``, not ``<`` — and the first float
above the budget must be cut, in both the kernel and the reference
implementation.  A naive ``thresh = budget - back`` can be an ulp off
in either direction for non-representable sums, which is exactly the
regression this file pins.
"""

import math

import numpy as np
import pytest

from repro.algorithms.dp_single import dp_single, dp_single_reference
from repro.core.costs import MatrixCostModel
from repro.core.entities import Event, User
from repro.core.instance import USEPInstance
from repro.core.timeutils import TimeInterval


def chain_instance(out_cost, leg_cost, home_cost, budget, num_events=2):
    """A single user and a chainable line of events with explicit costs:
    user -> e0 costs ``out_cost``, every e_i -> e_{i+1} leg costs
    ``leg_cost``, e_last -> user costs ``home_cost`` (every event's
    return leg costs ``home_cost`` so single-event schedules are
    controllable too)."""
    events = [
        Event(
            id=i,
            location=(i, 0),
            capacity=1,
            interval=TimeInterval(2 * i, 2 * i + 1),
        )
        for i in range(num_events)
    ]
    users = [User(id=0, location=(0, 0), budget=budget)]
    ee = [
        [abs(i - j) * leg_cost for j in range(num_events)]
        for i in range(num_events)
    ]
    ue = [[out_cost if i == 0 else out_cost + i * leg_cost for i in range(num_events)]]
    eu = [[home_cost] for _ in range(num_events)]  # shape (|V|, |U|)
    model = MatrixCostModel(ee, ue, event_user=eu)
    return USEPInstance(
        events, users, model, np.full((num_events, 1), 0.5)
    )


def both(inst, utilities=None):
    candidates = list(range(inst.num_events))
    if utilities is None:
        utilities = {i: 1.0 for i in candidates}
    fast = dp_single(inst, 0, candidates, utilities)
    slow = dp_single_reference(inst, 0, candidates, utilities)
    assert fast == slow, f"kernel {fast} != reference {slow}"
    return fast


class TestExactIntegerBoundary:
    def test_cost_exactly_budget_survives(self):
        # out 1 + leg 2 + home 3 = 6 == budget: both events kept
        inst = chain_instance(1.0, 2.0, 3.0, budget=6.0)
        assert both(inst) == [0, 1]

    def test_one_ulp_over_budget_is_cut(self):
        budget = math.nextafter(6.0, 0.0)  # just below the chain cost
        inst = chain_instance(1.0, 2.0, 3.0, budget=budget)
        # the full chain (cost 6) no longer fits; the best single event
        # (cost 1 + 3 = 4) does
        assert both(inst) == [0]


class TestNonRepresentableBoundary:
    """0.1-style costs whose decimal sum is not a float: the comparison
    must behave identically to the reference's ``T + back <= budget``
    on the actual float values."""

    def test_point_one_chain_at_float_sum(self):
        # float(0.1) + float(0.2) + float(0.3) != float(0.6); pin the
        # budget to the *float* arithmetic sum so the check is exact
        budget = 0.1 + 0.2 + 0.3
        inst = chain_instance(0.1, 0.2, 0.3, budget=budget)
        assert both(inst) == [0, 1]

    def test_point_one_chain_one_ulp_below(self):
        budget = math.nextafter(0.1 + 0.2 + 0.3, 0.0)
        inst = chain_instance(0.1, 0.2, 0.3, budget=budget)
        # chain is cut; single event 0 costs 0.1 + 0.3 = 0.4 > budget?
        # no: 0.4 < 0.599..., so [0] survives
        assert both(inst) == [0]

    @pytest.mark.parametrize("scale", [1e-12, 1e-6, 1.0, 1e6, 1e12])
    def test_boundary_pinned_across_magnitudes(self, scale):
        out, leg, home = 0.1 * scale, 0.2 * scale, 0.3 * scale
        budget = out + leg + home  # float sum, exact boundary
        inst = chain_instance(out, leg, home, budget=budget)
        assert both(inst) == [0, 1]
        below = chain_instance(
            out, leg, home, budget=math.nextafter(budget, 0.0)
        )
        assert both(below) == [0]


class TestFrontierInteriorBoundary:
    def test_longer_chain_exact_budget(self):
        # 4 events: out 0.1, three 0.2 legs, home 0.3
        budget = 0.1 + 0.2 + 0.2 + 0.2 + 0.3
        inst = chain_instance(0.1, 0.2, 0.3, budget=budget, num_events=4)
        assert both(inst) == [0, 1, 2, 3]
        below = chain_instance(
            0.1, 0.2, 0.3, budget=math.nextafter(budget, 0.0), num_events=4
        )
        result = both(below)
        assert len(result) < 4  # the exact-cost chain must be pruned

    def test_tie_between_boundary_and_interior_schedule(self):
        """A schedule landing exactly on the budget competes with a
        cheaper one of equal utility; both implementations must break
        the tie the same way."""
        budget = 0.1 + 0.2 + 0.3
        inst = chain_instance(0.1, 0.2, 0.3, budget=budget)
        utilities = {0: 1.0, 1: 1.0}
        assert both(inst, utilities) == [0, 1]


def test_infinite_budget_disables_pruning():
    inst = chain_instance(1.0, 2.0, 3.0, budget=math.inf)
    assert both(inst) == [0, 1]
