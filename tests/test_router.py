"""Router unit tests: rendezvous hashing, seq stamping, routing picks.

Everything here runs in-process against a stub supervisor; the
multi-process behaviour (real workers, real SIGKILL) lives in
tests/test_multiworker.py.
"""

import pytest

from repro.core import build_cache
from repro.io import instance_from_dict, instance_to_dict
from repro.paper_example import build_example_instance
from repro.service.router import PlanningRouter, RouterConfig, rendezvous_rank


class StubSupervisor:
    """The slice of the Supervisor API the router reads."""

    def __init__(self, ids, healthy=None):
        self._ids = list(ids)
        self.healthy = set(ids if healthy is None else healthy)

    def worker_ids(self):
        return list(self._ids)

    def healthy_workers(self):
        return [
            (wid, f"http://127.0.0.1:1/{wid}")
            for wid in self._ids
            if wid in self.healthy
        ]

    def is_healthy(self, worker_id):
        return worker_id in self.healthy

    def wait_healthy(self, worker_id, timeout_s):
        return worker_id in self.healthy

    def base_url(self, worker_id):
        return f"http://127.0.0.1:1/{worker_id}"

    def mark_unhealthy(self, worker_id):
        self.healthy.discard(worker_id)


@pytest.fixture
def router():
    supervisor = StubSupervisor(["w0", "w1", "w2", "w3"])
    instance = PlanningRouter(
        ("127.0.0.1", 0), supervisor, RouterConfig(failover_wait_s=0.01)
    )
    yield instance
    instance.server_close()


class TestRendezvous:
    WORKERS = ["w0", "w1", "w2", "w3"]

    def test_deterministic_permutation(self):
        first = rendezvous_rank("some-fingerprint", self.WORKERS)
        second = rendezvous_rank("some-fingerprint", self.WORKERS)
        assert first == second
        assert sorted(first) == sorted(self.WORKERS)

    def test_input_order_does_not_matter(self):
        forward = rendezvous_rank("key", self.WORKERS)
        backward = rendezvous_rank("key", list(reversed(self.WORKERS)))
        assert forward == backward

    def test_removal_moves_only_the_victims_keys(self):
        """The minimal-disruption property: dropping w2 must not change
        the relative order of the survivors for any key."""
        keys = [f"fingerprint-{i}" for i in range(200)]
        for key in keys:
            full = rendezvous_rank(key, self.WORKERS)
            reduced = rendezvous_rank(key, ["w0", "w1", "w3"])
            assert [w for w in full if w != "w2"] == reduced

    def test_keys_spread_over_the_fleet(self):
        owners = {
            rendezvous_rank(f"fingerprint-{i}", self.WORKERS)[0]
            for i in range(200)
        }
        assert owners == set(self.WORKERS)


class TestSeqStamping:
    def test_stamps_monotone_sequence(self, router):
        payloads = [{"instance_id": "w0-inst-000000"} for _ in range(3)]
        for payload in payloads:
            router.stamp_seq("w0-inst-000000", payload)
        assert [p["seq"] for p in payloads] == [0, 1, 2]

    def test_sequences_are_per_instance(self, router):
        a, b = {}, {}
        router.stamp_seq("inst-a", a)
        router.stamp_seq("inst-b", b)
        assert (a["seq"], b["seq"]) == (0, 0)

    def test_client_seq_advances_the_counter(self, router):
        supplied = {"seq": 41}
        router.stamp_seq("inst-a", supplied)
        assert supplied["seq"] == 41  # client value kept verbatim
        stamped = {}
        router.stamp_seq("inst-a", stamped)
        assert stamped["seq"] == 42

    def test_forget_owner_resets_the_sequence(self, router):
        router.record_owner("inst-a", "w0")
        router.stamp_seq("inst-a", {})
        router.forget_owner("inst-a")
        fresh = {}
        router.stamp_seq("inst-a", fresh)
        assert fresh["seq"] == 0
        assert router.owner_of("inst-a") is None


class TestAffinityKey:
    def test_fingerprintable_instance_uses_build_cache_key(self, router):
        wire = instance_to_dict(build_example_instance())
        key = router.affinity_key({"instance": wire})
        expected = build_cache.instance_fingerprint(instance_from_dict(wire))
        assert key == expected

    def test_same_content_same_key(self, router):
        wire = instance_to_dict(build_example_instance())
        assert router.affinity_key({"instance": dict(wire)}) == (
            router.affinity_key({"instance": dict(wire)})
        )

    def test_undecodable_instance_has_no_key(self, router):
        assert router.affinity_key({"instance": {"bogus": True}}) is None
        assert router.affinity_key({"instance": "not-a-dict"}) is None
        assert router.affinity_key({}) is None


class TestPicks:
    def test_pick_by_key_is_the_rendezvous_owner(self, router):
        key = "some-key"
        owner = rendezvous_rank(key, router.supervisor.worker_ids())[0]
        assert router.pick_by_key(key) == owner

    def test_pick_by_key_falls_to_next_healthy(self, router):
        key = "some-key"
        ranked = rendezvous_rank(key, router.supervisor.worker_ids())
        router.supervisor.healthy.discard(ranked[0])
        assert router.pick_by_key(key) == ranked[1]

    def test_pick_by_key_none_when_fleet_is_down(self, router):
        router.supervisor.healthy.clear()
        assert router.pick_by_key("any") is None

    def test_pick_least_loaded_prefers_idle_worker(self, router):
        with router._lock:
            router._outstanding.update({"w0": 3, "w1": 0, "w2": 5, "w3": 2})
        assert router.pick_least_loaded() == "w1"

    def test_pick_least_loaded_skips_unhealthy(self, router):
        with router._lock:
            router._outstanding.update({"w0": 0, "w1": 1, "w2": 2, "w3": 3})
        router.supervisor.healthy.discard("w0")
        assert router.pick_least_loaded() == "w1"

    def test_pick_least_loaded_none_when_fleet_is_down(self, router):
        router.supervisor.healthy.clear()
        assert router.pick_least_loaded() is None
