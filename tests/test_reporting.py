"""Tests for table/CSV rendering of sweep results."""

import csv
import io

from repro.experiments import format_panels, format_table, rows_to_csv
from repro.experiments.harness import SweepResult


def sample_result():
    result = SweepResult(axis="num_events")
    for value in (10, 20):
        for solver, utility in (("DeDPO", 5.0 + value), ("DeGreedy", 4.0 + value)):
            result.rows.append(
                {
                    "axis": "num_events",
                    "axis_value": value,
                    "solver": solver,
                    "utility": utility,
                    "time_s": 0.5,
                    "peak_mem_kb": 128,
                }
            )
    return result


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_content(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "222" in text and "xy" in text

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        assert "3" in format_table(rows, columns=["a", "b"])


class TestFormatPanels:
    def test_contains_three_panels(self):
        text = format_panels(sample_result(), title="demo")
        assert "Total utility score" in text
        assert "Running time" in text
        assert "Peak solver memory" in text
        assert "demo" in text

    def test_series_laid_out_by_axis(self):
        text = format_panels(sample_result())
        assert "num_events=10" in text
        assert "num_events=20" in text
        assert "DeDPO" in text and "DeGreedy" in text

    def test_skips_unmeasured_metrics(self):
        result = sample_result()
        for row in result.rows:
            del row["peak_mem_kb"]
        assert "Peak solver memory" not in format_panels(result)


class TestRowsToCsv:
    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_round_trips_through_csv_reader(self):
        text = rows_to_csv(sample_result().rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["solver"] == "DeDPO"

    def test_union_of_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = rows_to_csv(rows)
        header = text.splitlines()[0]
        assert header == "a,b"
