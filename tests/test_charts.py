"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import render_chart, render_result_charts
from repro.experiments.harness import SweepResult


class TestRenderChart:
    def test_empty(self):
        assert render_chart({}, []) == "(no data)"
        assert render_chart({"a": [None, None]}, [1, 2]) == "(no data)"

    def test_contains_glyphs_and_legend(self):
        text = render_chart({"alpha": [1.0, 2.0], "beta": [2.0, 1.0]}, [10, 20])
        assert "o=alpha" in text
        assert "x=beta" in text
        assert "o" in text and "x" in text

    def test_axis_labels_present(self):
        text = render_chart({"a": [1.0, 5.0]}, ["lo", "hi"])
        assert "lo" in text and "hi" in text

    def test_y_range_labels(self):
        text = render_chart({"a": [1.0, 5.0]}, [0, 1])
        assert "1" in text and "5" in text

    def test_log_scale_annotated(self):
        text = render_chart({"a": [0.001, 10.0]}, [0, 1], log_y=True)
        assert "(log)" in text

    def test_flat_series_centred(self):
        text = render_chart({"a": [3.0, 3.0, 3.0]}, [1, 2, 3], height=5)
        data = "\n".join(l for l in text.splitlines() if "|" in l)
        assert data.count("o") == 3

    def test_title(self):
        text = render_chart({"a": [1.0]}, [0], title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_missing_points_skipped(self):
        text = render_chart({"a": [1.0, None, 3.0]}, [0, 1, 2])
        data = "\n".join(l for l in text.splitlines() if "|" in l)
        assert data.count("o") == 2

    def test_height_respected(self):
        text = render_chart({"a": [1.0, 9.0]}, [0, 1], height=6)
        data_rows = [l for l in text.splitlines() if "|" in l]
        assert len(data_rows) == 6


class TestRenderResultCharts:
    def _result(self):
        result = SweepResult(axis="x")
        for x in (1, 2, 3):
            result.rows.append(
                {"axis_value": x, "solver": "A", "utility": float(x),
                 "time_s": 0.1 * x, "peak_mem_kb": 10 * x}
            )
        return result

    def test_three_panels(self):
        text = render_result_charts(self._result())
        assert "Total utility score" in text
        assert "Running time" in text
        assert "Peak solver memory" in text

    def test_skips_missing_metrics(self):
        result = self._result()
        for row in result.rows:
            row["peak_mem_kb"] = None
        text = render_result_charts(result)
        assert "Peak solver memory" not in text
