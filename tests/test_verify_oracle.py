"""The independent feasibility oracle (repro.verify.oracle).

Each of the four Definition 2 constraints is violated in isolation on a
hand-built instance and the oracle must name the constraint *and* the
offending (user, event) pairs; clean plannings from every solver must
verify; the oracle must also catch corrupted internal state that the
planning's own caches would vouch for.
"""

import math

import numpy as np
import pytest

from repro.algorithms import make_solver
from repro.core.costs import GridCostModel, MatrixCostModel
from repro.core.entities import Event, User
from repro.core.instance import USEPInstance
from repro.core.planning import Planning
from repro.core.timeutils import TimeInterval
from repro.datagen import SyntheticConfig, generate_instance
from repro.verify.oracle import (
    VerificationReport,
    Violation,
    verify_planning,
    verify_schedules,
)


def grid_instance(
    num_events=4, num_users=3, capacities=None, budgets=None, mu=None
):
    """Small hand-controllable instance on a line; all events chainable."""
    capacities = capacities or [2] * num_events
    budgets = budgets if budgets is not None else [100] * num_users
    events = [
        Event(
            id=i,
            location=(i, 0),
            capacity=capacities[i],
            interval=TimeInterval(2 * i, 2 * i + 1),
        )
        for i in range(num_events)
    ]
    users = [
        User(id=u, location=(0, 0), budget=budgets[u]) for u in range(num_users)
    ]
    if mu is None:
        mu = np.full((num_events, num_users), 0.5)
    return USEPInstance(events, users, GridCostModel(), mu)


class TestCleanPlannings:
    @pytest.mark.parametrize(
        "name", ["RatioGreedy", "DeDP", "DeDPO", "DeGreedy", "DeDPO+RG"]
    )
    def test_solver_outputs_verify(self, name):
        inst = generate_instance(
            SyntheticConfig(num_events=8, num_users=15, mean_capacity=3, seed=5)
        )
        planning = make_solver(name).solve(inst)
        report = verify_planning(inst, planning)
        assert report.ok, report.summary()
        assert report.num_pairs == planning.total_arranged_pairs()
        assert report.recomputed_utility == pytest.approx(
            planning.total_utility()
        )

    def test_empty_planning_verifies(self):
        inst = grid_instance()
        report = verify_planning(inst, Planning(inst))
        assert report.ok
        assert report.num_pairs == 0
        assert report.recomputed_utility == 0.0
        assert "OK" in report.summary()


class TestCapacityViolation:
    def test_overfull_event_flagged_with_attendees(self):
        inst = grid_instance(capacities=[1, 2, 2, 2])
        schedules = {0: [0], 1: [0], 2: [0]}  # event 0 holds 1
        report = verify_schedules(inst, schedules)
        assert not report.ok
        assert report.constraints_violated == ["capacity"]
        (violation,) = report.violations
        assert set(violation.pairs) == {(0, 0), (1, 0), (2, 0)}
        assert "exceed capacity 1" in violation.message


class TestBudgetViolation:
    def test_round_trip_over_budget_flagged(self):
        # user 1 sits at (0, 0); event 3 sits at (3, 0): round trip 6 > 5
        inst = grid_instance(budgets=[100, 5, 100])
        report = verify_schedules(inst, {1: [3]})
        assert report.constraints_violated == ["budget"]
        (violation,) = report.violations
        assert violation.pairs == ((1, 3),)
        assert "exceeds budget 5" in violation.message

    def test_chain_cost_uses_event_to_event_legs(self):
        # 0 -> 3 chain: out 0, legs |0-3| = 3, home 3 => total 6
        inst = grid_instance(budgets=[6, 100, 100])
        assert verify_schedules(inst, {0: [0, 3]}).ok
        inst = grid_instance(budgets=[5.999, 100, 100])
        assert verify_schedules(inst, {0: [0, 3]}).constraints_violated == [
            "budget"
        ]

    def test_exact_budget_is_feasible(self):
        inst = grid_instance(budgets=[2, 100, 100])
        # event 1 at (1, 0): round trip exactly 2
        assert verify_schedules(inst, {0: [1]}).ok


class TestFeasibilityViolation:
    def test_time_overlap_flagged(self):
        events = [
            Event(0, (0, 0), 2, TimeInterval(0, 4)),
            Event(1, (1, 0), 2, TimeInterval(2, 6)),
        ]
        users = [User(0, (0, 0), 100)]
        inst = USEPInstance(events, users, GridCostModel(), np.full((2, 1), 0.5))
        report = verify_schedules(inst, {0: [0, 1]})
        assert "feasibility" in report.constraints_violated
        overlap = [v for v in report.violations if "overlap" in v.message]
        assert overlap and set(overlap[0].pairs) == {(0, 0), (0, 1)}

    def test_duplicate_event_flagged(self):
        inst = grid_instance()
        report = verify_schedules(inst, {0: [1, 1]})
        assert "feasibility" in report.constraints_violated
        assert any("more than once" in v.message for v in report.violations)

    def test_unreachable_leg_flagged(self):
        inf = math.inf
        events = [
            Event(0, (0, 0), 2, TimeInterval(0, 1)),
            Event(1, (0, 0), 2, TimeInterval(2, 3)),
        ]
        users = [User(0, (0, 0), 100)]
        ee = [[0.0, inf], [inf, 0.0]]  # the 0 -> 1 leg is unreachable
        inst = USEPInstance(
            events,
            users,
            MatrixCostModel(ee, [[1.0, 1.0]]),
            np.full((2, 1), 0.5),
        )
        report = verify_schedules(inst, {0: [0, 1]})
        assert report.constraints_violated == ["feasibility"]
        assert any("unreachable" in v.message for v in report.violations)

    def test_unknown_ids_flagged(self):
        inst = grid_instance()
        assert not verify_schedules(inst, {0: [99]}).ok
        assert not verify_schedules(inst, {99: [0]}).ok


class TestUtilityViolation:
    def test_zero_utility_pair_flagged(self):
        mu = np.full((4, 3), 0.5)
        mu[2, 1] = 0.0
        inst = grid_instance(mu=mu)
        report = verify_schedules(inst, {1: [2]})
        assert report.constraints_violated == ["utility"]
        assert report.violations[0].pairs == ((1, 2),)


class TestOmegaCrossCheck:
    def test_reported_utility_mismatch_flagged(self):
        inst = grid_instance()
        report = verify_schedules(inst, {0: [0]}, reported_utility=123.0)
        assert report.constraints_violated == ["omega"]

    def test_matching_reported_utility_clean(self):
        inst = grid_instance()
        report = verify_schedules(inst, {0: [0]}, reported_utility=0.5)
        assert report.ok

    def test_corrupted_planning_cache_caught(self):
        """The oracle recounts from raw pairs, so a planning whose cached
        occupancy lies (hiding a capacity overflow) is still caught."""
        inst = grid_instance(capacities=[1, 2, 2, 2])
        planning = Planning(inst)
        planning.add_pair(0, 0)
        # bypass the capacity check and falsify the cache
        planning.schedules[1].replace_events(inst, [0])
        planning._occupancy[0] = 1  # lie: claims one attendee
        report = verify_planning(inst, planning)
        assert "capacity" in report.constraints_violated


class TestReportShape:
    def test_multiple_violations_all_reported(self):
        mu = np.full((4, 3), 0.5)
        mu[0, 2] = 0.0
        inst = grid_instance(capacities=[1, 2, 2, 2], budgets=[100, 5, 100], mu=mu)
        report = verify_schedules(inst, {0: [0], 1: [0, 3], 2: [0]})
        violated = set(report.constraints_violated)
        assert {"capacity", "budget", "utility"} <= violated
        assert len(report.violations) >= 3
        assert "violation(s)" in report.summary()

    def test_to_dict_round_trips_through_json(self):
        import json

        report = VerificationReport(
            instance_name="x",
            num_pairs=1,
            recomputed_utility=0.5,
            violations=[Violation("budget", "msg", ((1, 2),))],
        )
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is False
        assert data["violations"][0]["pairs"] == [[1, 2]]

    def test_attendance_order_rederived_not_trusted(self):
        """Schedules handed over in scrambled order still verify: the
        oracle re-derives the end-time attendance order itself."""
        inst = grid_instance(budgets=[100, 100, 100])
        assert verify_schedules(inst, {0: [3, 0, 2]}).ok
