"""Golden-equivalence suite: array kernels vs the seed references.

The array-backed solvers promise *bit-identical plannings* — the same
schedule for every user, not merely the same total utility — because
every tie-break of the seed implementations (duplicate DP costs, equal
pseudo-copy utilities, equal frontier utilities) is reproduced exactly.
These tests sweep ~20 randomized instances across the generator's
parameter space and compare schedules pairwise.
"""

import random

import pytest

from repro.algorithms import make_solver
from repro.algorithms.augment import AugmentedSolver
from repro.algorithms.dp_single import dp_single, dp_single_reference
from repro.algorithms.local_search import LocalSearchSolver
from repro.algorithms.seed_baseline import DeDPOSeed, DeGreedySeed
from repro.datagen import SyntheticConfig, generate_instance

#: (array-kernel solver, seed reference) twins.
PAIRS = (
    ("DeDP", "DeDP-seed"),
    ("DeDPO", "DeDPO-seed"),
    ("DeGreedy", "DeGreedy-seed"),
)

#: Composed variants: the registry solver (kernel base) vs the same
#: post-pass composed over the seed reference.  The post-passes are
#: deterministic, so twin bases must yield twin composites.
AUGMENTED_PAIRS = (
    ("DeDPO+RG", lambda: AugmentedSolver(DeDPOSeed())),
    ("DeGreedy+RG", lambda: AugmentedSolver(DeGreedySeed())),
)

LOCAL_SEARCH_PAIRS = (
    ("DeDPO+LS", lambda: LocalSearchSolver(DeDPOSeed())),
    ("DeGreedy+LS", lambda: LocalSearchSolver(DeGreedySeed())),
)

#: 20 randomized configurations spanning capacity, conflict, budget and
#: utility-distribution space (seed doubles as the RNG stream id).
CONFIGS = [
    SyntheticConfig(
        seed=seed,
        num_events=8 + (seed * 3) % 7,
        num_users=20 + (seed * 7) % 21,
        mean_capacity=2 + seed % 5,
        grid_size=20 + (seed * 5) % 30,
        conflict_ratio=(seed % 4) * 0.2,
        budget_factor=1.0 + (seed % 3),
        utility_distribution=("uniform", "normal", "power:0.5")[seed % 3],
    )
    for seed in range(100, 120)
]


def _ids(config):
    return f"seed{config.seed}"


@pytest.fixture(scope="module", params=CONFIGS, ids=_ids)
def instance(request):
    return generate_instance(request.param)


@pytest.mark.parametrize("kernel,seed_name", PAIRS, ids=[p[0] for p in PAIRS])
def test_identical_plannings(instance, kernel, seed_name):
    """Same total utility AND the same schedule for every user."""
    kernel_planning = make_solver(kernel).solve(instance)
    seed_planning = make_solver(seed_name).solve(instance)
    assert kernel_planning.total_utility() == seed_planning.total_utility()
    assert kernel_planning.as_dict() == seed_planning.as_dict()


@pytest.mark.parametrize("kernel,seed_name", PAIRS, ids=[p[0] for p in PAIRS])
def test_warm_rerun_still_matches_seed(instance, kernel, seed_name):
    """The incremental engine's warm path vs the seed reference: a
    re-solve on an already-solved instance is served almost entirely
    from the schedule memo (docs/performance.md), and must still be
    bit-identical to the seed twin — a memo hit may only ever replay
    exactly what a cold run would compute."""
    solver = make_solver(kernel)
    solver.solve(instance)  # warm the candidate index + schedule memo
    warm_planning = solver.solve(instance)
    seed_planning = make_solver(seed_name).solve(instance)
    assert warm_planning.total_utility() == seed_planning.total_utility()
    assert warm_planning.as_dict() == seed_planning.as_dict()


@pytest.mark.parametrize(
    "kernel,seed_factory",
    AUGMENTED_PAIRS + LOCAL_SEARCH_PAIRS,
    ids=[p[0] for p in AUGMENTED_PAIRS + LOCAL_SEARCH_PAIRS],
)
def test_composed_variants_identical_plannings(instance, kernel, seed_factory):
    """+RG augmentation and the +LS refiner preserve twin equivalence:
    the registry solver (kernel base) and the seed-composed solver must
    produce the same planning, schedule for schedule."""
    kernel_planning = make_solver(kernel).solve(instance)
    seed_planning = seed_factory().solve(instance)
    assert kernel_planning.total_utility() == seed_planning.total_utility()
    assert kernel_planning.as_dict() == seed_planning.as_dict()


@pytest.mark.parametrize("kernel,_", AUGMENTED_PAIRS, ids=[p[0] for p in AUGMENTED_PAIRS])
def test_augmentation_never_lowers_utility(instance, kernel, _):
    """+RG only ever adds pairs, so it can't lose utility vs its base."""
    base = kernel.split("+")[0]
    base_utility = make_solver(base).solve(instance).total_utility()
    assert make_solver(kernel).solve(instance).total_utility() >= base_utility


@pytest.mark.parametrize(
    "kernel,_", LOCAL_SEARCH_PAIRS, ids=[p[0] for p in LOCAL_SEARCH_PAIRS]
)
def test_local_search_dominates_rg_fixpoint(instance, kernel, _):
    """The +LS move set strictly contains +RG's, so its fixed point is
    never worse than the +RG result from the same base."""
    base = kernel.split("+")[0]
    rg_utility = make_solver(f"{base}+RG").solve(instance).total_utility()
    assert make_solver(kernel).solve(instance).total_utility() >= rg_utility - 1e-9


def test_dp_single_matches_reference(instance):
    """The DP kernel alone, on randomized candidate sets and utilities."""
    rng = random.Random(instance.num_events * 1000 + instance.num_users)
    num_events = instance.num_events
    for user_id in range(min(instance.num_users, 10)):
        candidates = [i for i in range(num_events) if rng.random() < 0.7]
        utilities = {i: rng.uniform(0.1, 5.0) for i in candidates}
        # duplicate some utilities to exercise tie-breaking
        for i in candidates[::3]:
            utilities[i] = 1.0
        fast = dp_single(instance, user_id, candidates, utilities)
        slow = dp_single_reference(instance, user_id, candidates, utilities)
        assert fast == slow


def test_dp_single_matches_reference_zero_budget():
    """Degenerate budgets: empty schedules from both implementations."""
    inst = generate_instance(
        SyntheticConfig(
            seed=7, num_events=8, num_users=5, mean_capacity=3, budget_factor=0.0
        )
    )
    for user_id in range(inst.num_users):
        candidates = list(range(inst.num_events))
        utilities = {i: 1.0 for i in candidates}
        assert dp_single(inst, user_id, candidates, utilities) == (
            dp_single_reference(inst, user_id, candidates, utilities)
        )
