"""Tests for the exception hierarchy."""

import pytest

from repro.core.exceptions import (
    ConstraintViolationError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    ReproError,
    SolverError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_cls in (
            InvalidInstanceError,
            InfeasibleScheduleError,
            SolverError,
        ):
            assert issubclass(exc_cls, ReproError)
        assert issubclass(ConstraintViolationError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise InvalidInstanceError("bad input")

    def test_constraint_violation_carries_constraint_name(self):
        err = ConstraintViolationError("budget", "user 3 overspent")
        assert err.constraint == "budget"
        assert "overspent" in str(err)

    def test_distinct_catch_granularity(self):
        """Callers can tell input errors from solver errors."""
        try:
            raise SolverError("too big")
        except InvalidInstanceError:  # pragma: no cover - must not match
            pytest.fail("SolverError caught as InvalidInstanceError")
        except SolverError:
            pass
