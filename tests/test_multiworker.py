"""Multi-process fleet tests: affinity, chaos recovery, rolling drain.

These boot real worker subprocesses through
:class:`repro.service.router.LocalCluster` and kill them with real
signals — the process-level half of the robustness contract:

* SIGKILL a worker holding registered instances mid-mutation-stream;
  after the supervisor restarts it, the same ``instance_id`` serves
  ``/solve`` with a plan byte-identical to an uninterrupted run, and
  the client saw zero transport errors and zero 500s throughout.
* The ``/stats`` counter invariant
  (``ok+degraded+shed+invalid+failed == received``) holds on every
  worker under concurrent mixed traffic.
* A rolling drain (router first, then workers one at a time) sheds
  nothing and every worker exits 0.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import build_cache
from repro.core.deltas import apply_mutation
from repro.io import instance_from_dict, instance_to_dict, mutation_from_dict
from repro.paper_example import build_example_instance
from repro.service.journal import JOURNAL_SUFFIX, replay_journal
from repro.service.router import LocalCluster
from repro.service.supervisor import SupervisorConfig

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)


def _post(base_url, path, payload, timeout=60):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(base_url, path, timeout=30):
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _canonical_example():
    """The example instance in wire-canonical form (what a worker holds)."""
    return instance_from_dict(instance_to_dict(build_example_instance()))


def _mutation_stream(count):
    """A deterministic stream of single-mutation batches."""
    stream = []
    for i in range(count):
        stream.append(
            {
                "op": "utility_change",
                "user_id": i % 5,
                "event_id": i % 4,
                "utility": round((5 + i * 37 % 91) / 101.0, 6),
            }
        )
    return stream


def _worker_of(instance_id):
    return instance_id.split("-inst-")[0]


def _find_journal(journal_root, instance_id):
    worker_dir = os.path.join(journal_root, _worker_of(instance_id))
    return os.path.join(worker_dir, instance_id + JOURNAL_SUFFIX)


class TestFleetBasics:
    def test_boot_health_and_stats_shape(self, tmp_path):
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            status, body = _get(cluster.base_url, "/healthz")
            assert (status, body["role"]) == (200, "router")
            assert body["healthy_workers"] == 2
            assert _get(cluster.base_url, "/readyz")[0] == 200
            status, stats = _get(cluster.base_url, "/stats")
            assert status == 200
            assert set(stats["fleet_counters"]) == {
                "received", "ok", "degraded", "shed", "invalid", "failed",
            }
            assert {w["worker_id"] for w in stats["supervisor"]} == {"w0", "w1"}
            assert all(w["healthy"] for w in stats["supervisor"])
            assert {w["worker_id"] for w in stats["workers"]} == {"w0", "w1"}

    def test_same_content_registers_on_the_same_shard(self, tmp_path):
        wire = instance_to_dict(build_example_instance())
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            ids = []
            for _ in range(3):
                status, body = _post(
                    cluster.base_url, "/instances", {"instance": wire}
                )
                assert status == 200
                assert body["durable"] is True
                ids.append(body["instance_id"])
            assert len({_worker_of(instance_id) for instance_id in ids}) == 1

    def test_mutate_and_solve_route_to_the_owner(self, tmp_path):
        wire = instance_to_dict(build_example_instance())
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            _, body = _post(cluster.base_url, "/instances", {"instance": wire})
            instance_id = body["instance_id"]
            status, body = _post(
                cluster.base_url, "/mutate",
                {"instance_id": instance_id,
                 "mutations": _mutation_stream(2)},
            )
            assert (status, body["applied"], body["version"]) == (200, 2, 2)
            status, body = _post(
                cluster.base_url, "/solve",
                {"instance_id": instance_id, "algorithm": "DeDP",
                 "deadline_s": 15},
            )
            assert status == 200
            assert body["instance_id"] == instance_id
            assert body["instance_version"] == 2

    def test_unknown_instance_is_a_router_404(self, tmp_path):
        with LocalCluster(workers=2) as cluster:
            status, body = _post(
                cluster.base_url, "/mutate",
                {"instance_id": "w9-inst-999999", "mutations": []},
            )
            assert (status, body["error"]) == (404, "not-found")


class TestStatsInvariant:
    def test_invariant_under_concurrent_mixed_traffic(self, tmp_path):
        """The satellite: every worker's counters balance exactly even
        with solves, registrations, mutations and garbage interleaving
        across the fleet."""
        wire = instance_to_dict(build_example_instance())
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            url = cluster.base_url
            _, registered = _post(url, "/instances", {"instance": wire})
            instance_id = registered["instance_id"]
            failures = []

            def solver():
                for _ in range(4):
                    status, _body = _post(
                        url, "/solve",
                        {"instance": wire, "algorithm": "DeDP",
                         "deadline_s": 15},
                    )
                    if status == 500:
                        failures.append("solve-500")

            def mutator():
                for i in range(4):
                    status, _body = _post(
                        url, "/mutate",
                        {"instance_id": instance_id,
                         "mutations": [_mutation_stream(8)[i]]},
                    )
                    if status == 500:
                        failures.append("mutate-500")

            def registrant():
                for _ in range(3):
                    status, _body = _post(
                        url, "/instances", {"instance": wire}
                    )
                    if status == 500:
                        failures.append("register-500")

            def vandal():
                for _ in range(3):
                    status, _body = _post(url, "/solve", {"instance": 42})
                    if status not in (400, 503):
                        failures.append(f"vandal-{status}")

            threads = [
                threading.Thread(target=target)
                for target in (solver, solver, mutator, registrant, vandal)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert failures == []
            _, stats = _get(url, "/stats")
            fleet_received = 0
            for worker in stats["workers"]:
                counters = worker["counters"]
                settled = (
                    counters["ok"] + counters["degraded"] + counters["shed"]
                    + counters["invalid"] + counters["failed"]
                )
                assert settled == counters["received"], worker["worker_id"]
                fleet_received += counters["received"]
            totals = stats["fleet_counters"]
            assert totals["received"] == fleet_received
            assert totals["received"] == (
                totals["ok"] + totals["degraded"] + totals["shed"]
                + totals["invalid"] + totals["failed"]
            )


class TestChaosRecovery:
    STREAM_LEN = 20
    KILL_AFTER = 8

    def _run_stream(self, journal_root, kill_after=None):
        """Register + 20 single-mutation batches (+ optional SIGKILL of
        the shard mid-stream) + final solve.  Returns the evidence."""
        wire = instance_to_dict(build_example_instance())
        stream = _mutation_stream(self.STREAM_LEN)
        statuses = []
        with LocalCluster(workers=2, journal_root=journal_root) as cluster:
            url = cluster.base_url
            status, body = _post(url, "/instances", {"instance": wire})
            assert status == 200
            instance_id = body["instance_id"]
            for index, mutation in enumerate(stream):
                if index == kill_after:
                    cluster.kill_worker(_worker_of(instance_id))
                status, body = _post(
                    url, "/mutate",
                    {"instance_id": instance_id, "mutations": [mutation]},
                )
                statuses.append(status)
            solve_status, solve_body = _post(
                url, "/solve",
                {"instance_id": instance_id, "algorithm": "DeDP",
                 "deadline_s": 30},
            )
            _, stats = _get(url, "/stats")
        return {
            "instance_id": instance_id,
            "statuses": statuses,
            "solve_status": solve_status,
            "solve": solve_body,
            "stats": stats,
        }

    def test_sigkill_mid_stream_recovers_bit_identical(self, tmp_path):
        """The acceptance criterion, end to end."""
        calm = self._run_stream(str(tmp_path / "calm"))
        chaos = self._run_stream(
            str(tmp_path / "chaos"), kill_after=self.KILL_AFTER
        )

        # Zero transport errors / zero 500s during kill-and-recover:
        # every mutation batch in the chaotic run was acknowledged 200.
        assert chaos["statuses"] == [200] * self.STREAM_LEN
        assert calm["statuses"] == [200] * self.STREAM_LEN
        assert chaos["solve_status"] == 200

        # The same instance_id kept serving across the crash...
        assert chaos["solve"]["instance_id"] == chaos["instance_id"]
        assert chaos["solve"]["instance_version"] == self.STREAM_LEN

        # ...with a plan byte-identical to the uninterrupted run.
        for key in ("schedules", "utility", "status", "algorithm"):
            assert chaos["solve"][key] == calm["solve"][key], key

        # The supervisor really did restart the shard (exactly once —
        # the kill window is deterministic) and replayed its journal.
        snapshot = {
            w["worker_id"]: w for w in chaos["stats"]["supervisor"]
        }
        shard = snapshot[_worker_of(chaos["instance_id"])]
        assert shard["restarts"] == 1
        assert shard["recovered_instances"] >= 1
        assert shard["healthy"] is True

        # And exactly one failover retry was needed, no double-apply:
        # the journal replays to the offline twin's fingerprint.
        journal = _find_journal(
            str(tmp_path / "chaos"), chaos["instance_id"]
        )
        recovered = replay_journal(journal)
        twin = _canonical_example()
        for wire_mutation in _mutation_stream(self.STREAM_LEN):
            apply_mutation(
                twin, mutation_from_dict(wire_mutation, "twin")
            )
        assert recovered.instance.version == twin.version
        assert recovered.mutations == self.STREAM_LEN
        assert build_cache.instance_fingerprint(
            recovered.instance
        ) == build_cache.instance_fingerprint(twin)

    def test_hung_worker_is_killed_and_restarted(self, tmp_path):
        """SIGSTOP freezes a worker: heartbeats time out, the supervisor
        SIGKILLs the zombie and the replacement replays the journal."""
        config = SupervisorConfig(
            num_workers=2,
            journal_root=str(tmp_path),
            worker_args=("--in-process",),
            heartbeat_interval_s=0.15,
            probe_timeout_s=0.4,
            hung_probe_failures=2,
        )
        wire = instance_to_dict(build_example_instance())
        with LocalCluster(supervisor_config=config) as cluster:
            url = cluster.base_url
            _, body = _post(url, "/instances", {"instance": wire})
            instance_id = body["instance_id"]
            cluster.kill_worker(_worker_of(instance_id), sig=signal.SIGSTOP)
            deadline = time.monotonic() + 30
            shard = None
            while time.monotonic() < deadline:
                _, stats = _get(url, "/stats")
                shard = {
                    w["worker_id"]: w for w in stats["supervisor"]
                }[_worker_of(instance_id)]
                if shard["restarts"] >= 1 and shard["healthy"]:
                    break
                time.sleep(0.2)
            assert shard is not None and shard["restarts"] >= 1
            assert cluster.supervisor.hung_kills >= 1
            # the replacement serves the journalled instance again
            status, body = _post(
                url, "/mutate",
                {"instance_id": instance_id,
                 "mutations": [_mutation_stream(1)[0]]},
            )
            assert (status, body["version"]) == (200, 1)


class TestRollingDrain:
    def test_drain_sheds_nothing_and_workers_exit_zero(self, tmp_path):
        wire = instance_to_dict(build_example_instance())
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            url = cluster.base_url
            responses = []
            stop = threading.Event()

            def traffic():
                while not stop.is_set():
                    try:
                        status, body = _post(
                            url, "/solve",
                            {"instance": wire, "algorithm": "DeDP",
                             "deadline_s": 15},
                        )
                    except OSError:
                        responses.append(("transport", None))
                        return
                    responses.append((status, body.get("error")))
                    if status == 503:
                        return  # the draining signal: back off for good

            thread = threading.Thread(target=traffic)
            thread.start()
            time.sleep(1.0)  # let some requests land
            cluster.router.drain()
            thread.join(timeout=60)
            stop.set()
            # Workers finished their in-flight solves and saw no new
            # traffic: their shed counters never moved.
            _, stats = _get(url, "/stats")
            for worker in stats["workers"]:
                assert worker["counters"]["shed"] == 0, worker["worker_id"]
            codes = cluster.supervisor.drain_rolling()
            assert codes == [0, 0]
            # The client never saw a raw failure: 200s, then one
            # structured 503 "draining" at the cut.
            assert responses, "traffic thread never got a response in"
            assert all(status == 200 for status, _ in responses[:-1])
            final_status, final_error = responses[-1]
            assert final_status in (200, 503)
            if final_status == 503:
                assert final_error == "draining"
            assert _get(url, "/readyz")[0] == 503


class TestSingleProcessSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The satellite fix: a single-process serve must exit 0 on
        SIGTERM instead of dying with a KeyboardInterrupt traceback."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--in-process", "--journal-dir", str(tmp_path / "journals")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            base_url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "serving on " in line:
                    base_url = line.split("serving on ", 1)[1].strip()
                    break
            assert base_url, "server never announced"
            status, _ = _get(base_url, "/readyz")
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            assert code == 0
            stderr = proc.stderr.read()
            assert "Traceback" not in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_sigint_also_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--in-process"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            deadline = time.monotonic() + 60
            announced = False
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "serving on " in line:
                    announced = True
                    break
            assert announced
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestChurnKillFuzz:
    """The --churn-kill fuzz mode survives a seeded stream end to end."""

    def test_one_stream_survives_and_reports_ok(self):
        from repro.verify.fuzz import run_churn_kill_fuzz

        report = run_churn_kill_fuzz(
            seed=1, streams=1, mutations_per_stream=5, workers=2
        )
        assert report.ok, [f.message for f in report.findings]
        assert report.mode == "churn-kill"
        assert report.instances_run == 1
        assert "streams" in report.summary()


class TestFleetScatter:
    """``POST /solve?partition=grid``: scatter, oracle gate, degrade.

    The router's aggregator path (docs/partitioning.md): a clustered
    instance is cut into grid cells, fanned to the workers' ``POST
    /subsolve`` by content affinity, merged, and oracle-verified before
    the 200.  Any partition-path failure — an unknown scheme aside,
    which is the client's error — must degrade to the monolithic proxy
    path, never surface as a 500.
    """

    def _clustered(self):
        from repro.datagen.clustered import (
            ClusteredConfig,
            generate_clustered_instance,
        )

        instance = generate_clustered_instance(
            ClusteredConfig(num_events=40, num_users=400, num_clusters=4, seed=7)
        )
        return instance, {
            "instance": instance_to_dict(instance),
            "algorithm": "DeDPO",
        }

    def test_partitioned_solve_verifies_and_counts(self, tmp_path):
        from repro.verify.oracle import verify_schedules

        instance, payload = self._clustered()
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            status, body = _post(
                cluster.base_url, "/solve?partition=grid&cells=4", payload,
                timeout=120,
            )
            assert status == 200
            assert body["status"] == "ok"
            assert body["verified"] is True
            assert body["partition"]["cells"] >= 2
            schedules = {
                int(uid): events for uid, events in body["schedules"].items()
            }
            assert verify_schedules(instance, schedules).ok
            _, stats = _get(cluster.base_url, "/stats")
            assert stats["router"]["partition_scatters"] == 1
            assert stats["router"]["partition_fallbacks"] == 0

    def test_subsolve_answers_a_single_unverified_rung(self, tmp_path):
        _instance, payload = self._clustered()
        with LocalCluster(workers=1, journal_root=str(tmp_path)) as cluster:
            _worker_id, worker_url = cluster.supervisor.healthy_workers()[0]
            status, body = _post(worker_url, "/subsolve", payload, timeout=120)
            assert status == 200
            assert body["status"] == "ok"
            assert body["verified"] is False  # the router gates the merge
            assert body["algorithm"] == "DeDPO"
            assert body["schedules"]

    def test_unknown_scheme_is_a_400(self, tmp_path):
        _instance, payload = self._clustered()
        with LocalCluster(workers=1, journal_root=str(tmp_path)) as cluster:
            status, body = _post(
                cluster.base_url, "/solve?partition=quadtree", payload
            )
            assert status == 400
            assert "grid" in body["detail"]

    def test_unparseable_cells_is_a_400(self, tmp_path):
        _instance, payload = self._clustered()
        with LocalCluster(workers=1, journal_root=str(tmp_path)) as cluster:
            status, _body = _post(
                cluster.base_url, "/solve?partition=grid&cells=zebra", payload
            )
            assert status == 400

    def test_refused_cut_degrades_to_monolithic(self, tmp_path):
        from repro.core.partition import PartitionError, partition_instance
        from repro.datagen.clustered import (
            ClusteredConfig,
            generate_clustered_instance,
        )

        instance = generate_clustered_instance(
            ClusteredConfig(
                num_events=12, num_users=120, num_clusters=1, seed=3
            )
        )
        with pytest.raises(PartitionError):  # the premise: guard refuses
            partition_instance(instance, cells=9)
        payload = {"instance": instance_to_dict(instance), "algorithm": "DeDPO"}
        with LocalCluster(workers=2, journal_root=str(tmp_path)) as cluster:
            status, body = _post(
                cluster.base_url, "/solve?partition=grid&cells=9", payload,
                timeout=120,
            )
            assert status == 200  # monolithic fallback, never a 500
            assert body["status"] == "ok"
            assert "partition" not in body
            _, stats = _get(cluster.base_url, "/stats")
            assert stats["router"]["partition_fallbacks"] == 1
            assert stats["router"]["partition_scatters"] == 0

    def test_sigkill_mid_scatter_retries_the_lost_cells(self, tmp_path):
        """SIGKILL a worker while its subsolves are in flight: the lost
        cells are re-dispatched to the survivors (``partition_retries``)
        and the request still returns an oracle-verified 200 — via the
        scatter path, not the monolithic fallback, and with zero 500s.
        """
        from repro.verify.oracle import verify_schedules

        instance, payload = self._clustered()
        payload["deadline_s"] = 120.0
        result = {}
        with LocalCluster(workers=3, journal_root=str(tmp_path)) as cluster:
            def fire():
                result["resp"] = _post(
                    cluster.base_url,
                    "/solve?partition=grid&cells=6",
                    payload,
                    timeout=180,
                )

            thread = threading.Thread(target=fire)
            thread.start()
            try:
                # Kill the busiest worker the moment subsolves are in
                # flight — its cells die mid-request.
                victim = None
                deadline = time.monotonic() + 60
                while victim is None and time.monotonic() < deadline:
                    with cluster.router._lock:
                        busy = {
                            wid: n
                            for wid, n in cluster.router._outstanding.items()
                            if n > 0
                        }
                    if busy:
                        victim = max(busy, key=busy.get)
                    else:
                        time.sleep(0.005)
                assert victim is not None, "scatter never reached a worker"
                cluster.kill_worker(victim)
            finally:
                thread.join(timeout=180)
            assert not thread.is_alive(), "scatter request never returned"
            status, body = result["resp"]
            assert status == 200
            assert body["status"] == "ok"
            assert body["verified"] is True
            assert "partition" in body, "must not fall back to monolithic"
            schedules = {
                int(uid): events for uid, events in body["schedules"].items()
            }
            assert verify_schedules(instance, schedules).ok
            _, stats = _get(cluster.base_url, "/stats")
            assert stats["router"]["partition_retries"] >= 1
            assert stats["router"]["partition_fallbacks"] == 0

    def test_bad_instance_falls_back_to_the_canonical_400(self, tmp_path):
        with LocalCluster(workers=1, journal_root=str(tmp_path)) as cluster:
            status, body = _post(
                cluster.base_url, "/solve?partition=grid", {"instance": 17}
            )
            assert status == 400  # the worker's invalid-instance answer
            assert "error" in body or "message" in body
