"""Spatial grid partitioning: the cut, the merge, the quality contract.

The partition layer (``repro.core.partition`` + the local twin
``repro.algorithms.partitioned``) is the first layer allowed to return
a *different* answer than the sequential solver, so its tests pin the
exact shape of that allowance (docs/partitioning.md):

* a single-cell cut is the degenerate case where the old bit-identity
  contract still applies — the merged plan must be byte-identical to
  the monolithic solve;
* multi-cell cuts must stay Definition-2 feasible (independent oracle)
  and keep >= 95% of the monolithic utility over a seeded 50-config
  clustered sweep;
* the structural corners: a cell with zero attached users, a user
  whose Lemma-1 candidates span every cell, an event oversubscribed by
  exactly ``capacity + 1`` users across two cells (the reconciler's
  defensive eviction), and the replication refusal guard in both its
  strict (small-instance) and relaxed (fleet-scale) regimes.
"""

import numpy as np
import pytest

from repro.algorithms.partitioned import solve_partitioned
from repro.algorithms.registry import make_solver
from repro.core import instrument
from repro.core.costs import GridCostModel
from repro.core.entities import Event, User
from repro.core.instance import USEPInstance
from repro.core.partition import (
    MAX_REPLICATION_RATIO,
    MAX_REPLICATION_RATIO_LARGE,
    REPLICATION_STRICT_BELOW_USERS,
    PartitionError,
    partition_instance,
    reconcile,
)
from repro.core.timeutils import TimeInterval
from repro.datagen.clustered import ClusteredConfig, generate_clustered_instance
from repro.io import canonical_planning_bytes
from repro.verify import fuzz
from repro.verify.oracle import verify_planning

#: A clustered geography the default guard accepts at ``cells=4``
#: (4 well-separated districts; the fleet smoke tests use the same one).
FRIENDLY_CONFIG = ClusteredConfig(
    num_events=40, num_users=400, num_clusters=4, seed=7
)


def two_district_instance(side_users=8, central_users=2, capacity=2):
    """Two event districts on a diagonal; a 2-cell cut splits them.

    ``side_users`` live in the left district with candidates only
    there; ``central_users`` have positive utility on *every* event and
    budget to reach them all, so they attach to both cells.
    """
    events = [
        Event(
            id=i,
            location=(0.0, float(i)) if i < 3 else (100.0, 100.0 + i),
            capacity=capacity,
            interval=TimeInterval(2 * i, 2 * i + 1),
        )
        for i in range(6)
    ]
    users = []
    for u in range(side_users):
        users.append(User(id=u, location=(0.0, 1.0), budget=50.0))
    for u in range(side_users, side_users + central_users):
        users.append(User(id=u, location=(50.0, 50.0), budget=1000.0))
    mu = np.zeros((6, side_users + central_users))
    for u in range(side_users):
        mu[:3, u] = 0.5  # left district only
    for u in range(side_users, side_users + central_users):
        mu[:, u] = 0.9  # candidates in every cell
    return USEPInstance(events, users, GridCostModel(), mu)


class TestSingleCellDegenerate:
    def test_single_cell_merge_is_byte_identical(self):
        instance = generate_clustered_instance(
            ClusteredConfig(num_events=12, num_users=80, seed=3)
        )
        mono = make_solver("DeDPO").solve(instance)
        part = solve_partitioned(instance, algorithm="DeDPO", cells=1)
        assert len(part.partition.cells) == 1
        assert canonical_planning_bytes(part.planning) == (
            canonical_planning_bytes(mono)
        )

    def test_colocated_events_degenerate_to_one_cell(self):
        events = [
            Event(
                id=i,
                location=(5.0, 5.0),
                capacity=2,
                interval=TimeInterval(2 * i, 2 * i + 1),
            )
            for i in range(4)
        ]
        users = [User(id=0, location=(5.0, 5.0), budget=50.0)]
        instance = USEPInstance(
            events, users, GridCostModel(), np.full((4, 1), 0.5)
        )
        partition = partition_instance(instance, cells=4)
        assert len(partition.cells) == 1


class TestStructuralCorners:
    def test_cell_with_no_attached_users_has_empty_plan(self):
        # Only side users: nobody can reach the right district, so its
        # cell exists (it holds events) with zero attached users.
        instance = two_district_instance(side_users=8, central_users=0)
        partition = partition_instance(instance, cells=2)
        assert len(partition.cells) == 2
        sizes = sorted(len(sub.user_ids) for sub in partition.cells)
        assert sizes[0] == 0 and sizes[1] == 8
        result = solve_partitioned(instance, algorithm="DeDPO", cells=2)
        assert verify_planning(instance, result.planning).ok
        planned_events = {
            v for evs in result.planning.as_dict().values() for v in evs
        }
        assert planned_events <= {0, 1, 2}  # left district only

    def test_user_with_candidates_in_every_cell(self):
        instance = two_district_instance(side_users=8, central_users=2)
        # 2 of 10 replicated is under the strict bound; no None needed.
        partition = partition_instance(instance, cells=2)
        assert partition.replicated_users == 2
        for uid in (8, 9):
            assert int(partition.user_cell_count[uid]) == 2
            assert uid in partition.boundary_users()
        cell_plans = [
            sub.to_global_plan(
                make_solver("DeDPO").solve(sub.instance).as_dict()
                if sub.user_ids
                else {}
            )
            for sub in partition.cells
        ]
        planning, stats = reconcile(
            instance, cell_plans, [sub.user_ids for sub in partition.cells]
        )
        assert stats["boundary_users"] == 2
        assert verify_planning(instance, planning).ok

    def test_oversubscribed_event_is_evicted_to_capacity(self):
        # capacity + 1 = 3 users on global event 0, split across two
        # cells' plans — the honest scatter path cannot produce this
        # (events live in one cell), so it exercises the reconciler's
        # defensive eviction against untrusted partial plans.
        instance = two_district_instance(side_users=3, central_users=0)
        cell_plans = [{0: [0], 1: [0]}, {2: [0]}]
        cell_user_ids = [[0, 1], [2]]
        planning, stats = reconcile(instance, cell_plans, cell_user_ids)
        planned = [
            u for u, evs in planning.as_dict().items() if 0 in evs
        ]
        assert len(planned) == instance.events[0].capacity
        assert stats["evictions"] == 1
        assert verify_planning(instance, planning).ok


class TestReplicationGuard:
    def test_small_high_replication_cut_is_refused(self):
        # 6 of 10 users replicated: 60% > the strict 50% bound.
        instance = two_district_instance(side_users=4, central_users=6)
        with pytest.raises(PartitionError, match="cut refused"):
            partition_instance(instance, cells=2)

    def test_guard_can_be_disabled(self):
        instance = two_district_instance(side_users=4, central_users=6)
        partition = partition_instance(
            instance, cells=2, max_replication_ratio=None
        )
        assert partition.replicated_users == 6

    def test_large_instance_relaxes_the_bound(self):
        # Same 60% replication shape at fleet scale: above the
        # averaging threshold the bound relaxes to the 85% backstop.
        assert 0.6 > MAX_REPLICATION_RATIO
        assert 0.6 < MAX_REPLICATION_RATIO_LARGE
        side = (REPLICATION_STRICT_BELOW_USERS * 2) // 5
        central = REPLICATION_STRICT_BELOW_USERS - side
        instance = two_district_instance(
            side_users=side, central_users=central
        )
        partition = partition_instance(instance, cells=2)
        assert partition.attached_users == REPLICATION_STRICT_BELOW_USERS
        assert partition.replicated_users == central


class TestQualitySweep:
    def test_50_config_sweep_is_oracle_clean_above_the_floor(self):
        # The seeded clustered sweep behind docs/partitioning.md: every
        # merge passes the oracle and keeps >= 95% of the monolithic
        # utility (or the cut is refused, which satisfies the contract
        # vacuously — the caller solves monolithically).
        report = fuzz.run_partition_fuzz(
            seed=20260807, max_instances=50, shrink=False
        )
        assert report.ok, report.summary()
        assert report.instances_run == 50
        assert report.mode == "partition"
        assert report.partition_utility_floor == fuzz.PARTITION_UTILITY_FLOOR


class TestInstrumentation:
    def test_profiled_partition_records_counters(self):
        instance = generate_clustered_instance(FRIENDLY_CONFIG)
        with instrument.profiled() as counters:
            solve_partitioned(instance, algorithm="DeDPO", cells=4)
        assert counters["partition_cells"] >= 2
        assert counters["partition_subsolves"] == counters["partition_cells"]
        assert "partition_reconcile_ms" in counters
        for key in counters:
            if key.startswith("partition_"):
                assert instrument.is_profile_key(key)

    def test_partition_records_nothing_when_off(self):
        instance = two_district_instance()
        assert instrument.active() is None
        result = solve_partitioned(instance, algorithm="DeDPO", cells=2)
        assert verify_planning(instance, result.planning).ok


class TestCli:
    def test_solve_partition_grid_prints_the_cut(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_instance

        instance = generate_clustered_instance(FRIENDLY_CONFIG)
        path = tmp_path / "clustered.json"
        save_instance(instance, str(path))
        rc = main(
            [
                "solve", str(path),
                "--partition", "grid",
                "--cells", "4",
                "--algorithm", "DeDPO",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "partition=grid, cells=4" in out
        assert "partition:     " in out  # the cut's summary line

    def test_solve_refused_cut_falls_back_to_monolithic(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.io import save_instance

        instance = two_district_instance(side_users=4, central_users=6)
        with pytest.raises(PartitionError):
            partition_instance(instance, cells=2)  # the premise
        path = tmp_path / "refused.json"
        save_instance(instance, str(path))
        rc = main(
            [
                "solve", str(path),
                "--partition", "grid",
                "--cells", "2",
                "--algorithm", "DeDPO",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "partitioned path declined" in out
        assert "total utility:" in out
