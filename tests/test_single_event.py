"""Tests for the single-event-per-user baseline (prior-work model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_solver
from repro.algorithms.single_event import (
    GreedySingleEventAssignment,
    SingleEventAssignment,
)
from repro.core import validate_planning
from repro.datagen import SyntheticConfig, generate_instance
from tests.conftest import grid_instance


class TestSingleEventAssignment:
    def test_one_event_per_user(self, small_synthetic):
        planning = SingleEventAssignment().solve(small_synthetic)
        validate_planning(planning)
        assert all(len(s) <= 1 for s in planning.schedules)

    def test_respects_capacity(self):
        inst = grid_instance(
            [((1, 0), 1, 0, 10)],
            [((0, 0), 10), ((2, 0), 10), ((1, 1), 10)],
            [[0.5, 0.9, 0.7]],
        )
        planning = SingleEventAssignment().solve(inst)
        assert planning.occupancy(0) == 1
        assert planning.as_dict() == {1: [0]}  # the best user wins

    def test_optimal_coordination(self):
        """Flow must coordinate: greedy-by-utility is suboptimal here."""
        inst = grid_instance(
            [((1, 0), 1, 0, 10), ((1, 1), 1, 20, 30)],
            [((0, 0), 10), ((0, 1), 10)],
            # u0: (0.9, 0.8); u1: (0.85, 0.1).
            # greedy gives u0 event0 (0.9), u1 event1 (0.1) = 1.0;
            # optimal gives u0 event1 (0.8), u1 event0 (0.85) = 1.65.
            [[0.9, 0.85], [0.8, 0.1]],
        )
        flow = SingleEventAssignment().solve(inst)
        greedy = GreedySingleEventAssignment().solve(inst)
        assert flow.total_utility() == pytest.approx(1.65)
        assert greedy.total_utility() == pytest.approx(1.0)

    def test_budget_gates_assignment(self):
        inst = grid_instance(
            [((50, 0), 5, 0, 10)],
            [((0, 0), 10)],
            [[0.9]],
        )
        assert SingleEventAssignment().solve(inst).total_arranged_pairs() == 0

    def test_zero_utility_excluded(self):
        inst = grid_instance(
            [((1, 0), 5, 0, 10)],
            [((0, 0), 10)],
            [[0.0]],
        )
        assert SingleEventAssignment().solve(inst).total_arranged_pairs() == 0

    def test_empty_feasible_set(self):
        inst = grid_instance(
            [((50, 50), 1, 0, 10)], [((0, 0), 1)], [[0.5]]
        )
        planning = SingleEventAssignment().solve(inst)
        assert planning.total_arranged_pairs() == 0

    def test_registry_names(self):
        assert make_solver("SingleEvent").name == "SingleEvent"
        assert make_solver("SingleEvent-greedy").name == "SingleEvent-greedy"


class TestGreedyVariant:
    def test_feasible_and_single(self, small_synthetic):
        planning = GreedySingleEventAssignment().solve(small_synthetic)
        validate_planning(planning)
        assert all(len(s) <= 1 for s in planning.schedules)

    def test_never_beats_flow(self, small_synthetic):
        flow = SingleEventAssignment().solve(small_synthetic).total_utility()
        greedy = GreedySingleEventAssignment().solve(small_synthetic).total_utility()
        assert greedy <= flow + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_flow_dominates_greedy_random(self, seed):
        inst = generate_instance(
            SyntheticConfig(
                num_events=8, num_users=15, mean_capacity=3, grid_size=20, seed=seed
            )
        )
        flow = SingleEventAssignment().solve(inst)
        greedy = GreedySingleEventAssignment().solve(inst)
        validate_planning(flow)
        validate_planning(greedy)
        assert greedy.total_utility() <= flow.total_utility() + 1e-6


class TestIntroClaim:
    """Section 1's motivation: multi-event planning beats one-per-user."""

    def test_multi_event_dominates_single_event(self):
        total_multi = total_single = 0.0
        for seed in range(4):
            inst = generate_instance(
                SyntheticConfig(
                    num_events=12, num_users=40, mean_capacity=4,
                    grid_size=30, seed=seed,
                )
            )
            total_multi += make_solver("DeDPO+RG").solve(inst).total_utility()
            total_single += SingleEventAssignment().solve(inst).total_utility()
        assert total_multi > total_single

    def test_single_event_optimal_beats_usep_heuristics_never(self):
        """Even the *optimal* single-event planning is a feasible USEP
        planning, so the exact USEP optimum dominates it."""
        from repro.algorithms import ExactSolver

        inst = generate_instance(
            SyntheticConfig(
                num_events=5, num_users=4, mean_capacity=2, grid_size=12, seed=3
            )
        )
        single = SingleEventAssignment().solve(inst).total_utility()
        opt = ExactSolver().solve(inst).total_utility()
        assert single <= opt + 1e-9
