"""Candidate index + schedule memo: the incremental engine's parts.

The :class:`~repro.core.candidates.CandidateIndex` must equal the
brute-force per-user filter the schedulers apply internally (Lemma 1
round-trip pruning + positive utility, end-time order), and the
:class:`~repro.core.candidates.ScheduleMemo` must only ever replay
answers for bit-identical candidate views.  See docs/performance.md.
"""

import pytest

from repro.algorithms import make_solver
from repro.core.candidates import ScheduleMemo, get_engine, view_key
from repro.core.instance import USEPInstance
from repro.datagen import SyntheticConfig, generate_instance

CONFIGS = [
    SyntheticConfig(
        seed=seed,
        num_events=6 + (seed * 3) % 9,
        num_users=15 + (seed * 7) % 25,
        mean_capacity=2 + seed % 4,
        conflict_ratio=(seed % 4) * 0.25,
        budget_factor=0.5 + (seed % 4),
        utility_distribution=("uniform", "normal", "power:0.5")[seed % 3],
    )
    for seed in range(300, 308)
]


def _ids(config):
    return f"seed{config.seed}"


@pytest.fixture(params=CONFIGS, ids=_ids)
def instance(request):
    return generate_instance(request.param)


def _brute_force_survivors(instance, user_id):
    """The schedulers' own filter, applied the scalar way."""
    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)
    budget = instance.users[user_id].budget
    mu = instance.utility_matrix()
    kept = [
        ev_id
        for ev_id in range(instance.num_events)
        if mu[ev_id][user_id] > 0.0
        and to_event[ev_id] + from_event[ev_id] <= budget
    ]
    kept.sort(key=instance.arrays().pos_list.__getitem__)
    return kept


class TestCandidateIndex:
    def test_matches_brute_force_filter(self, instance):
        index = get_engine(instance).index
        assert index is not None
        for user_id in range(instance.num_users):
            assert index.per_user[user_id] == _brute_force_survivors(
                instance, user_id
            )

    def test_counters_are_consistent(self, instance):
        index = get_engine(instance).index
        mu = instance.arrays().mu
        assert index.positive_pairs == int((mu > 0.0).sum())
        assert index.survivor_pairs == sum(len(c) for c in index.per_user)
        assert index.pruned_pairs == index.positive_pairs - index.survivor_pairs
        assert index.pruned_pairs >= 0

    def test_built_once_per_instance(self, instance):
        engine = get_engine(instance)
        assert engine.index is engine.index
        assert get_engine(instance) is engine


class TestCacheUserCostsOff:
    """The bounded-memory contract disables the index, never correctness."""

    def _cache_off_twin(self, instance):
        return USEPInstance(
            instance.events,
            instance.users,
            instance.cost_model,
            instance.utility_matrix(),
            cache_user_costs=False,
        )

    def test_index_is_none(self, instance):
        off = self._cache_off_twin(instance)
        assert get_engine(off).index is None

    @pytest.mark.parametrize("name", ["DeDP", "DeDPO", "DeGreedy"])
    def test_fallback_plannings_identical(self, instance, name):
        off = self._cache_off_twin(instance)
        with_index = make_solver(name).solve(instance)
        without_index = make_solver(name).solve(off)
        assert with_index.as_dict() == without_index.as_dict()


class TestScheduleMemo:
    def test_hit_requires_identical_view(self):
        memo = ScheduleMemo()
        view = view_key([3, 5], {3: 1.0, 5: 0.25})
        assert memo.get("dp", 0, view) is None
        memo.put("dp", 0, view, [5])
        assert memo.get("dp", 0, view) == (5,)
        # any utility perturbation is a dirty user
        dirty = view_key([3, 5], {3: 1.0, 5: 0.25 + 1e-15})
        assert memo.get("dp", 0, dirty) is None
        # candidate order is part of the view
        reordered = view_key([5, 3], {3: 1.0, 5: 0.25})
        assert memo.get("dp", 0, reordered) is None

    def test_empty_schedule_hits_are_not_misses(self):
        memo = ScheduleMemo()
        view = view_key([], {})
        memo.put("dp", 1, view, [])
        assert memo.get("dp", 1, view) == ()

    def test_kinds_and_users_are_separate(self):
        memo = ScheduleMemo()
        view = view_key([2], {2: 0.5})
        memo.put("dp", 0, view, [2])
        assert memo.get("greedy", 0, view) is None
        assert memo.get("dp", 1, view) is None

    def test_only_last_view_is_kept(self):
        memo = ScheduleMemo()
        first = view_key([1], {1: 0.5})
        second = view_key([1], {1: 0.75})
        memo.put("dp", 0, first, [1])
        memo.put("dp", 0, second, [])
        assert memo.get("dp", 0, first) is None
        assert memo.get("dp", 0, second) == ()
        assert memo.stats()["entries"] == 1
