"""The paper's running example (Table 1, Figure 1, Examples 1-4).

The paper specifies the example's utilities, capacities, budgets and
event times exactly (Table 1) but gives the locations only as a figure.
The coordinates below were *recovered by constraint search*: they
satisfy every travel cost stated in Examples 2-3 that is printed in the
text (e.g. the user-to-``v1`` cost row 9/2/2/3/8 behind Table 3's ratio
row, ``cost(u1, v4) = 1``, ``cost(u3, v3) = 6``), and — run through this
package's implementations — they reproduce the paper's outputs exactly:

* RatioGreedy (Example 2): ``S_u1={v3,v4}, S_u2={v3,v4}, S_u3={v1},
  S_u5={v3,v2}`` with ``Omega = 3.6``;
* DeDP / DeDPO (Example 3): ``S_u1={v3,v2}, S_u2={v1,v4},
  S_u3={v3,v2}, S_u5={v3,v2}`` with ``Omega = 4.6``;
* DeGreedy (Example 4): ``S_u1={v3,v4}, S_u2={v1,v4}, S_u3={v3,v2},
  S_u5={v3,v2}`` with ``Omega = 4.5``.

Event/user ids here are 0-based (``v1`` in the paper is event 0).
"""

from __future__ import annotations

from typing import Dict, List

from .core import Event, GridCostModel, TimeInterval, USEPInstance, User

#: Table 1 utilities, mu[event][user].
UTILITIES: List[List[float]] = [
    [0.2, 0.6, 0.7, 0.3, 0.6],  # v1
    [0.5, 0.1, 0.3, 0.9, 0.5],  # v2
    [0.6, 0.2, 0.9, 0.4, 0.5],  # v3
    [0.4, 0.7, 0.2, 0.5, 0.1],  # v4
]

#: Table 1 event times (24h clock: 1-4pm = [13, 16], etc.).
EVENT_TIMES = [(13, 16), (15, 18), (13, 14), (18, 19)]

#: Table 1 capacities (in brackets next to each event).
EVENT_CAPACITIES = [1, 3, 4, 2]

#: Table 1 budgets (in brackets next to each user).
USER_BUDGETS = [59, 29, 51, 9, 33]

#: Recovered Figure 1a coordinates (Manhattan metric).
EVENT_LOCATIONS = [(40, 40), (37, 23), (39, 37), (46, 44)]
USER_LOCATIONS = [(45, 44), (40, 42), (40, 42), (39, 42), (37, 35)]

#: Published plannings ({user id: [event ids in time order]}).
EXPECTED_PLANNINGS: Dict[str, Dict[int, List[int]]] = {
    "RatioGreedy": {0: [2, 3], 1: [2, 3], 2: [0], 4: [2, 1]},
    "DeDP": {0: [2, 1], 1: [0, 3], 2: [2, 1], 4: [2, 1]},
    "DeDPO": {0: [2, 1], 1: [0, 3], 2: [2, 1], 4: [2, 1]},
    "DeGreedy": {0: [2, 3], 1: [0, 3], 2: [2, 1], 4: [2, 1]},
}

#: Published total utility scores.
EXPECTED_UTILITY: Dict[str, float] = {
    "RatioGreedy": 3.6,
    "DeDP": 4.6,
    "DeDPO": 4.6,
    "DeGreedy": 4.5,
}


def build_example_instance() -> USEPInstance:
    """The Example 1 instance: 4 events, 5 users, Manhattan costs."""
    events = [
        Event(
            id=i,
            location=EVENT_LOCATIONS[i],
            capacity=EVENT_CAPACITIES[i],
            interval=TimeInterval(*EVENT_TIMES[i]),
            name=f"v{i + 1}",
        )
        for i in range(4)
    ]
    users = [
        User(id=j, location=USER_LOCATIONS[j], budget=USER_BUDGETS[j], name=f"u{j + 1}")
        for j in range(5)
    ]
    return USEPInstance(
        events,
        users,
        GridCostModel(metric="manhattan", integral=True),
        UTILITIES,
        name="paper-example-1",
    )
