"""Command-line interface: regenerate any figure/table of the paper.

Examples::

    repro-usep list
    repro-usep run fig2-v --scale small
    repro-usep run fig4-real --algorithms DeDPO,DeGreedy --no-memory
    repro-usep run-all --scale tiny --csv out/
    repro-usep example

``run`` prints the same rows/series the corresponding paper panel
plots; ``--csv DIR`` additionally writes the raw rows for plotting.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .algorithms.registry import available_solvers
from .experiments.figures import SCALES, get_spec, list_specs
from .experiments.harness import run_sweep
from .experiments.reporting import format_panels, rows_to_csv


def _cmd_list(_args) -> int:
    print(f"{'key':15s} {'experiment':9s} {'axis':15s} paper artifact")
    print("-" * 78)
    for spec in list_specs():
        print(
            f"{spec.key:15s} {spec.experiment_id:9s} {spec.axis:15s} "
            f"{spec.paper_artifact}"
        )
    print(f"\nscales: {', '.join(SCALES)}   solvers: {', '.join(available_solvers())}")
    return 0


def _journal_path(args, spec) -> Optional[str]:
    """The journal path for one spec (per-spec suffix under run-all)."""
    if not getattr(args, "journal", None):
        return None
    if getattr(args, "_per_spec_journal", False):
        root, ext = os.path.splitext(args.journal)
        return f"{root}-{spec.key}-{args.scale}{ext or '.jsonl'}"
    return args.journal


def _run_one(key: str, args) -> int:
    spec = get_spec(key)
    algorithms: List[str] = (
        args.algorithms.split(",") if args.algorithms else list(spec.algorithms)
    )
    if args.resume and not args.journal:
        print("--resume requires --journal FILE", file=sys.stderr)
        return 2
    print(f"# {spec.experiment_id}: {spec.paper_artifact}")
    print(f"# {spec.description}  [scale={args.scale}]")
    if getattr(args, "seeds", 1) > 1:
        if args.journal:
            print(
                "--journal is not supported with --seeds > 1 (one ledger "
                "cannot fingerprint several seeded sweeps)",
                file=sys.stderr,
            )
            return 2
        return _run_replicated(spec, algorithms, args)
    result = run_sweep(
        axis=spec.axis,
        points=spec.points(args.scale),
        algorithms=algorithms,
        measure_memory=not args.no_memory,
        validate=args.validate,
        verify=args.verify,
        progress=not args.quiet,
        jobs=args.jobs,
        timeout=args.timeout,
        ladder=args.ladder,
        max_retries=args.max_retries,
        journal=_journal_path(args, spec),
        resume=args.resume,
        profile=args.profile,
    )
    print(format_panels(result))
    status = _report_verification(result.rows) if args.verify else 0
    status |= _report_service(result.rows)
    if args.profile:
        _report_profile(result.rows)
    if args.chart:
        from .experiments.charts import render_result_charts

        print(render_result_charts(result))
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, f"{spec.key}-{args.scale}.csv")
        with open(path, "w") as handle:
            handle.write(rows_to_csv(result.rows))
        print(f"\n(raw rows written to {path})")
    return status


def _run_replicated(spec, algorithms, args) -> int:
    """Run a spec under several seeds; print mean±std utility rows."""
    from .experiments.aggregate import AggregateResult
    from .experiments.reporting import format_table

    base_seed = 1000
    aggregate = AggregateResult(axis=spec.axis, seeds=[])
    status = 0
    for rep in range(args.seeds):
        seed = base_seed + rep
        aggregate.seeds.append(seed)
        result = run_sweep(
            axis=spec.axis,
            points=spec.points(args.scale, seed=seed),
            algorithms=algorithms,
            measure_memory=not args.no_memory,
            validate=args.validate,
            verify=args.verify,
            progress=not args.quiet,
            jobs=args.jobs,
            timeout=args.timeout,
            ladder=args.ladder,
            max_retries=args.max_retries,
            profile=args.profile,
        )
        if args.verify:
            status |= _report_verification(result.rows)
        status |= _report_service(result.rows)
        if args.profile:
            _report_profile(result.rows)
        aggregate.record(result)
    for metric, heading in (("utility", "Total utility score"),
                            ("time_s", "Running time (s)")):
        rows = aggregate.rows(metric)
        if rows:
            print(f"\n== {heading} (mean over {args.seeds} seeds) ==")
            print(format_table(rows))
    return status


def _report_verification(rows) -> int:
    """Summarise oracle verdicts of a verified sweep; 1 if any cell failed."""
    bad = [row for row in rows if not row.get("verified", False)]
    total = len(rows)
    if not bad:
        print(f"\noracle: all {total} solver cells verified")
        return 0
    print(f"\noracle: {total - len(bad)}/{total} cells verified; FAILURES:")
    for row in bad:
        print(
            f"  [{row['axis']}={row['axis_value']}] {row['solver']}: "
            f"{row.get('oracle_summary', 'verification missing')}"
        )
    return 1


def _report_service(rows) -> int:
    """Summarise non-ok cells of a fault-tolerant sweep; 1 on errors.

    Quiet when every cell is plain ``ok`` (the common, healthy case) so
    ordinary sweeps print exactly what they always did.
    """
    degraded = [r for r in rows if r.get("status") == "degraded"]
    failed = [r for r in rows if r.get("status") in ("error", "skipped")]
    resumed = sum(1 for r in rows if r.get("resumed"))
    if not degraded and not failed and not resumed:
        return 0
    print(
        f"\nservice: {len(rows)} cells — "
        f"{len(rows) - len(degraded) - len(failed)} ok, "
        f"{len(degraded)} degraded, {len(failed)} failed/skipped, "
        f"{resumed} replayed from journal"
    )
    for row in degraded:
        print(
            f"  [{row['axis']}={row['axis_value']}] {row['solver']} -> "
            f"{row['degraded_to']} (rung {row['rung']}, "
            f"guarantee: {row['guarantee']}, after {row.get('failures', '?')})"
        )
    for row in failed:
        reason = str(row.get("failures") or row.get("error", "")).strip()
        reason = reason.splitlines()[-1] if reason else "unknown"
        print(
            f"  [{row['axis']}={row['axis_value']}] {row['solver']}: "
            f"{row['status'].upper()} — {reason}"
        )
    return 1 if failed else 0


def _report_profile(rows) -> None:
    """Aggregate the incremental engine's diagnostic counters per solver.

    Sums every :func:`repro.core.instrument.is_profile_key` field over
    the sweep's rows (see ``docs/performance.md`` for how to read
    them, including the batch-layer counters ``dp_batch_users`` /
    ``dp_batch_groups`` / ``dp_batch_scalar_users``), plus this
    process's cross-cell build-cache stats.  High-water-mark counters
    (``*_peak``, e.g. the arena's ``dp_arena_bytes_peak``) take the
    max over cells instead of the sum — summing peaks of a shared
    arena would double-count the same bytes.  Parallel sweeps count
    only what the workers reported back in rows — each worker's build
    cache is process-local.
    """
    from .core import build_cache, instrument

    per_solver: dict = {}
    for row in rows:
        bucket = per_solver.setdefault(str(row.get("solver")), {})
        for key, value in row.items():
            if instrument.is_profile_key(key) and isinstance(value, (int, float)):
                if key.endswith("_peak"):
                    bucket[key] = max(bucket.get(key, 0), value)
                else:
                    bucket[key] = bucket.get(key, 0) + value
    print("\nprofile (incremental engine counters, summed over cells; *_peak maxed):")
    for solver in sorted(per_solver):
        counters = per_solver[solver]
        if not counters:
            continue
        body = "  ".join(f"{k}={counters[k]}" for k in sorted(counters))
        print(f"  {solver}: {body}")
    cache = build_cache.stats()
    print(
        f"  build cache (this process): hits={cache['hits']} "
        f"misses={cache['misses']} evictions={cache['evictions']} "
        f"entries={cache['entries']}"
    )


def _cmd_run(args) -> int:
    return _run_one(args.experiment, args)


def _cmd_run_all(args) -> int:
    status = 0
    args._per_spec_journal = True
    for spec in list_specs():
        status |= _run_one(spec.key, args)
        print()
    return status


def _cmd_example(_args) -> int:
    """Solve the paper's 4-event / 5-user running example (Table 1)."""
    from .paper_example import EXPECTED_UTILITY, build_example_instance
    from .algorithms.registry import make_solver

    instance = build_example_instance()
    print("Paper Example 1 (Table 1 / Figure 1): 4 events, 5 users")
    for name in ("RatioGreedy", "DeDP", "DeGreedy"):
        planning = make_solver(name).solve(instance)
        schedules = {
            f"u{u + 1}": [f"v{v + 1}" for v in evs]
            for u, evs in sorted(planning.as_dict().items())
        }
        expected = EXPECTED_UTILITY[name]
        print(
            f"{name:12s} Omega = {planning.total_utility():.1f} "
            f"(paper: {expected})  {schedules}"
        )
    return 0


def _cmd_generate(args) -> int:
    """Generate a synthetic or city instance and write it to JSON."""
    from .datagen.synthetic import SyntheticConfig, generate_instance
    from .ebsn.cities import CITY_PRESETS, build_city_instance
    from .io import save_instance

    if args.city:
        if args.city not in CITY_PRESETS:
            print(
                f"unknown city {args.city!r}; presets: {sorted(CITY_PRESETS)}",
                file=sys.stderr,
            )
            return 2
        instance = build_city_instance(
            args.city, budget_factor=args.budget_factor, seed=args.seed
        )
    else:
        config = SyntheticConfig(
            num_events=args.events,
            num_users=args.users,
            mean_capacity=args.capacity,
            conflict_ratio=args.conflict_ratio,
            budget_factor=args.budget_factor,
            utility_distribution=args.utilities,
            seed=args.seed,
        )
        instance = generate_instance(config)
    save_instance(instance, args.out)
    print(
        f"wrote {instance.name}: |V|={instance.num_events}, "
        f"|U|={instance.num_users} -> {args.out}"
    )
    return 0


def _cmd_solve_partitioned(args, instance) -> int:
    """Grid-partitioned solve with a monolithic fallback.

    Mirrors the service scatter path's contract (docs/partitioning.md):
    the cut may be refused (``PartitionError``) and the merged plan must
    pass the independent oracle — on either failure the command solves
    monolithically and says so, it never errors out of the partition
    path.
    """
    import time

    from .algorithms.partitioned import solve_partitioned
    from .algorithms.registry import make_solver
    from .core.partition import PartitionError
    from .io import save_planning
    from .verify.oracle import verify_planning

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    fallback_reason = None
    result = None
    start = time.perf_counter()
    try:
        try:
            result = solve_partitioned(
                instance, algorithm=args.algorithm, cells=args.cells
            )
        except PartitionError as exc:
            fallback_reason = str(exc)
        if result is not None:
            report = verify_planning(instance, result.planning)
            if not report.ok:
                fallback_reason = (
                    f"merged plan failed the oracle: {report.summary()}"
                )
                result = None
        if result is None:
            planning = make_solver(args.algorithm).solve(instance)
        else:
            planning = result.planning
        wall = time.perf_counter() - start
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
    if profiler is not None:
        print(f"cProfile stats written to {args.profile}")
    if fallback_reason is not None:
        print(f"partitioned path declined ({fallback_reason}); "
              "solved monolithically")
    print(f"instance:      {instance.name or args.instance}")
    print(f"algorithm:     {args.algorithm} (partition=grid, cells={args.cells})")
    print(f"total utility: {planning.total_utility():.4f}")
    print(f"pairs planned: {planning.total_arranged_pairs()}")
    print(f"wall time:     {wall:.3f} s")
    if result is not None:
        summary = result.describe()
        body = "  ".join(
            f"{key}={summary[key]}" for key in sorted(summary)
            if key != "algorithm"
        )
        print(f"partition:     {body}")
    if args.report:
        from .analysis import analyze_planning
        from .experiments.reporting import format_table

        print("\nplanning diagnostics:")
        print(format_table(analyze_planning(planning).summary_rows()))
    if args.out:
        save_planning(planning, args.out)
        print(f"planning written to {args.out}")
    return 0


def _cmd_solve(args) -> int:
    """Solve a saved instance and report (optionally record) the planning."""
    from .algorithms.registry import make_solver
    from .io import load_instance, save_planning

    instance = load_instance(args.instance)
    if args.partition:
        return _cmd_solve_partitioned(args, instance)
    solver = make_solver(args.algorithm)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = solver.run(
                instance, measure_memory=not args.no_memory, validate=True
            )
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
        print(f"cProfile stats written to {args.profile}")
    else:
        result = solver.run(instance, measure_memory=not args.no_memory, validate=True)
    print(f"instance:      {instance.name or args.instance}")
    print(f"algorithm:     {result.solver}")
    print(f"total utility: {result.utility:.4f}")
    print(f"pairs planned: {result.planning.total_arranged_pairs()}")
    print(f"wall time:     {result.wall_time_s:.3f} s")
    if result.peak_memory_bytes is not None:
        print(f"peak memory:   {result.peak_memory_bytes // 1024} KB")
    if args.report:
        from .analysis import analyze_planning
        from .experiments.reporting import format_table

        print("\nplanning diagnostics:")
        print(format_table(analyze_planning(result.planning).summary_rows()))
    if args.out:
        save_planning(result.planning, args.out)
        print(f"planning written to {args.out}")
    return 0


def _cmd_mutate(args) -> int:
    """Replay a churn trace against a saved instance with delta re-solves.

    Loads the instance, warms a first solve (builds the candidate index
    and schedule memo), then applies the ``--churn-trace`` JSONL
    mutation stream in order through :mod:`repro.core.deltas`,
    re-solving incrementally every ``--solve-every`` mutations and once
    at the end.  ``--compare-cold`` re-solves the final content from a
    fresh decode and bit-compares the canonical planning bytes (exit 1
    on mismatch); ``--out`` writes the mutated instance.
    """
    import time

    from .algorithms.registry import make_solver
    from .core.deltas import apply_mutation
    from .core.exceptions import InvalidInstanceError
    from .io import (
        canonical_planning_bytes,
        instance_from_dict,
        instance_to_dict,
        load_instance,
        load_mutation_stream,
        save_instance,
    )

    try:
        instance = load_instance(args.instance)
        mutations = load_mutation_stream(args.churn_trace)
    except InvalidInstanceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    solver = make_solver(args.algorithm)

    start = time.perf_counter()
    solver.solve(instance)
    warm_s = time.perf_counter() - start

    applied = 0
    delta_solves = 0
    delta_s = 0.0
    planning = None
    try:
        for i, mutation in enumerate(mutations, 1):
            apply_mutation(instance, mutation)
            applied += 1
            if args.solve_every and i % args.solve_every == 0:
                start = time.perf_counter()
                planning = solver.solve(instance)
                delta_s += time.perf_counter() - start
                delta_solves += 1
    except InvalidInstanceError as exc:
        print(
            f"mutation {applied + 1}/{len(mutations)} invalid: {exc}",
            file=sys.stderr,
        )
        return 2
    if planning is None or (args.solve_every and applied % args.solve_every):
        start = time.perf_counter()
        planning = solver.solve(instance)
        delta_s += time.perf_counter() - start
        delta_solves += 1

    print(f"instance:       {instance.name or args.instance}")
    print(f"mutations:      {applied} applied (version {instance.version})")
    print(f"algorithm:      {args.algorithm}")
    print(f"warm solve:     {warm_s:.3f} s")
    print(
        f"delta solves:   {delta_solves} in {delta_s:.3f} s "
        f"({delta_s / delta_solves:.4f} s each)"
    )
    print(f"final utility:  {planning.total_utility():.4f}")

    status = 0
    if args.compare_cold:
        cold = instance_from_dict(instance_to_dict(instance))
        cold_planning = make_solver(args.algorithm).solve(cold)
        identical = canonical_planning_bytes(planning) == canonical_planning_bytes(
            cold_planning
        )
        print(f"cold compare:   {'bit-identical' if identical else 'MISMATCH'}")
        if not identical:
            status = 1
    if args.out:
        save_instance(instance, args.out)
        print(f"mutated instance written to {args.out}")
    return status


def _cmd_serve(args) -> int:
    """Run the online planning daemon (see docs/serving.md).

    ``--workers 0`` (the default) serves single-process; ``--workers N``
    boots a front-end router plus N supervised worker processes
    (affinity routing, crash failover, journal-replayed recovery).
    Either way SIGTERM/SIGINT drains: readiness flips off, in-flight
    solves finish, then the process exits 0.
    """
    if args.workers > 0:
        return _serve_multiworker(args)
    from .service.admission import AdmissionConfig
    from .service.ladder import DEFAULT_LADDER, parse_ladder
    from .service.server import ServerConfig, make_server
    from .service.worker import install_drain_handlers, serve_until_signalled

    try:
        ladder = parse_ladder(args.ladder) if args.ladder else list(DEFAULT_LADDER)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        admission = AdmissionConfig(
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            deadline_cap_s=args.deadline_cap,
            default_deadline_s=min(args.default_deadline, args.deadline_cap),
            rate_burst=args.rate_burst,
            rate_per_s=args.rate,
            max_body_bytes=args.max_body_bytes,
            ladder=tuple(ladder),
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = ServerConfig(
        admission=admission,
        default_algorithm=args.algorithm,
        memory_limit_bytes=(
            None if args.memory_limit_mb <= 0 else args.memory_limit_mb << 20
        ),
        in_process=args.in_process,
        log_requests=args.verbose,
        journal_dir=args.journal_dir,
        snapshot_every=max(0, args.snapshot_every),
    )
    server = make_server(args.host, args.port, config)
    # Before the announce line: a SIGTERM racing the startup must
    # already find the drain path installed.
    install_drain_handlers(server)
    recovered = server.recover_instances()
    for failure in server.recovery_failures:
        print(f"journal replay failed: {failure}", file=sys.stderr)
    host, port = server.server_address[:2]
    # The exact line tools/serve_smoke.py greps for the ephemeral port.
    print(f"serving on http://{host}:{port}", flush=True)
    print(
        f"  admission: max_inflight={admission.max_inflight} "
        f"queue_depth={admission.queue_depth} "
        f"deadline_cap={admission.deadline_cap_s}s "
        f"ladder={'->'.join(admission.ladder)}",
        flush=True,
    )
    if recovered:
        print(f"  recovered {len(recovered)} instances from journals",
              flush=True)
    return serve_until_signalled(server, handlers_installed=True)


def _serve_multiworker(args) -> int:
    """Router + N supervised workers; SIGTERM = rolling drain, exit 0."""
    import signal
    import threading

    from .service.router import PlanningRouter, RouterConfig
    from .service.supervisor import Supervisor, SupervisorConfig

    worker_args = [
        "--max-inflight", str(args.max_inflight),
        "--queue-depth", str(args.queue_depth),
        "--deadline-cap", str(args.deadline_cap),
        "--default-deadline", str(args.default_deadline),
        "--max-body-bytes", str(args.max_body_bytes),
        "--algorithm", args.algorithm,
        "--memory-limit-mb", str(args.memory_limit_mb),
        "--snapshot-every", str(max(0, args.snapshot_every)),
    ]
    if args.ladder:
        worker_args += ["--ladder", args.ladder]
    if args.in_process:
        worker_args.append("--in-process")
    if args.verbose:
        worker_args.append("--verbose")
    supervisor = Supervisor(
        SupervisorConfig(
            num_workers=args.workers,
            journal_root=args.journal_dir,
            worker_args=tuple(worker_args),
        )
    )
    supervisor.start()
    router = PlanningRouter(
        (args.host, args.port),
        supervisor,
        RouterConfig(
            proxy_timeout_s=max(120.0, 4 * args.deadline_cap),
            max_body_bytes=args.max_body_bytes,
            log_requests=args.verbose,
        ),
    )
    stop = threading.Event()

    def _handle(_signum, _frame):
        if stop.is_set():
            raise SystemExit(1)
        stop.set()
        # Drain order: router readiness off first (new work answered
        # 503 draining), then workers one at a time, then the router's
        # own accept loop.
        router.drain()
        threading.Thread(target=router.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)
    except ValueError:  # not the main thread (embedded in tests)
        pass
    host, port = router.server_address[:2]
    # Same line the smoke tooling greps; the topology rides behind it.
    print(f"serving on http://{host}:{port}", flush=True)
    print(
        f"  router: {args.workers} workers, journal_root="
        f"{args.journal_dir or '(none: instances are not durable)'}",
        flush=True,
    )
    try:
        router.serve_forever(poll_interval=0.1)
    finally:
        print("draining workers...", file=sys.stderr)
        supervisor.drain_rolling()
        router.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro-usep` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-usep",
        description="Regenerate the figures/tables of the USEP paper (SIGMOD'15).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments").set_defaults(func=_cmd_list)

    def add_run_options(p):
        p.add_argument("--scale", choices=SCALES, default="small")
        p.add_argument(
            "--algorithms",
            help="comma-separated solver names (default: the spec's set)",
        )
        p.add_argument(
            "--no-memory", action="store_true", help="skip tracemalloc measurement"
        )
        p.add_argument(
            "--validate", action="store_true", help="re-verify all USEP constraints"
        )
        p.add_argument(
            "--verify",
            action="store_true",
            help="oracle-check every solver cell with the independent "
            "repro.verify oracle and report per-cell verdicts (adds one "
            "constraint recomputation per cell; default off, intended "
            "for tiny/small scales)",
        )
        p.add_argument("--csv", metavar="DIR", help="also write raw rows as CSV")
        p.add_argument(
            "--chart", action="store_true", help="render ASCII charts of the panels"
        )
        p.add_argument(
            "--seeds",
            type=int,
            default=1,
            help="replicate the sweep over N seeds and report mean/std",
        )
        p.add_argument("--quiet", action="store_true", help="no progress lines")
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="run (point x algorithm) cells over N worker processes",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock deadline per solver attempt; runs each cell "
            "in a supervised subprocess and walks the degradation ladder "
            "on expiry or crash (see docs/robustness.md)",
        )
        p.add_argument(
            "--ladder",
            default=None,
            metavar="SPEC",
            help="degradation ladder, e.g. 'dedpo+rg->degreedy->ratio-greedy' "
            "(also enables the fault-tolerant layer; default ladder: "
            "DeDPO+RG -> DeGreedy -> RatioGreedy)",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="retries per rung for transient solver exceptions "
            "(exponential backoff with full jitter; also enables the "
            "fault-tolerant layer)",
        )
        p.add_argument(
            "--journal",
            metavar="FILE",
            help="checkpoint each completed cell row to this JSONL ledger "
            "as it finishes (run-all derives one file per experiment)",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="replay the --journal ledger and run only missing cells",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="collect the incremental engine's diagnostic counters "
            "(DP states, candidates pruned, schedule-memo and build-cache "
            "hits) into every row and print a per-solver summary "
            "(see docs/performance.md)",
        )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment key (see `list`)")
    add_run_options(run)
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run every experiment")
    add_run_options(run_all)
    run_all.set_defaults(func=_cmd_run_all)

    sub.add_parser(
        "example", help="solve the paper's running example (Examples 1-4)"
    ).set_defaults(func=_cmd_example)

    gen = sub.add_parser("generate", help="generate an instance to a JSON file")
    gen.add_argument("out", help="output JSON path")
    gen.add_argument("--city", help="build a Table 6 city instead of synthetic")
    gen.add_argument("--events", type=int, default=100)
    gen.add_argument("--users", type=int, default=5000)
    gen.add_argument("--capacity", type=float, default=50)
    gen.add_argument("--conflict-ratio", type=float, default=0.25)
    gen.add_argument("--budget-factor", type=float, default=2.0)
    gen.add_argument(
        "--utilities", default="uniform", help="uniform | normal | power:a"
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    solve = sub.add_parser("solve", help="solve a saved instance")
    solve.add_argument("instance", help="instance JSON path")
    solve.add_argument("--algorithm", default="DeDPO+RG")
    solve.add_argument("--out", help="write the planning to this JSON path")
    solve.add_argument("--no-memory", action="store_true")
    solve.add_argument(
        "--report", action="store_true", help="print planning diagnostics"
    )
    solve.add_argument(
        "--profile",
        metavar="FILE",
        help="dump cProfile stats of the solver run to FILE "
        "(inspect with `python -m pstats FILE`)",
    )
    solve.add_argument(
        "--partition",
        choices=["grid"],
        default=None,
        help="cut the instance into spatial grid cells and solve "
        "cell-by-cell, reconciling at the boundaries — near-monolithic "
        "utility, not byte-identical (docs/partitioning.md); a refused "
        "cut or oracle-failed merge falls back to a monolithic solve",
    )
    solve.add_argument(
        "--cells",
        type=int,
        default=4,
        metavar="N",
        help="target grid cell count with --partition grid (default 4)",
    )
    solve.set_defaults(func=_cmd_solve)

    mutate = sub.add_parser(
        "mutate",
        help="replay a JSONL churn trace against a saved instance with "
        "incremental re-solves (see docs/dynamic.md)",
    )
    mutate.add_argument("instance", help="instance JSON path")
    mutate.add_argument(
        "--churn-trace",
        required=True,
        metavar="FILE",
        help="JSONL mutation stream (one op-tagged mutation per line)",
    )
    mutate.add_argument("--algorithm", default="DeDPO")
    mutate.add_argument(
        "--solve-every",
        type=int,
        default=0,
        metavar="N",
        help="delta re-solve every N mutations (0 = only at the end)",
    )
    mutate.add_argument(
        "--compare-cold",
        action="store_true",
        help="bit-compare the final delta planning against a cold solve "
        "of the mutated content (exit 1 on mismatch)",
    )
    mutate.add_argument(
        "--out", help="write the mutated instance to this JSON path"
    )
    mutate.set_defaults(func=_cmd_mutate)

    serve = sub.add_parser(
        "serve",
        help="run the online planning daemon (JSON-over-HTTP; "
        "see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        metavar="N",
        help="concurrent solves (each may fork one supervised child)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="requests allowed to wait for a solve slot; beyond this "
        "new requests are shed with 503",
    )
    serve.add_argument(
        "--deadline-cap",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="server-side clamp on per-request deadline_s",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="deadline applied when the request sends none",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="RPS",
        help="token-bucket refill rate in requests/second (0 = no limit)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=0.0,
        metavar="N",
        help="token-bucket capacity (0 = rate limiting disabled)",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 << 20,
        metavar="BYTES",
        help="largest acceptable /solve body (413 above)",
    )
    serve.add_argument(
        "--ladder",
        default=None,
        metavar="SPEC",
        help="degradation ladder used under queue pressure and rung "
        "failure (default: DeDPO+RG -> DeGreedy -> RatioGreedy)",
    )
    serve.add_argument(
        "--algorithm",
        default="DeDPO+RG",
        help="solver used when a request names none",
    )
    serve.add_argument(
        "--memory-limit-mb",
        type=int,
        default=2048,
        metavar="MB",
        help="address-space rlimit per forked solver child "
        "(0 disables the guard)",
    )
    serve.add_argument(
        "--in-process",
        action="store_true",
        help="solve inline instead of forking (weaker containment; "
        "the fork-less platform fallback)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run a front-end router plus N supervised worker "
        "processes (0 = single-process daemon)",
    )
    serve.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="journal registered instances + mutations under DIR so a "
        "restarted server (or crashed worker) replays them and resumes "
        "the same instance ids (see docs/serving.md)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="N",
        help="compact each instance journal to a snapshot record after "
        "N applied mutation batches, bounding crash-recovery replay "
        "(0 disables the cadence; POST /compact still works)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
