"""repro — reproduction of "Utility-Aware Social Event-Participant Planning".

This package implements the USEP problem (She, Tong, Chen; SIGMOD 2015)
end to end: the problem model (:mod:`repro.core`), the paper's six
planning algorithms plus an exact oracle (:mod:`repro.algorithms`), the
synthetic workload generator of Table 7 (:mod:`repro.datagen`), a
simulated Meetup-style EBSN standing in for the paper's real datasets
(:mod:`repro.ebsn`), and the experiment harness regenerating every
figure and table of the evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import SyntheticConfig, generate_instance, make_solver

    instance = generate_instance(SyntheticConfig(num_events=50, num_users=200, seed=7))
    result = make_solver("DeDPO+RG").run(instance, validate=True)
    print(result.utility, result.planning.as_dict())
"""

from .algorithms import (
    PAPER_ALGORITHMS,
    SCALABLE_ALGORITHMS,
    DeDP,
    DeDPO,
    DeDPOPlusRG,
    DeGreedy,
    DeGreedyPlusRG,
    ExactSolver,
    RatioGreedy,
    Solver,
    SolverResult,
    available_solvers,
    make_solver,
)
from .core import (
    Event,
    GridCostModel,
    MatrixCostModel,
    Planning,
    Schedule,
    TimeInterval,
    USEPInstance,
    User,
    validate_planning,
)
from .datagen import SyntheticConfig, generate_instance
from .ebsn import CITY_PRESETS, CityConfig, build_city_instance

__all__ = [
    "CITY_PRESETS",
    "CityConfig",
    "DeDP",
    "DeDPO",
    "DeDPOPlusRG",
    "DeGreedy",
    "DeGreedyPlusRG",
    "Event",
    "ExactSolver",
    "GridCostModel",
    "MatrixCostModel",
    "PAPER_ALGORITHMS",
    "Planning",
    "RatioGreedy",
    "SCALABLE_ALGORITHMS",
    "Schedule",
    "Solver",
    "SolverResult",
    "SyntheticConfig",
    "TimeInterval",
    "USEPInstance",
    "User",
    "available_solvers",
    "build_city_instance",
    "generate_instance",
    "make_solver",
    "validate_planning",
]

__version__ = "1.0.0"
