"""Rendering sweep results as the paper's rows/series and as CSV."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

from .harness import SweepResult

#: The three panels every paper figure column shows.
PANEL_METRICS = (
    ("utility", "Total utility score"),
    ("time_s", "Running time (s)"),
    ("peak_mem_kb", "Peak solver memory (KB)"),
)


def format_table(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Plain ASCII table of arbitrary result rows."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(r.get(col, ""))) for r in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    divider = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(str(r.get(col, "")).ljust(widths[col]) for col in columns)
        for r in rows
    ]
    return "\n".join([header, divider, *body])


def format_panels(result: SweepResult, title: str = "") -> str:
    """Render a sweep as the paper's three per-figure panels.

    One block per metric; rows are algorithms, columns the axis values —
    the same series a reader would trace off the paper's plots.
    """
    axis_values = result.axis_values()
    blocks: List[str] = []
    if title:
        blocks.append(title)
    for metric, heading in PANEL_METRICS:
        series = result.series(metric)
        if all(all(v is None for v in vals) for vals in series.values()):
            continue  # metric not measured in this run
        rows = []
        for solver, values in series.items():
            row: Dict[str, object] = {"algorithm": solver}
            for axis_value, value in zip(axis_values, values):
                row[f"{result.axis}={axis_value}"] = _fmt(value)
            rows.append(row)
        blocks.append(f"\n== {heading} ==")
        blocks.append(format_table(rows))
    return "\n".join(blocks)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise result rows to CSV (union of all keys, stable order)."""
    if not rows:
        return ""
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()
