"""Experiment harness: sweeps, figure specs and reporting."""

from .figures import (
    ALL_SPECS,
    BASE_CONFIGS,
    SCALES,
    ExperimentSpec,
    get_spec,
    list_specs,
)
from .harness import SweepPoint, SweepResult, run_sweep
from .reporting import format_panels, format_table, rows_to_csv

__all__ = [
    "ALL_SPECS",
    "BASE_CONFIGS",
    "ExperimentSpec",
    "SCALES",
    "SweepPoint",
    "SweepResult",
    "format_panels",
    "format_table",
    "get_spec",
    "list_specs",
    "rows_to_csv",
    "run_sweep",
]
