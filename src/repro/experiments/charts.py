"""Terminal line charts for sweep series (matplotlib-free).

The paper's figures are multi-series line plots (one line per
algorithm, often log-scale time axes).  This module renders the same
series as compact ASCII charts so `repro-usep run ... --chart` shows
the *shape* — orderings, trends, crossovers — directly in a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .harness import SweepResult

#: Plot glyphs assigned to algorithms in series order.
_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, height: int, log: bool) -> int:
    """Map a value to a row index (0 = bottom)."""
    if log:
        value, lo, hi = (math.log10(max(v, 1e-12)) for v in (value, lo, hi))
    if hi - lo < 1e-12:
        return height // 2
    frac = (value - lo) / (hi - lo)
    return min(height - 1, max(0, int(round(frac * (height - 1)))))


def render_chart(
    series: Dict[str, List[Optional[float]]],
    axis_values: Sequence,
    title: str = "",
    height: int = 12,
    log_y: bool = False,
) -> str:
    """Render multi-series data as an ASCII chart.

    Args:
        series: ``{name: [value per axis point]}`` (None = missing).
        axis_values: X-axis labels, one per column position.
        title: Optional heading line.
        height: Chart height in rows.
        log_y: Log-scale the y axis (the paper's time/memory panels).
    """
    values = [
        v for vals in series.values() for v in vals if v is not None
    ]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if log_y:
        lo = max(lo, 1e-12)
    num_cols = len(axis_values)
    col_width = max(8, max(len(str(a)) for a in axis_values) + 2)
    width = num_cols * col_width

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, vals) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        previous = None
        for col, value in enumerate(vals[:num_cols]):
            if value is None:
                previous = None
                continue
            row = _scale(value, lo, hi, height, log_y)
            x = col * col_width + col_width // 2
            current = (x, row)
            if previous is not None:
                _draw_segment(grid, previous, current)
            previous = current
        # marks go last so they sit on top of connecting lines
        for col, value in enumerate(vals[:num_cols]):
            if value is None:
                continue
            row = _scale(value, lo, hi, height, log_y)
            x = col * col_width + col_width // 2
            grid[row][x] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = f"{hi:.3g}" + (" (log)" if log_y else "")
    y_bot = f"{lo:.3g}"
    label_width = max(len(y_top), len(y_bot))
    for r in range(height - 1, -1, -1):
        label = y_top if r == height - 1 else (y_bot if r == 0 else "")
        lines.append(f"{label.rjust(label_width)} |" + "".join(grid[r]))
    lines.append(" " * label_width + " +" + "-" * width)
    x_labels = "".join(str(a).center(col_width) for a in axis_values)
    lines.append(" " * label_width + "  " + x_labels)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def _draw_segment(grid, start, end) -> None:
    """Draw a crude line segment between two (x, row) points."""
    (x0, y0), (x1, y1) = start, end
    steps = max(abs(x1 - x0), abs(y1 - y0), 1)
    for step in range(1, steps):
        x = x0 + (x1 - x0) * step // steps
        y = y0 + (y1 - y0) * step // steps
        if grid[y][x] == " ":
            grid[y][x] = "." if y0 == y1 else ("/" if y1 > y0 else "\\")


def render_result_charts(result: SweepResult, height: int = 12) -> str:
    """All three paper panels of a sweep as ASCII charts."""
    blocks = []
    panels = [
        ("utility", "Total utility score", False),
        ("time_s", "Running time (s, log scale)", True),
        ("peak_mem_kb", "Peak solver memory (KB, log scale)", True),
    ]
    axis_values = result.axis_values()
    for metric, title, log_y in panels:
        series = result.series(metric)
        if all(all(v is None for v in vals) for vals in series.values()):
            continue
        blocks.append(
            render_chart(series, axis_values, title=f"\n{title}", height=height,
                         log_y=log_y)
        )
    return "\n".join(blocks)
