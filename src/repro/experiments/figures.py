"""Declarative specs for every figure and table of the paper's evaluation.

Each :class:`ExperimentSpec` names the swept parameter, the sweep values
at each scale, and how to build the instance at a sweep point.  Three
scales are provided:

* ``tiny`` — seconds-long sanity runs (CI / pytest-benchmark defaults);
* ``small`` — the default: the paper's trends at laptop-in-Python scale;
* ``paper`` — the original Table 7 grid, exactly as the paper ran it
  in C++.  Feasible in pure Python for most panels (fig2-u completes in
  minutes; see results/paper_fig2u.txt) — the expensive parts are
  RatioGreedy at large |U| and the Figure 4 grids up to |U| = 100K.

The experiment ids match DESIGN.md's experiment index (EX-F2V etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms.registry import PAPER_ALGORITHMS, SCALABLE_ALGORITHMS
from ..core.instance import USEPInstance
from ..datagen.synthetic import SyntheticConfig, generate_instance
from ..ebsn.cities import build_city_instance
from .harness import SweepPoint

SCALES = ("tiny", "small", "paper")

#: Baseline synthetic config per scale (Table 7 defaults at ``paper``).
BASE_CONFIGS: Dict[str, SyntheticConfig] = {
    "tiny": SyntheticConfig(
        num_events=16, num_users=60, mean_capacity=5, grid_size=40, seed=42
    ),
    "small": SyntheticConfig(
        num_events=40, num_users=300, mean_capacity=12, grid_size=60, seed=42
    ),
    "paper": SyntheticConfig(seed=42),  # Table 7 bold defaults
}

#: Per-scale sweep values, keyed by (experiment key, scale).
_SWEEPS: Dict[str, Dict[str, Sequence]] = {
    "num_events": {
        "tiny": [8, 16, 32],
        "small": [10, 20, 40, 80, 160],
        "paper": [20, 50, 100, 200, 500],
    },
    "num_users": {
        "tiny": [30, 60, 120],
        "small": [75, 150, 300, 600, 1200],
        "paper": [100, 200, 500, 1000, 5000],
    },
    "mean_capacity": {
        "tiny": [3, 5, 10],
        "small": [3, 6, 12, 24, 48],
        "paper": [10, 20, 50, 100, 200],
    },
    "conflict_ratio": {
        "tiny": [0.0, 0.5, 1.0],
        "small": [0.0, 0.25, 0.5, 0.75, 1.0],
        "paper": [0.0, 0.25, 0.5, 0.75, 1.0],
    },
    "budget_factor": {
        "tiny": [0.5, 2.0, 10.0],
        "small": [0.5, 1.0, 2.0, 5.0, 10.0],
        "paper": [0.5, 1.0, 2.0, 5.0, 10.0],
    },
    "scalability_users": {
        "tiny": [100, 200],
        "small": [400, 800, 1600, 3200],
        "paper": [10_000, 20_000, 30_000, 40_000, 50_000, 100_000],
    },
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible panel (figure column or spot check)."""

    key: str
    experiment_id: str
    paper_artifact: str
    axis: str
    description: str
    build: Callable[[str, object], USEPInstance]
    sweep: Callable[[str], Sequence]
    algorithms: Sequence[str] = field(default_factory=lambda: list(PAPER_ALGORITHMS))

    def points(self, scale: str, seed: Optional[int] = None) -> List[SweepPoint]:
        """Sweep points at the given scale (instances built lazily).

        Args:
            scale: ``tiny`` / ``small`` / ``paper``.
            seed: Optional seed override — used by replicated runs to
                draw fresh instances per replication while keeping the
                sweep's pairing structure.
        """
        if scale not in SCALES:
            raise KeyError(f"unknown scale {scale!r}; expected one of {SCALES}")
        return [
            SweepPoint(axis_value=value, build=_bind(self.build, scale, value, seed))
            for value in self.sweep(scale)
        ]


def _bind(build, scale, value, seed):
    return lambda: build(scale, value, seed)


def _synthetic_sweep(param: str, **extra_overrides):
    """Builder varying one SyntheticConfig field, others at scale default."""

    def build(scale: str, value, seed=None) -> USEPInstance:
        config = BASE_CONFIGS[scale].with_overrides(**{param: value}, **extra_overrides)
        if seed is not None:
            config = config.with_overrides(seed=seed)
        return generate_instance(config)

    return build


def _values(param: str):
    return lambda scale: _SWEEPS[param][scale]


def _scalability_build(num_events_by_scale: Dict[str, int]):
    """Figure 4 scalability columns: fixed |V|, large capacity, sweep |U|."""

    def build(scale: str, num_users, seed=None) -> USEPInstance:
        base = BASE_CONFIGS[scale]
        config = base.with_overrides(
            num_events=num_events_by_scale[scale],
            num_users=num_users,
            # the paper sets mean capacity to 200 for the scalability runs
            mean_capacity={"tiny": 10, "small": 30, "paper": 200}[scale],
            cache_user_costs=False,
        )
        if seed is not None:
            config = config.with_overrides(seed=seed)
        return generate_instance(config)

    return build


def _real_dataset_build(scale: str, budget_factor, seed=None) -> USEPInstance:
    city = {"tiny": "auckland", "small": "singapore", "paper": "singapore"}[scale]
    return build_city_instance(city, budget_factor=budget_factor, seed=seed)


def _spot_check_build(scale: str, _value, seed=None) -> USEPInstance:
    """The Section 5.2 special test case, scaled down per scale."""
    # seat supply tracks the paper's ratio: |V| * c_v ~ 1.25 * |U|
    dims = {
        "tiny": dict(num_events=20, num_users=200, mean_capacity=12),
        "small": dict(num_events=100, num_users=2000, mean_capacity=25),
        "paper": dict(num_events=500, num_users=200_000, mean_capacity=500),
    }[scale]
    config = BASE_CONFIGS[scale].with_overrides(cache_user_costs=False, **dims)
    if seed is not None:
        config = config.with_overrides(seed=seed)
    return generate_instance(config)


ALL_SPECS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> ExperimentSpec:
    ALL_SPECS[spec.key] = spec
    return spec


FIG2_V = _register(
    ExperimentSpec(
        key="fig2-v",
        experiment_id="EX-F2V",
        paper_artifact="Figure 2, column 1 (2a/2e/2i)",
        axis="num_events",
        description="Utility / time / memory as |V| varies.",
        build=_synthetic_sweep("num_events"),
        sweep=_values("num_events"),
    )
)

FIG2_U = _register(
    ExperimentSpec(
        key="fig2-u",
        experiment_id="EX-F2U",
        paper_artifact="Figure 2, column 2 (2b/2f/2j)",
        axis="num_users",
        description="Utility / time / memory as |U| varies.",
        build=_synthetic_sweep("num_users"),
        sweep=_values("num_users"),
    )
)

FIG2_CV = _register(
    ExperimentSpec(
        key="fig2-cv",
        experiment_id="EX-F2C",
        paper_artifact="Figure 2, column 3 (2c/2g/2k)",
        axis="mean_capacity",
        description="Utility / time / memory as mean c_v varies (Uniform).",
        build=_synthetic_sweep("mean_capacity"),
        sweep=_values("mean_capacity"),
    )
)

FIG2_CR = _register(
    ExperimentSpec(
        key="fig2-cr",
        experiment_id="EX-F2R",
        paper_artifact="Figure 2, column 4 (2d/2h/2l)",
        axis="conflict_ratio",
        description="Utility / time / memory as the conflict ratio varies.",
        build=_synthetic_sweep("conflict_ratio"),
        sweep=_values("conflict_ratio"),
    )
)

FIG3_FB = _register(
    ExperimentSpec(
        key="fig3-fb",
        experiment_id="EX-F3B",
        paper_artifact="Figure 3, column 1",
        axis="budget_factor",
        description="Utility / time / memory as the budget factor f_b varies.",
        build=_synthetic_sweep("budget_factor"),
        sweep=_values("budget_factor"),
    )
)

FIG3_POWER = _register(
    ExperimentSpec(
        key="fig3-power",
        experiment_id="EX-F3P",
        paper_artifact="Figure 3, column 2",
        axis="budget_factor",
        description="f_b sweep with Power(0.5)-distributed utilities.",
        build=_synthetic_sweep("budget_factor", utility_distribution="power:0.5"),
        sweep=_values("budget_factor"),
    )
)

FIG3_CV_NORMAL = _register(
    ExperimentSpec(
        key="fig3-cv-normal",
        experiment_id="EX-F3C",
        paper_artifact="Figure 3, column 3",
        axis="mean_capacity",
        description="Capacity sweep with Normal-distributed capacities.",
        build=_synthetic_sweep("mean_capacity", capacity_distribution="normal"),
        sweep=_values("mean_capacity"),
    )
)

FIG3_BU_NORMAL = _register(
    ExperimentSpec(
        key="fig3-bu-normal",
        experiment_id="EX-F3N",
        paper_artifact="Figure 3, column 4",
        axis="budget_factor",
        description="f_b sweep with Normal-distributed budgets.",
        build=_synthetic_sweep("budget_factor", budget_distribution="normal"),
        sweep=_values("budget_factor"),
    )
)

FIG4_V100 = _register(
    ExperimentSpec(
        key="fig4-v100",
        experiment_id="EX-F4S1",
        paper_artifact="Figure 4, column 1",
        axis="num_users",
        description="Scalability, smallest |V| (paper: |V|=100, c=200).",
        build=_scalability_build({"tiny": 10, "small": 40, "paper": 100}),
        sweep=_values("scalability_users"),
        algorithms=list(SCALABLE_ALGORITHMS),
    )
)

FIG4_V200 = _register(
    ExperimentSpec(
        key="fig4-v200",
        experiment_id="EX-F4S2",
        paper_artifact="Figure 4, column 2",
        axis="num_users",
        description="Scalability, middle |V| (paper: |V|=200, c=200).",
        build=_scalability_build({"tiny": 16, "small": 80, "paper": 200}),
        sweep=_values("scalability_users"),
        algorithms=list(SCALABLE_ALGORITHMS),
    )
)

FIG4_V500 = _register(
    ExperimentSpec(
        key="fig4-v500",
        experiment_id="EX-F4S3",
        paper_artifact="Figure 4, column 3",
        axis="num_users",
        description="Scalability, largest |V| (paper: |V|=500, c=200).",
        build=_scalability_build({"tiny": 24, "small": 120, "paper": 500}),
        sweep=_values("scalability_users"),
        algorithms=list(SCALABLE_ALGORITHMS),
    )
)

FIG4_REAL = _register(
    ExperimentSpec(
        key="fig4-real",
        experiment_id="EX-F4R",
        paper_artifact="Figure 4, column 4",
        axis="budget_factor",
        description="Real (simulated EBSN) dataset, f_b sweep (Singapore).",
        build=_real_dataset_build,
        sweep=_values("budget_factor"),
    )
)

FIG4_SPOT = _register(
    ExperimentSpec(
        key="fig4-spot",
        experiment_id="EX-SPOT",
        paper_artifact="Section 5.2 special test case",
        axis="spot",
        description=(
            "Single large point: DeGreedy's utility is close to DeDPO's at a "
            "fraction of its running time (paper: |V|=500, |U|=200K, c=500)."
        ),
        build=_spot_check_build,
        sweep=lambda scale: ["spot"],
        algorithms=["DeDPO", "DeGreedy"],
    )
)


def get_spec(key: str) -> ExperimentSpec:
    """Look up a spec by key, with a helpful error."""
    try:
        return ALL_SPECS[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {key!r}; available: {sorted(ALL_SPECS)}"
        ) from None


def list_specs() -> List[ExperimentSpec]:
    """All registered specs in registration (paper) order."""
    return list(ALL_SPECS.values())
