"""Multi-seed aggregation of sweep results.

The paper plots single runs; for a reproduction it is useful to know
how much of an observed gap is seed noise.  :func:`run_replicated`
repeats a sweep under several seeds (re-deriving each point's instance
with the seed injected) and aggregates per (axis value, algorithm) into
mean / std / min / max rows.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..datagen.synthetic import SyntheticConfig, generate_instance
from .harness import SweepPoint, SweepResult, run_sweep


@dataclass
class AggregateResult:
    """Aggregated metrics over replicated sweeps."""

    axis: str
    seeds: List[int]
    #: {(axis_value, solver): {metric: [per-seed values]}}
    samples: Dict[Tuple[object, str], Dict[str, List[float]]] = field(
        default_factory=dict
    )

    def record(self, result: SweepResult) -> None:
        """Fold one seed's sweep rows in."""
        for row in result.rows:
            key = (row["axis_value"], str(row["solver"]))
            bucket = self.samples.setdefault(key, {})
            for metric in ("utility", "time_s", "peak_mem_kb"):
                value = row.get(metric)
                if value is not None:
                    bucket.setdefault(metric, []).append(float(value))

    def rows(self, metric: str = "utility") -> List[Dict[str, object]]:
        """Mean/std/min/max rows of one metric, in insertion order."""
        out: List[Dict[str, object]] = []
        for (axis_value, solver), bucket in self.samples.items():
            values = bucket.get(metric, [])
            if not values:
                continue
            out.append(
                {
                    "axis_value": axis_value,
                    "solver": solver,
                    "n": len(values),
                    "mean": round(statistics.fmean(values), 4),
                    "std": round(
                        statistics.stdev(values) if len(values) > 1 else 0.0, 4
                    ),
                    "min": round(min(values), 4),
                    "max": round(max(values), 4),
                }
            )
        return out

    def mean_series(self, metric: str = "utility") -> Dict[str, List[float]]:
        """Per-solver mean series in axis order (for charts)."""
        order: List[object] = []
        for axis_value, _ in self.samples:
            if axis_value not in order:
                order.append(axis_value)
        series: Dict[str, List[float]] = {}
        for (axis_value, solver), bucket in self.samples.items():
            values = bucket.get(metric, [])
            series.setdefault(solver, [math.nan] * len(order))
            if values:
                series[solver][order.index(axis_value)] = statistics.fmean(values)
        return series


def replicate_synthetic_points(
    base: SyntheticConfig, axis: str, values: Sequence, seed: int
) -> List[SweepPoint]:
    """Sweep one SyntheticConfig field at a fixed seed."""
    points = []
    for value in values:
        config = base.with_overrides(**{axis: value, "seed": seed})
        points.append(
            SweepPoint(axis_value=value, build=_binder(config))
        )
    return points


def _binder(config: SyntheticConfig) -> Callable:
    return lambda: generate_instance(config)


def run_replicated(
    base: SyntheticConfig,
    axis: str,
    values: Sequence,
    algorithms: Iterable[str],
    seeds: Sequence[int],
    measure_memory: bool = False,
) -> AggregateResult:
    """Run an axis sweep once per seed and aggregate.

    Args:
        base: Baseline synthetic configuration.
        axis: Name of the SyntheticConfig field to sweep.
        values: Sweep values.
        algorithms: Solver registry names.
        seeds: One replicated run per seed.
        measure_memory: Forwarded to the underlying sweeps.
    """
    aggregate = AggregateResult(axis=axis, seeds=list(seeds))
    algorithms = list(algorithms)
    for seed in seeds:
        points = replicate_synthetic_points(base, axis, values, seed)
        result = run_sweep(
            axis, points, algorithms, measure_memory=measure_memory
        )
        aggregate.record(result)
    return aggregate
