"""Sweep runner: instances x algorithms -> result rows.

The harness materialises each sweep point's instance lazily (one at a
time — scalability sweeps would not fit in memory otherwise), runs the
requested solvers through :meth:`Solver.run`, and emits flat dict rows
that the reporting module renders as the paper's per-panel series.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..algorithms.registry import make_solver
from ..core.instance import USEPInstance


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a figure panel.

    Attributes:
        axis_value: The swept parameter's value (plotted on the x axis).
        build: Zero-argument factory producing the instance; called once
            and the instance is shared by all algorithms at this point,
            then released.
        label: Optional display label (defaults to ``axis_value``).
    """

    axis_value: object
    build: Callable[[], USEPInstance]
    label: Optional[str] = None

    @property
    def display(self) -> str:
        """Label shown in progress lines and panel headers."""
        return self.label if self.label is not None else str(self.axis_value)


@dataclass
class SweepResult:
    """All rows of one sweep plus bookkeeping."""

    axis: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def series(self, metric: str) -> Dict[str, List[object]]:
        """Per-algorithm series of one metric, in axis order.

        Returns ``{algorithm: [value per axis point]}`` — exactly one
        line of the paper's plots.
        """
        out: Dict[str, List[object]] = {}
        for row in self.rows:
            out.setdefault(str(row["solver"]), []).append(row.get(metric))
        return out

    def axis_values(self) -> List[object]:
        """Distinct axis values in first-seen order."""
        seen: List[object] = []
        for row in self.rows:
            if row["axis_value"] not in seen:
                seen.append(row["axis_value"])
        return seen


def run_sweep(
    axis: str,
    points: Sequence[SweepPoint],
    algorithms: Iterable[str],
    measure_memory: bool = True,
    validate: bool = False,
    progress: bool = False,
    progress_stream=None,
) -> SweepResult:
    """Run every algorithm at every sweep point.

    Args:
        axis: Name of the swept parameter (for reporting).
        points: The sweep points, in x-axis order.
        algorithms: Registry names to run.
        measure_memory: Track each solver's peak allocations.
        validate: Re-check all USEP constraints on every planning.
        progress: Emit one line per (point, algorithm) to
            ``progress_stream`` (default stderr).
    """
    algorithms = list(algorithms)
    stream = progress_stream if progress_stream is not None else sys.stderr
    result = SweepResult(axis=axis)
    for point in points:
        build_start = time.perf_counter()
        instance = point.build()
        build_time = time.perf_counter() - build_start
        for name in algorithms:
            solver = make_solver(name)
            run = solver.run(instance, measure_memory=measure_memory, validate=validate)
            row: Dict[str, object] = {
                "axis": axis,
                "axis_value": point.axis_value,
                "instance": instance.name or point.display,
                "num_events": instance.num_events,
                "num_users": instance.num_users,
                "build_time_s": round(build_time, 4),
            }
            row.update(run.summary_row())
            result.rows.append(row)
            if progress:
                mem = (
                    f" mem={row.get('peak_mem_kb', '-')}KB"
                    if measure_memory
                    else ""
                )
                print(
                    f"[{axis}={point.display}] {name}: utility="
                    f"{run.utility:.2f} time={run.wall_time_s:.3f}s{mem}",
                    file=stream,
                    flush=True,
                )
        del instance  # release before building the next point
    return result
