"""Sweep runner: instances x algorithms -> result rows.

The harness materialises each sweep point's instance lazily (one at a
time — scalability sweeps would not fit in memory otherwise), runs the
requested solvers through :meth:`Solver.run`, and emits flat dict rows
that the reporting module renders as the paper's per-panel series.

With ``jobs > 1`` the (point x algorithm) grid fans out over a
``multiprocessing`` fork pool: every cell runs in its own process, so
``tracemalloc`` peaks stay attributable to a single solver, and each
worker rebuilds its point's instance from the spec (instance generation
is seeded, so rebuilds are deterministic).  Rows come back through
``imap`` in task order, which is exactly the sequential nesting (points
outer, algorithms inner) — parallel and sequential sweeps produce the
same rows in the same order, timing fields aside.  ``SweepPoint.build``
closures are generally not picklable, so the task payload is a pair of
indices and the worker resolves them against module state inherited
through the fork; platforms without the fork start method fall back to
the sequential path (with a one-line stderr warning, and the actual
parallelism recorded as ``jobs_effective`` in every row).

Failure semantics: unknown algorithm names fail fast (before any cell
runs), but a cell whose *solve* raises no longer aborts the sweep —
the exception is downgraded to a structured ``status="error"`` row
carrying the traceback, identically on the sequential and parallel
paths, so one broken cell cannot discard its neighbours' finished
work.

Two optional layers harden long sweeps further (see
``docs/robustness.md``):

* ``journal=``/``resume=`` — checkpoint each completed cell row to a
  JSONL ledger as it finishes; a killed sweep resumes by replaying the
  journal and running only the missing cells.
* ``service=`` (or the ``timeout``/``ladder``/``max_retries``
  shortcuts) — run every cell through the fault-tolerant
  :class:`~repro.service.runner.ResilientRunner`: supervised
  subprocess with a wall-clock deadline, retry with backoff for
  transient faults, a per-algorithm circuit breaker, and a degradation
  ladder whose accepted plans must pass the independent
  :mod:`repro.verify` oracle.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.registry import available_solvers, make_solver
from ..core import build_cache
from ..core.instance import USEPInstance
from ..service.checkpoint import SweepJournal
from ..service.ladder import parse_ladder
from ..service.runner import ResilientRunner, ServiceConfig
from ..verify.oracle import verify_planning


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a figure panel.

    Attributes:
        axis_value: The swept parameter's value (plotted on the x axis).
        build: Zero-argument factory producing the instance; called once
            and the instance is shared by all algorithms at this point,
            then released.
        label: Optional display label (defaults to ``axis_value``).
    """

    axis_value: object
    build: Callable[[], USEPInstance]
    label: Optional[str] = None

    @property
    def display(self) -> str:
        """Label shown in progress lines and panel headers."""
        return self.label if self.label is not None else str(self.axis_value)


@dataclass
class SweepResult:
    """All rows of one sweep plus bookkeeping."""

    axis: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def series(self, metric: str) -> Dict[str, List[object]]:
        """Per-algorithm series of one metric, in axis order.

        Returns ``{algorithm: [value per axis point]}`` — exactly one
        line of the paper's plots.
        """
        out: Dict[str, List[object]] = {}
        for row in self.rows:
            out.setdefault(str(row["solver"]), []).append(row.get(metric))
        return out

    def axis_values(self) -> List[object]:
        """Distinct axis values in first-seen order."""
        seen: List[object] = []
        for row in self.rows:
            if row["axis_value"] not in seen:
                seen.append(row["axis_value"])
        return seen


def _base_row(
    axis: str, point: SweepPoint, instance: Optional[USEPInstance], build_time: float
) -> Dict[str, object]:
    """The per-cell fields known before any solver runs."""
    row: Dict[str, object] = {
        "axis": axis,
        "axis_value": point.axis_value,
        "instance": (instance.name if instance is not None else None)
        or point.display,
        "build_time_s": round(build_time, 4),
    }
    if instance is not None:
        row["num_events"] = instance.num_events
        row["num_users"] = instance.num_users
    return row


def _cell_row(
    axis: str,
    point: SweepPoint,
    point_index: int,
    instance: USEPInstance,
    build_time: float,
    name: str,
    measure_memory: bool,
    validate: bool,
    verify: bool = False,
    runner: Optional[ResilientRunner] = None,
    profile: bool = False,
) -> Dict[str, object]:
    """Run one (point, algorithm) cell and build its result row.

    Exceptions out of the solver are downgraded to ``status="error"``
    rows with the traceback; only programming errors in the harness
    itself can escape.
    """
    row = _base_row(axis, point, instance, build_time)
    if runner is not None:
        row.update(
            runner.run_cell(
                instance,
                name,
                point_index,
                measure_memory=measure_memory,
                profile=profile,
            )
        )
        return row
    try:
        solver = make_solver(name)
        run = solver.run(
            instance,
            measure_memory=measure_memory,
            validate=validate,
            profile=profile,
        )
    except Exception:
        row.update(
            {"solver": name, "status": "error", "utility": None,
             "error": traceback.format_exc()}
        )
        return row
    row.update(run.summary_row())
    row["status"] = "ok"
    if verify:
        report = verify_planning(instance, run.planning)
        row["verified"] = report.ok
        row["oracle_violations"] = len(report.violations)
        if not report.ok:
            row["oracle_summary"] = report.summary()
    return row


def _error_rows_for_point(
    axis: str,
    point: SweepPoint,
    algorithms: Sequence[str],
    build_time: float,
    error: str,
) -> List[Dict[str, object]]:
    """One ``status="error"`` row per algorithm when the build fails."""
    rows = []
    for name in algorithms:
        row = _base_row(axis, point, None, build_time)
        row.update(
            {"solver": name, "status": "error", "utility": None, "error": error}
        )
        rows.append(row)
    return rows


def _emit_progress(row: Dict[str, object], point: SweepPoint, measure_memory, stream):
    """One progress line per cell, identical for both execution paths."""
    status = row.get("status", "ok")
    if status in ("error", "skipped"):
        reason = str(row.get("error", "")).strip().splitlines()
        print(
            f"[{row['axis']}={point.display}] {row['solver']}: {status.upper()}"
            f"{' — ' + reason[-1] if reason else ''}",
            file=stream,
            flush=True,
        )
        return
    mem = f" mem={row.get('peak_mem_kb', '-')}KB" if measure_memory else ""
    degraded = (
        f" degraded->{row['degraded_to']}" if row.get("degraded_to") else ""
    )
    print(
        f"[{row['axis']}={point.display}] {row['solver']}: utility="
        f"{float(row['utility']):.2f} time={float(row['time_s']):.3f}s"
        f"{mem}{degraded}",
        file=stream,
        flush=True,
    )


#: Sweep parameters a fork-pool worker resolves its (point, algorithm)
#: indices against.  SweepPoint.build closures are not picklable in
#: general, so they travel to the workers via fork inheritance of this
#: module global, never through the task queue.
_PARALLEL_STATE: Dict[str, object] = {}


def _run_parallel_cell(task: Tuple[int, int]) -> Dict[str, object]:
    """Worker: build the point's instance and run one algorithm on it.

    Every cell rebuilds its instance from the (seeded, deterministic)
    spec so the process holds exactly one instance and its tracemalloc
    peak is attributable to the one solver it runs.  Any exception —
    including a failing ``build`` — comes back as a structured error
    row, never as a sweep-fatal worker crash.
    """
    point_idx, algo_idx = task
    state = _PARALLEL_STATE
    point: SweepPoint = state["points"][point_idx]
    name: str = state["algorithms"][algo_idx]
    profile = bool(state.get("profile", False))
    build_start = time.perf_counter()
    try:
        instance = point.build()
        # Cross-cell build cache: cells of the same point land in the
        # same worker with the same fingerprint, so later algorithms
        # adopt the first build's warm arrays / candidate index / memo
        # instead of re-deriving them (see docs/performance.md).
        instance, cache_hit = build_cache.get_or_register(instance)
    except Exception:
        return _error_rows_for_point(
            state["axis"],
            point,
            [name],
            time.perf_counter() - build_start,
            traceback.format_exc(),
        )[0]
    build_time = time.perf_counter() - build_start
    row = _cell_row(
        state["axis"],
        point,
        point_idx,
        instance,
        build_time,
        name,
        state["measure_memory"],
        state["validate"],
        state.get("verify", False),
        runner=state.get("runner"),
        profile=profile,
    )
    if profile:
        # Cache-warmth diagnostics are profile-only: they depend on
        # worker scheduling, so default rows stay byte-identical
        # between the parallel and sequential paths.
        row["build_cache_hit"] = int(cache_hit)
    return row


def _resolve_service(
    service: Optional[ServiceConfig],
    timeout: Optional[float],
    ladder: Optional[object],
    max_retries: Optional[int],
) -> Optional[ServiceConfig]:
    """Combine the explicit config with the shortcut kwargs."""
    if service is None and timeout is None and ladder is None and max_retries is None:
        return None
    config = service if service is not None else ServiceConfig()
    updates: Dict[str, object] = {}
    if timeout is not None:
        updates["timeout"] = timeout
    if ladder is not None:
        rungs = parse_ladder(ladder) if isinstance(ladder, str) else list(ladder)
        updates["ladder"] = tuple(rungs)
    if max_retries is not None:
        updates["max_retries"] = max_retries
    return replace(config, **updates) if updates else config


def run_sweep(
    axis: str,
    points: Sequence[SweepPoint],
    algorithms: Iterable[str],
    measure_memory: bool = True,
    validate: bool = False,
    verify: bool = False,
    progress: bool = False,
    progress_stream=None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    ladder: Optional[object] = None,
    max_retries: Optional[int] = None,
    service: Optional[ServiceConfig] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    profile: bool = False,
) -> SweepResult:
    """Run every algorithm at every sweep point.

    Args:
        axis: Name of the swept parameter (for reporting).
        points: The sweep points, in x-axis order.
        algorithms: Registry names to run (unknown names raise
            ``KeyError`` before any cell runs).
        measure_memory: Track each solver's peak allocations.
        validate: Re-check all USEP constraints on every planning
            (raises on the first violation).
        verify: Oracle-check every solver output with the independent
            :mod:`repro.verify` oracle and record the verdict in the
            row (``verified`` / ``oracle_violations``); unlike
            ``validate`` this never raises, so a sweep reports every
            bad cell.  Off by default — it costs one full constraint
            recomputation per cell, which large-scale sweeps skip.
            (Implied by the fault-tolerant layer, which oracle-gates
            every accepted plan.)
        progress: Emit one line per (point, algorithm) to
            ``progress_stream`` (default stderr).
        jobs: Fan the (point x algorithm) cells out over this many
            worker processes.  ``None``/``0``/``1`` runs sequentially.
            Rows come back in the sequential order regardless; only the
            timing fields can differ between the two paths.  The
            parallelism actually used is recorded as ``jobs_effective``
            in every fresh row; requesting ``jobs > 1`` where the fork
            start method is unavailable warns on stderr and degrades to
            sequential.
        timeout / ladder / max_retries: Shortcuts that enable the
            fault-tolerant execution layer (see ``service``); ``ladder``
            is a spec string (``"dedpo+rg->degreedy"``) or a sequence
            of registry names.
        service: Full :class:`~repro.service.runner.ServiceConfig`;
            when set (or any shortcut is), every cell runs through a
            :class:`~repro.service.runner.ResilientRunner` — supervised
            deadline-bounded subprocess, retry + circuit breaker,
            degradation ladder, independent-oracle acceptance gate.
        journal: Path of a JSONL checkpoint journal; every completed
            cell row is appended (durably) as it finishes.
        resume: Replay an existing journal at ``journal`` and run only
            the cells it is missing; replayed rows are marked
            ``resumed=True`` in the returned result.
        profile: Collect the incremental engine's diagnostic counters
            (memo hits, candidates pruned, build-cache adoption — see
            :mod:`repro.core.instrument`) into every fresh row.  Off by
            default because the counters depend on cache warmth and
            execution path, which would break the parallel/sequential
            row-identity and journal byte-identity guarantees.
    """
    algorithms = list(algorithms)
    known = set(available_solvers())
    for name in algorithms:
        if name not in known:
            raise KeyError(
                f"unknown solver {name!r}; available: {sorted(known)}"
            )
    stream = progress_stream if progress_stream is not None else sys.stderr
    result = SweepResult(axis=axis)
    points = list(points)

    config = _resolve_service(service, timeout, ladder, max_retries)
    runner = ResilientRunner(config) if config is not None else None

    ledger: Optional[SweepJournal] = None
    if journal is not None:
        ledger = SweepJournal.open(
            journal, axis, algorithms, len(points), resume=resume
        )

    parallel_ok = bool(jobs and jobs > 1 and points and algorithms)
    if parallel_ok and not _fork_available():
        print(
            f"warning: jobs={jobs} requested but the 'fork' start method is "
            "unavailable on this platform; running sequentially "
            "(jobs_effective=1)",
            file=stream,
            flush=True,
        )
        parallel_ok = False

    try:
        if parallel_ok:
            _run_parallel(
                result, points, algorithms, axis, measure_memory, validate,
                verify, jobs, runner, ledger, progress, stream, profile,
            )
        else:
            _run_sequential(
                result, points, algorithms, axis, measure_memory, validate,
                verify, runner, ledger, progress, stream, profile,
            )
    finally:
        if ledger is not None:
            ledger.close()
    return result


def _finalise_fresh(
    row: Dict[str, object],
    key: Tuple[int, str],
    jobs_effective: int,
    ledger: Optional[SweepJournal],
) -> Dict[str, object]:
    """Stamp bookkeeping fields on a freshly computed row + journal it."""
    row["jobs_effective"] = jobs_effective
    if ledger is not None:
        row["resumed"] = False
        ledger.record(key, row)
    return row


def _replayed(ledger: SweepJournal, key: Tuple[int, str]) -> Dict[str, object]:
    """A journalled row, marked as replayed-from-checkpoint."""
    row = dict(ledger.row_for(key))
    row["resumed"] = True
    return row


def _run_sequential(
    result, points, algorithms, axis, measure_memory, validate, verify,
    runner, ledger, progress, stream, profile=False,
) -> None:
    for point_idx, point in enumerate(points):
        missing = [
            name
            for name in algorithms
            if ledger is None or not ledger.has((point_idx, name))
        ]
        instance = None
        build_time = 0.0
        build_error: Optional[str] = None
        if missing:  # fully-journalled points skip the (costly) build
            build_start = time.perf_counter()
            try:
                instance = point.build()
            except Exception:
                build_error = traceback.format_exc()
            build_time = time.perf_counter() - build_start
        for name in algorithms:
            key = (point_idx, name)
            if ledger is not None and ledger.has(key):
                row = _replayed(ledger, key)
            elif build_error is not None:
                row = _error_rows_for_point(
                    axis, point, [name], build_time, build_error
                )[0]
                row = _finalise_fresh(row, key, 1, ledger)
            else:
                row = _cell_row(
                    axis, point, point_idx, instance, build_time, name,
                    measure_memory, validate, verify, runner=runner,
                    profile=profile,
                )
                row = _finalise_fresh(row, key, 1, ledger)
            result.rows.append(row)
            if progress:
                _emit_progress(row, point, measure_memory, stream)
        del instance  # release before building the next point


def _run_parallel(
    result, points, algorithms, axis, measure_memory, validate, verify,
    jobs, runner, ledger, progress, stream, profile=False,
) -> None:
    tasks = [
        (p, a)
        for p in range(len(points))
        for a in range(len(algorithms))
        if ledger is None or not ledger.has((p, algorithms[a]))
    ]
    completed: Dict[Tuple[int, str], Dict[str, object]] = {}
    if tasks:
        jobs_effective = min(jobs, len(tasks))
        state = {
            "axis": axis,
            "points": points,
            "algorithms": algorithms,
            "measure_memory": measure_memory,
            "validate": validate,
            "verify": verify,
            "runner": runner,
            "profile": profile,
        }
        ctx = multiprocessing.get_context("fork")
        _PARALLEL_STATE.update(state)
        try:
            with ctx.Pool(processes=jobs_effective) as pool:
                for task, row in zip(
                    tasks, pool.imap(_run_parallel_cell, tasks, chunksize=1)
                ):
                    key = (task[0], algorithms[task[1]])
                    row = _finalise_fresh(row, key, jobs_effective, ledger)
                    completed[key] = row
                    if progress:
                        _emit_progress(row, points[task[0]], measure_memory, stream)
        finally:
            _PARALLEL_STATE.clear()
    for point_idx in range(len(points)):
        for name in algorithms:
            key = (point_idx, name)
            if key in completed:
                result.rows.append(completed[key])
            elif ledger is not None and ledger.has(key):
                result.rows.append(_replayed(ledger, key))


def _fork_available() -> bool:
    """Whether the fork start method exists (it does not on Windows)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False
