"""Sweep runner: instances x algorithms -> result rows.

The harness materialises each sweep point's instance lazily (one at a
time — scalability sweeps would not fit in memory otherwise), runs the
requested solvers through :meth:`Solver.run`, and emits flat dict rows
that the reporting module renders as the paper's per-panel series.

With ``jobs > 1`` the (point x algorithm) grid fans out over a
``multiprocessing`` fork pool: every cell runs in its own process, so
``tracemalloc`` peaks stay attributable to a single solver, and each
worker rebuilds its point's instance from the spec (instance generation
is seeded, so rebuilds are deterministic).  Rows come back through
``imap`` in task order, which is exactly the sequential nesting (points
outer, algorithms inner) — parallel and sequential sweeps produce the
same rows in the same order, timing fields aside.  A worker exception
propagates to the caller and aborts the sweep.  ``SweepPoint.build``
closures are generally not picklable, so the task payload is a pair of
indices and the worker resolves them against module state inherited
through the fork; platforms without the fork start method fall back to
the sequential path.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.registry import make_solver
from ..core.instance import USEPInstance
from ..verify.oracle import verify_planning


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a figure panel.

    Attributes:
        axis_value: The swept parameter's value (plotted on the x axis).
        build: Zero-argument factory producing the instance; called once
            and the instance is shared by all algorithms at this point,
            then released.
        label: Optional display label (defaults to ``axis_value``).
    """

    axis_value: object
    build: Callable[[], USEPInstance]
    label: Optional[str] = None

    @property
    def display(self) -> str:
        """Label shown in progress lines and panel headers."""
        return self.label if self.label is not None else str(self.axis_value)


@dataclass
class SweepResult:
    """All rows of one sweep plus bookkeeping."""

    axis: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def series(self, metric: str) -> Dict[str, List[object]]:
        """Per-algorithm series of one metric, in axis order.

        Returns ``{algorithm: [value per axis point]}`` — exactly one
        line of the paper's plots.
        """
        out: Dict[str, List[object]] = {}
        for row in self.rows:
            out.setdefault(str(row["solver"]), []).append(row.get(metric))
        return out

    def axis_values(self) -> List[object]:
        """Distinct axis values in first-seen order."""
        seen: List[object] = []
        for row in self.rows:
            if row["axis_value"] not in seen:
                seen.append(row["axis_value"])
        return seen


def _cell_row(
    axis: str,
    point: SweepPoint,
    instance: USEPInstance,
    build_time: float,
    name: str,
    measure_memory: bool,
    validate: bool,
    verify: bool = False,
) -> Dict[str, object]:
    """Run one (point, algorithm) cell and build its result row."""
    solver = make_solver(name)
    run = solver.run(instance, measure_memory=measure_memory, validate=validate)
    row: Dict[str, object] = {
        "axis": axis,
        "axis_value": point.axis_value,
        "instance": instance.name or point.display,
        "num_events": instance.num_events,
        "num_users": instance.num_users,
        "build_time_s": round(build_time, 4),
    }
    row.update(run.summary_row())
    if verify:
        report = verify_planning(instance, run.planning)
        row["verified"] = report.ok
        row["oracle_violations"] = len(report.violations)
        if not report.ok:
            row["oracle_summary"] = report.summary()
    return row


def _emit_progress(row: Dict[str, object], point: SweepPoint, measure_memory, stream):
    """One progress line per cell, identical for both execution paths."""
    mem = f" mem={row.get('peak_mem_kb', '-')}KB" if measure_memory else ""
    print(
        f"[{row['axis']}={point.display}] {row['solver']}: utility="
        f"{float(row['utility']):.2f} time={float(row['time_s']):.3f}s{mem}",
        file=stream,
        flush=True,
    )


#: Sweep parameters a fork-pool worker resolves its (point, algorithm)
#: indices against.  SweepPoint.build closures are not picklable in
#: general, so they travel to the workers via fork inheritance of this
#: module global, never through the task queue.
_PARALLEL_STATE: Dict[str, object] = {}


def _run_parallel_cell(task: Tuple[int, int]) -> Dict[str, object]:
    """Worker: build the point's instance and run one algorithm on it.

    Every cell rebuilds its instance from the (seeded, deterministic)
    spec so the process holds exactly one instance and its tracemalloc
    peak is attributable to the one solver it runs.
    """
    point_idx, algo_idx = task
    state = _PARALLEL_STATE
    point: SweepPoint = state["points"][point_idx]
    name: str = state["algorithms"][algo_idx]
    build_start = time.perf_counter()
    instance = point.build()
    build_time = time.perf_counter() - build_start
    return _cell_row(
        state["axis"],
        point,
        instance,
        build_time,
        name,
        state["measure_memory"],
        state["validate"],
        state.get("verify", False),
    )


def run_sweep(
    axis: str,
    points: Sequence[SweepPoint],
    algorithms: Iterable[str],
    measure_memory: bool = True,
    validate: bool = False,
    verify: bool = False,
    progress: bool = False,
    progress_stream=None,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Run every algorithm at every sweep point.

    Args:
        axis: Name of the swept parameter (for reporting).
        points: The sweep points, in x-axis order.
        algorithms: Registry names to run.
        measure_memory: Track each solver's peak allocations.
        validate: Re-check all USEP constraints on every planning
            (raises on the first violation).
        verify: Oracle-check every solver output with the independent
            :mod:`repro.verify` oracle and record the verdict in the
            row (``verified`` / ``oracle_violations``); unlike
            ``validate`` this never raises, so a sweep reports every
            bad cell.  Off by default — it costs one full constraint
            recomputation per cell, which large-scale sweeps skip.
        progress: Emit one line per (point, algorithm) to
            ``progress_stream`` (default stderr).
        jobs: Fan the (point x algorithm) cells out over this many
            worker processes.  ``None``/``0``/``1`` runs sequentially.
            Rows come back in the sequential order regardless; only the
            timing fields can differ between the two paths.
    """
    algorithms = list(algorithms)
    stream = progress_stream if progress_stream is not None else sys.stderr
    result = SweepResult(axis=axis)
    points = list(points)

    if jobs and jobs > 1 and points and algorithms and _fork_available():
        tasks = [
            (p, a) for p in range(len(points)) for a in range(len(algorithms))
        ]
        state = {
            "axis": axis,
            "points": points,
            "algorithms": algorithms,
            "measure_memory": measure_memory,
            "validate": validate,
            "verify": verify,
        }
        ctx = multiprocessing.get_context("fork")
        _PARALLEL_STATE.update(state)
        try:
            with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
                for task, row in zip(
                    tasks, pool.imap(_run_parallel_cell, tasks, chunksize=1)
                ):
                    result.rows.append(row)
                    if progress:
                        _emit_progress(row, points[task[0]], measure_memory, stream)
        finally:
            _PARALLEL_STATE.clear()
        return result

    for point in points:
        build_start = time.perf_counter()
        instance = point.build()
        build_time = time.perf_counter() - build_start
        for name in algorithms:
            row = _cell_row(
                axis,
                point,
                instance,
                build_time,
                name,
                measure_memory,
                validate,
                verify,
            )
            result.rows.append(row)
            if progress:
                _emit_progress(row, point, measure_memory, stream)
        del instance  # release before building the next point
    return result


def _fork_available() -> bool:
    """Whether the fork start method exists (it does not on Windows)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False
