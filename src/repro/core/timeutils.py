"""Time intervals of events and the temporal predicates the paper uses.

The paper associates each event ``v`` with a closed-open interval
``[t1_v, t2_v]`` and declares a schedule feasible iff for consecutive
events ``t2_{v_i} <= t1_{v_{i+1}}`` (Definition 1).  Back-to-back events
(one ending exactly when the next starts) are therefore *compatible*.

Times are plain numbers (ints in all generators, so that instances are
exactly reproducible); :class:`TimeInterval` is an immutable value type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .exceptions import InvalidInstanceError

Number = float  # times may be int or float; ints preferred for determinism


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A half-open-in-spirit event interval ``[start, end]``.

    Ordering is lexicographic ``(start, end)`` which matches "earlier
    event first" intuition; the solvers never rely on this ordering for
    correctness (they sort explicitly by ``end``).
    """

    start: Number
    end: Number

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise InvalidInstanceError(
                f"event interval must satisfy t1 < t2, got [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> Number:
        """Length of the interval."""
        return self.end - self.start

    def overlaps(self, other: "TimeInterval") -> bool:
        """True iff the two intervals conflict in time.

        Touching intervals (``self.end == other.start``) do *not*
        overlap: the paper allows attending them back to back.
        """
        return self.start < other.end and other.start < self.end

    def precedes(self, other: "TimeInterval") -> bool:
        """True iff an attendee can finish ``self`` before ``other`` starts."""
        return self.end <= other.start

    def gap_to(self, other: "TimeInterval") -> Number:
        """Free time between the end of ``self`` and the start of ``other``.

        Negative when the intervals overlap (i.e. there is no gap).
        """
        return other.start - self.end

    def shift(self, delta: Number) -> "TimeInterval":
        """Return a copy translated by ``delta``."""
        return TimeInterval(self.start + delta, self.end + delta)

    def as_tuple(self) -> Tuple[Number, Number]:
        """``(start, end)`` tuple, convenient for serialisation."""
        return (self.start, self.end)


def intervals_feasible(intervals: Sequence[TimeInterval]) -> bool:
    """Check Definition 1 on an already time-ordered list of intervals."""
    return all(
        intervals[i].precedes(intervals[i + 1]) for i in range(len(intervals) - 1)
    )


def sort_by_end(intervals: Iterable[TimeInterval]) -> List[TimeInterval]:
    """Sort intervals by non-descending end time (the DeDP event order)."""
    return sorted(intervals, key=lambda iv: (iv.end, iv.start))


def conflict_ratio(intervals: Sequence[TimeInterval]) -> float:
    """Fraction of event pairs that overlap in time.

    This is the paper's conflict ratio ``cr`` restricted to pure time
    overlap (the generators optionally add travel-time unreachability on
    top; see :mod:`repro.datagen.conflicts`).  Returns 0.0 for fewer than
    two intervals.
    """
    n = len(intervals)
    if n < 2:
        return 0.0
    # Sweep by start time: count overlapping pairs in O(n log n + k).
    order = sorted(range(n), key=lambda i: intervals[i].start)
    import heapq

    active: list = []  # min-heap of end times of currently open intervals
    conflicts = 0
    for idx in order:
        iv = intervals[idx]
        while active and active[0] <= iv.start:
            heapq.heappop(active)
        conflicts += len(active)
        heapq.heappush(active, iv.end)
    return conflicts / (n * (n - 1) / 2)
