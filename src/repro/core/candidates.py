"""The incremental scheduling engine: candidate index + schedule memo.

The decomposition solvers (Algorithms 3/4) call the single-user
scheduler once per user, and whole *solves* repeat on the same instance
— the +RG composition re-runs its base, the verification pass re-runs
the cell, the degradation ladder re-runs rungs, benchmarks repeat for
stable timings.  Two per-instance structures eliminate the redundant
work while keeping plannings **bit-identical** (golden-tested against
the ``*-seed`` twins):

:class:`CandidateIndex`
    For every user, the candidate events surviving Lemma 1 (round-trip
    cost within budget) *and* the positive-utility filter, pre-sorted
    in the global end-time order.  Both filters are applied inside
    every ``dp_single``/``greedy_single`` call today; precomputing them
    once per instance is sound because a pruned candidate can never
    appear in any schedule (the schedulers drop it anyway), so the
    pseudo-event pool state evolves identically.  Built only when the
    instance caches user costs — with ``cache_user_costs=False`` the
    per-user lists would break the instance's bounded-memory contract,
    so the solvers fall back to their per-call filtering path.

:class:`ScheduleMemo`
    Per ``(scheduler kind, user)``, the *last* candidate view (the
    candidate ids plus their decomposed utilities) and the schedule the
    scheduler returned for it.  A user whose view is unchanged since
    their last call is *clean* — the memoized schedule is returned
    without rescheduling.  Single-user scheduling is a pure function of
    ``(instance, user, view)``, so the reuse is exact; a dirty user
    (any candidate utility changed) simply misses and recomputes.  Only
    the last view is kept, bounding the memo at ``O(|U|)`` entries.

:class:`IncrementalEngine` bundles the two; solvers obtain it through
:meth:`repro.core.arrays.InstanceArrays.engine`, so it is built lazily
once per instance and shared by every solver that runs on it (and by
every adopter of the cross-cell build cache, see
:mod:`repro.core.build_cache`).  The seed twins never touch it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import instrument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instance import USEPInstance

#: A candidate view: ``(candidate ids, their utilities)`` in the order
#: the scheduler receives them.  Exact float equality on purpose — the
#: memo must never equate views a scheduler could tell apart.
View = Tuple[Tuple[int, ...], Tuple[float, ...]]


def view_key(candidates: Sequence[int], utilities: Dict[int, float]) -> View:
    """The memo key of one scheduler call's candidate view."""
    return (tuple(candidates), tuple(map(utilities.__getitem__, candidates)))


class CandidateIndex:
    """Per-user feasibility-pruned candidate lists, in end-time order.

    Attributes:
        per_user: ``per_user[u]`` — event ids with ``mu(v, u) > 0`` and
            ``cost(u,v) + cost(v,u) <= b_u``, sorted by the instance's
            global ``(end, start, id)`` order (``arrays.pos``).
        per_user_np: The same lists as intp arrays (fast gathers for
            the batch layer's margin checks).
        shapes: ``shapes[u]`` — the user's candidate *shape*: the
            survivor list as a tuple, **interned** so every user with
            the same surviving set shares one tuple object.  The batch
            kernel groups users by shape (same candidates, same
            predecessor table, same leg submatrix).
        static_views: ``static_views[u]`` — the memo :data:`View` the
            user presents while *untouched*: all survivors, each at its
            full utility ``mu(v, u)``.  This is exactly the view the
            Step-1 scan builds for a user none of whose candidate
            events has run out of free pseudo-copies, so the batch
            layer can skip the per-candidate scan entirely for such
            users (see :mod:`repro.algorithms.dp_batch`).
        positive_pairs: Count of ``mu(v, u) > 0`` pairs.
        pruned_pairs: Positive-utility pairs dropped by Lemma 1 — work
            the per-call filters no longer touch.
        survivor_pairs: ``positive_pairs - pruned_pairs``.
    """

    __slots__ = (
        "per_user",
        "per_user_np",
        "shapes",
        "static_views",
        "positive_pairs",
        "pruned_pairs",
        "survivor_pairs",
        "_intern",
        "_pos_counts",
    )

    def __init__(self, instance: "USEPInstance"):
        arrays = instance.arrays()
        num_users = instance.num_users
        num_events = instance.num_events
        #: shape intern table; persistent so the per-user refresh paths
        #: (:mod:`repro.core.deltas`) intern into the same map the
        #: initial build used.
        self._intern: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        if not num_users or not num_events or arrays.round_trip is None:
            self.per_user: List[List[int]] = [[] for _ in range(num_users)]
            self.per_user_np: List[np.ndarray] = [
                np.empty(0, dtype=np.intp) for _ in range(num_users)
            ]
            self.shapes: List[Tuple[int, ...]] = [()] * num_users
            self.static_views: List[View] = [((), ())] * num_users
            self.positive_pairs = 0
            self.pruned_pairs = 0
            self.survivor_pairs = 0
            self._pos_counts: List[int] = [0] * num_users
            return
        order = arrays.order
        budgets = arrays.budgets
        # Columns permuted into the global end-time order, so nonzero()
        # below yields each user's survivors already pos-sorted.
        positive = arrays.mu[order, :].T > 0.0  # (|U|, |V|)
        # float64 '+' and '<=' match the schedulers' scalar Python-float
        # checks bit for bit (same IEEE doubles, same operations).
        feasible = arrays.round_trip[:, order] <= budgets[:, None]
        mask = positive & feasible
        users_nz, slots = np.nonzero(mask)
        bounds = np.searchsorted(users_nz, np.arange(1, num_users))
        survivors_by_user = np.split(order[slots], bounds)
        self.per_user = [chunk.tolist() for chunk in survivors_by_user]
        self.per_user_np = list(survivors_by_user)
        self._pos_counts = positive.sum(axis=1).tolist()
        self.positive_pairs = int(positive.sum())
        self.survivor_pairs = int(len(slots))
        self.pruned_pairs = self.positive_pairs - self.survivor_pairs
        # Shape interning + the per-user untouched view.  Utilities come
        # from the same mu matrix utilities_for_event() reads, so the
        # static view's floats equal the scan-built view's bit for bit.
        mu = arrays.mu
        intern = self._intern
        self.shapes = []
        self.static_views = []
        for user_id, cands in enumerate(self.per_user):
            key = tuple(cands)
            shape = intern.setdefault(key, key)
            self.shapes.append(shape)
            if cands:
                utils = tuple(mu[self.per_user_np[user_id], user_id].tolist())
            else:
                utils = ()
            self.static_views.append((shape, utils))

    # ------------------------------------------------------------------
    # incremental maintenance (see repro.core.deltas)
    # ------------------------------------------------------------------
    def _build_row(
        self, arrays, user_id: int
    ) -> Tuple[np.ndarray, int, Tuple[int, ...], View]:
        """One user's survivors/shape/static view from current content.

        The same elementwise float64 comparisons as the vectorised
        ``__init__`` path, restricted to one row — a refreshed row is
        therefore bit-identical to what a from-scratch build computes.
        """
        order = arrays.order
        mu = arrays.mu
        positive_row = mu[order, user_id] > 0.0
        feasible_row = arrays.round_trip[user_id, order] <= arrays.budgets[user_id]
        survivors = order[np.nonzero(positive_row & feasible_row)[0]]
        key = tuple(survivors.tolist())
        shape = self._intern.setdefault(key, key)
        utils = tuple(mu[survivors, user_id].tolist()) if key else ()
        return survivors, int(positive_row.sum()), shape, (shape, utils)

    def refresh_user(self, arrays, user_id: int) -> bool:
        """Re-derive one user's row in place; True when the view changed."""
        survivors, pos_count, shape, view = self._build_row(arrays, user_id)
        changed = self.static_views[user_id] != view
        self.positive_pairs += pos_count - self._pos_counts[user_id]
        self.survivor_pairs += len(shape) - len(self.per_user[user_id])
        self._pos_counts[user_id] = pos_count
        self.per_user[user_id] = survivors.tolist()
        self.per_user_np[user_id] = survivors
        self.shapes[user_id] = shape
        self.static_views[user_id] = view
        self.pruned_pairs = self.positive_pairs - self.survivor_pairs
        return changed

    def append_user(self, arrays) -> None:
        """Add the row of a just-appended user (id ``len(per_user)``)."""
        user_id = len(self.per_user)
        survivors, pos_count, shape, view = self._build_row(arrays, user_id)
        self.per_user.append(survivors.tolist())
        self.per_user_np.append(survivors)
        self.shapes.append(shape)
        self.static_views.append(view)
        self._pos_counts.append(pos_count)
        self.positive_pairs += pos_count
        self.survivor_pairs += len(shape)
        self.pruned_pairs = self.positive_pairs - self.survivor_pairs

    def remove_user(self, user_id: int) -> None:
        """Drop one user's row; later rows keep their (shifted) content."""
        self.positive_pairs -= self._pos_counts[user_id]
        self.survivor_pairs -= len(self.per_user[user_id])
        self.pruned_pairs = self.positive_pairs - self.survivor_pairs
        del self.per_user[user_id]
        del self.per_user_np[user_id]
        del self.shapes[user_id]
        del self.static_views[user_id]
        del self._pos_counts[user_id]


class ScheduleMemo:
    """Last-view schedule memo of the single-user schedulers."""

    __slots__ = ("_last", "hits", "misses")

    def __init__(self) -> None:
        #: ``(kind, user) -> (view, schedule)``; ``kind`` separates the
        #: DP and greedy schedulers (same view, different schedules).
        self._last: Dict[Tuple[str, int], Tuple[View, Tuple[int, ...]]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, kind: str, user_id: int, view: View) -> Optional[Tuple[int, ...]]:
        """The memoized schedule when the user is clean, else None."""
        entry = self._last.get((kind, user_id))
        if entry is not None and entry[0] == view:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def put(
        self, kind: str, user_id: int, view: View, schedule: Sequence[int]
    ) -> Tuple[int, ...]:
        """Record the scheduler's answer for the user's current view."""
        stored = tuple(schedule)
        self._last[(kind, user_id)] = (view, stored)
        return stored

    def stats(self) -> Dict[str, int]:
        """Lifetime hit/miss counts (always tracked; two int adds)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._last)}

    # ------------------------------------------------------------------
    # incremental maintenance (see repro.core.deltas)
    # ------------------------------------------------------------------
    def evict_users(self, user_ids) -> int:
        """Drop every entry (both kinds) of the given users; count removed."""
        if not user_ids:
            return 0
        stale = [key for key in self._last if key[1] in user_ids]
        for key in stale:
            del self._last[key]
        return len(stale)

    def drop_user(self, user_id: int) -> None:
        """Remove one user's entries and shift higher user ids down.

        Sound because a memo entry's content (candidate event ids,
        utilities, schedule) never mentions the *user id* — dropping a
        user renumbers later users but leaves their candidate views and
        schedules untouched, so entry ``(kind, w)`` is exactly entry
        ``(kind, w-1)`` of the renumbered instance.
        """
        rebuilt: Dict[Tuple[str, int], Tuple[View, Tuple[int, ...]]] = {}
        for (kind, uid), entry in self._last.items():
            if uid == user_id:
                continue
            rebuilt[(kind, uid - 1 if uid > user_id else uid)] = entry
        self._last = rebuilt

    def remap_dropped_event(self, event_id: int) -> int:
        """Renumber event ids above a dropped event in surviving entries.

        Entries whose candidate view contains the dropped event are
        removed (their owners are in the mutation's dirty set and
        re-solve anyway); every other entry keeps its utilities and
        schedule but with event ids above ``event_id`` shifted down —
        the renumbered instance presents exactly that view, so clean
        users keep memo-hitting.  Returns entries removed.
        """
        rebuilt: Dict[Tuple[str, int], Tuple[View, Tuple[int, ...]]] = {}
        removed = 0
        for key, (view, schedule) in self._last.items():
            cands = view[0]
            # A schedule is a subset of its view's candidates, so one
            # containment check covers both tuples.
            if event_id in cands:
                removed += 1
                continue
            if any(ev > event_id for ev in cands):
                cands = tuple(ev - 1 if ev > event_id else ev for ev in cands)
                schedule = tuple(
                    ev - 1 if ev > event_id else ev for ev in schedule
                )
                view = (cands, view[1])
            rebuilt[key] = (view, schedule)
        self._last = rebuilt
        return removed


class IncrementalEngine:
    """The per-instance incremental state shared by the solvers."""

    __slots__ = (
        "instance",
        "memo",
        "_index",
        "_index_built",
        "shape_cache",
        "_solutions",
        "version",
        "_content_token",
    )

    def __init__(self, instance: "USEPInstance"):
        self.instance = instance
        self.memo = ScheduleMemo()
        self._index: Optional[CandidateIndex] = None
        self._index_built = False
        #: Batch-kernel setup per candidate shape (see
        #: :mod:`repro.algorithms.dp_batch`); bounded there.
        self.shape_cache: Dict[Tuple[int, ...], tuple] = {}
        #: Whole-solve replay cache: ``key -> (schedules, counters)``.
        self._solutions: Dict[tuple, Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], Dict[str, int]]] = {}
        #: Mutations applied to the instance since this engine was
        #: built (mirrors ``instance.version`` advances routed through
        #: :func:`note_mutation`).
        self.version = 0
        self._content_token: Optional[str] = None

    def content_token(self) -> str:
        """A token that changes whenever the instance's content does.

        The build-cache content fingerprint when the cost model is
        fingerprintable, else a per-``(engine, version)`` fallback that
        still changes on every mutation.  Replay-cache keys include it
        (see :class:`~repro.algorithms.decomposed.DecomposedSolver`),
        so a whole-solve replay recorded before a mutation can never be
        served after it — the post-mutation key differs by construction.
        """
        token = self._content_token
        if token is None:
            from . import build_cache

            fingerprint = build_cache.instance_fingerprint(self.instance)
            if fingerprint is None:
                fingerprint = f"unfingerprintable-{id(self)}-v{self.version}"
            token = self._content_token = fingerprint
        return token

    def note_mutation(self) -> None:
        """Invalidate everything keyed on pre-mutation content.

        Called by :mod:`repro.core.deltas` after every applied
        mutation: bumps :attr:`version`, forgets the memoised content
        token (the next :func:`content_token` re-fingerprints the
        mutated content) and drops the whole-solve replay cache — its
        recorded plannings describe the pre-mutation instance and their
        keys are unreachable under the new token anyway.
        """
        self.version += 1
        self._content_token = None
        self._solutions.clear()

    @property
    def index(self) -> Optional[CandidateIndex]:
        """The candidate index, built on first use.

        ``None`` when the instance does not cache user costs — the
        index needs the round-trip matrix and per-user lists, both of
        which the bounded-memory contract forbids persisting.
        """
        if not self._index_built:
            self._index_built = True
            if self.instance._cache_user_costs:  # noqa: SLF001 - engine is core-internal
                self._index = CandidateIndex(self.instance)
                prof = instrument.active()
                if prof is not None:
                    prof.add("index_builds")
        return self._index

    def schedule(
        self,
        kind: str,
        scheduler,
        user_id: int,
        candidates: Sequence[int],
        utilities: Dict[int, float],
        presorted: bool,
    ) -> Sequence[int]:
        """Scheduler call with dirty-checking: memo hit when the user's
        candidate view is unchanged since their last ``kind`` call."""
        view = view_key(candidates, utilities)
        cached = self.memo.get(kind, user_id, view)
        if cached is not None:
            return cached
        schedule = scheduler(
            self.instance, user_id, candidates, utilities, presorted=presorted
        )
        return self.memo.put(kind, user_id, view, schedule)

    # ------------------------------------------------------------------
    # whole-solve replay cache
    # ------------------------------------------------------------------
    def replay_solution(self, key: tuple):
        """Replay a cached solve, or None when the key is unknown.

        A solver is a pure function of ``(instance content, solver
        identity)`` — every algorithm here is deterministic, and keys
        embed :func:`content_token` so mutated content can never hit a
        pre-mutation entry — so once a solver has run on this instance
        its entire planning can be replayed from the recorded per-user
        schedules without touching Step 1 at all.  Replay counts one
        memo hit per user: by definition every user is clean (nothing
        on the instance changed), which keeps the engine's observable
        hit accounting identical to a per-user warm re-solve.

        Returns ``(planning, counters)``; the planning is built fresh,
        so callers may mutate it (the +RG pass does) without touching
        the cache, and ``counters`` is a copy for the same reason.
        """
        entry = self._solutions.get(key)
        if entry is None:
            return None
        from .planning import Planning

        schedules, counters = entry
        planning = Planning(self.instance)
        for user_id, event_ids in schedules:
            planning.set_schedule(user_id, list(event_ids))
        self.memo.hits += self.instance.num_users
        prof = instrument.active()
        if prof is not None:
            prof.add("sched_solve_replays")
            prof.add("sched_cache_hits", self.instance.num_users)
        return planning, dict(counters)

    def store_solution(self, key: tuple, planning, counters: Dict[str, int]) -> None:
        """Record a finished solve for replay (copies everything)."""
        schedules = tuple(
            (user_id, tuple(event_ids))
            for user_id, event_ids in sorted(planning.as_dict().items())
        )
        self._solutions[key] = (schedules, dict(counters))


def get_engine(instance: "USEPInstance") -> IncrementalEngine:
    """The instance's cached engine (built on first use)."""
    return instance.arrays().engine()
