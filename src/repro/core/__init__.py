"""Core USEP problem model: entities, costs, instances, schedules, plannings."""

from .costs import (
    INFEASIBLE,
    CostModel,
    GridCostModel,
    MatrixCostModel,
    audit_triangle_inequality,
    euclidean,
    manhattan,
)
from .deltas import (
    MUTATION_KINDS,
    AddEvent,
    AddUser,
    BudgetChange,
    CapacityChange,
    DeltaReport,
    DropEvent,
    DropUser,
    Mutation,
    UtilityChange,
    apply_mutation,
    apply_mutations,
)
from .entities import UNBOUNDED_CAPACITY, Event, Location, User
from .exceptions import (
    ConstraintViolationError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    ReproError,
    SolverError,
)
from .instance import USEPInstance
from .planning import Planning, planning_from_dict, validate_planning
from .schedule import Insertion, Schedule
from .timeutils import TimeInterval, conflict_ratio, intervals_feasible, sort_by_end

__all__ = [
    "AddEvent",
    "AddUser",
    "BudgetChange",
    "CapacityChange",
    "CostModel",
    "ConstraintViolationError",
    "DeltaReport",
    "DropEvent",
    "DropUser",
    "Event",
    "MUTATION_KINDS",
    "Mutation",
    "GridCostModel",
    "INFEASIBLE",
    "InfeasibleScheduleError",
    "Insertion",
    "InvalidInstanceError",
    "Location",
    "MatrixCostModel",
    "Planning",
    "ReproError",
    "Schedule",
    "SolverError",
    "TimeInterval",
    "UNBOUNDED_CAPACITY",
    "USEPInstance",
    "User",
    "UtilityChange",
    "apply_mutation",
    "apply_mutations",
    "audit_triangle_inequality",
    "conflict_ratio",
    "euclidean",
    "intervals_feasible",
    "manhattan",
    "planning_from_dict",
    "sort_by_end",
    "validate_planning",
]
