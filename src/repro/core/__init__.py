"""Core USEP problem model: entities, costs, instances, schedules, plannings."""

from .costs import (
    INFEASIBLE,
    CostModel,
    GridCostModel,
    MatrixCostModel,
    audit_triangle_inequality,
    euclidean,
    manhattan,
)
from .entities import UNBOUNDED_CAPACITY, Event, Location, User
from .exceptions import (
    ConstraintViolationError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    ReproError,
    SolverError,
)
from .instance import USEPInstance
from .planning import Planning, planning_from_dict, validate_planning
from .schedule import Insertion, Schedule
from .timeutils import TimeInterval, conflict_ratio, intervals_feasible, sort_by_end

__all__ = [
    "CostModel",
    "ConstraintViolationError",
    "Event",
    "GridCostModel",
    "INFEASIBLE",
    "InfeasibleScheduleError",
    "Insertion",
    "InvalidInstanceError",
    "Location",
    "MatrixCostModel",
    "Planning",
    "ReproError",
    "Schedule",
    "SolverError",
    "TimeInterval",
    "UNBOUNDED_CAPACITY",
    "USEPInstance",
    "User",
    "audit_triangle_inequality",
    "conflict_ratio",
    "euclidean",
    "intervals_feasible",
    "manhattan",
    "planning_from_dict",
    "sort_by_end",
    "validate_planning",
]
