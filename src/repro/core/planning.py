"""Plannings: the assignment ``A = union_u {S_u}`` and its validation.

A :class:`Planning` owns one :class:`~repro.core.schedule.Schedule` per
user plus the per-event occupancy counts needed for the capacity
constraint.  :func:`validate_planning` checks all four constraints of
Definition 2 and is used by every test and at the end of every solver in
"paranoid" mode.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from .exceptions import ConstraintViolationError
from .instance import USEPInstance
from .schedule import Insertion, Schedule


class Planning:
    """An event-participant planning over a fixed instance.

    The planning tracks occupancy incrementally so that capacity checks
    during greedy construction are O(1).
    """

    def __init__(self, instance: USEPInstance):
        self.instance = instance
        self.schedules: List[Schedule] = [
            Schedule(user_id) for user_id in range(instance.num_users)
        ]
        self._occupancy: List[int] = [0] * instance.num_events

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def schedule_of(self, user_id: int) -> Schedule:
        """The schedule ``S_u`` of one user."""
        return self.schedules[user_id]

    def occupancy(self, event_id: int) -> int:
        """Number of users currently arranged to attend ``event_id``."""
        return self._occupancy[event_id]

    def remaining_capacity(self, event_id: int) -> int:
        """Seats left before the event hits its capacity."""
        return self.instance.events[event_id].capacity - self._occupancy[event_id]

    def is_full(self, event_id: int) -> bool:
        """True iff the event reached its capacity."""
        return self.remaining_capacity(event_id) <= 0

    def total_utility(self) -> float:
        """``Omega(A)`` — Equation (1)."""
        return sum(s.utility(self.instance) for s in self.schedules)

    def total_arranged_pairs(self) -> int:
        """Number of (event, user) pairs in the planning."""
        return sum(len(s) for s in self.schedules)

    def iter_pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield every arranged ``(event_id, user_id)`` pair."""
        for schedule in self.schedules:
            for event_id in schedule:
                yield event_id, schedule.user_id

    def as_dict(self) -> Dict[int, List[int]]:
        """``{user_id: [event ids in time order]}`` for non-empty users."""
        return {s.user_id: list(s.event_ids) for s in self.schedules if len(s)}

    def copy(self) -> "Planning":
        """Deep copy sharing the (immutable) instance."""
        dup = Planning(self.instance)
        dup.schedules = [s.copy() for s in self.schedules]
        dup._occupancy = list(self._occupancy)
        return dup

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_insertion(self, user_id: int, insertion: Insertion) -> None:
        """Insert an event into a user's schedule and update occupancy."""
        self.schedules[user_id].insert(self.instance, insertion)
        self._occupancy[insertion.event_id] += 1

    def add_pair(self, event_id: int, user_id: int) -> Insertion:
        """Plan + apply an insertion; raises when temporally infeasible."""
        insertion = self.schedules[user_id].insert_event(self.instance, event_id)
        self._occupancy[event_id] += 1
        return insertion

    def remove_pair(self, event_id: int, user_id: int) -> None:
        """Drop an arranged pair (framework second step)."""
        self.schedules[user_id].remove(self.instance, event_id)
        self._occupancy[event_id] -= 1

    def set_schedule(self, user_id: int, event_ids: List[int]) -> None:
        """Overwrite one user's schedule, keeping occupancy coherent."""
        for event_id in self.schedules[user_id]:
            self._occupancy[event_id] -= 1
        self.schedules[user_id].replace_events(self.instance, event_ids)
        for event_id in event_ids:
            self._occupancy[event_id] += 1

    # ------------------------------------------------------------------
    # feasibility of a candidate pair (greedy algorithms' "valid" test)
    # ------------------------------------------------------------------
    def plan_valid_insertion(self, event_id: int, user_id: int) -> Optional[Insertion]:
        """The paper's validity test for adding ``(v, u)`` to ``A``.

        Checks, in the cheap-to-expensive order: utility constraint,
        capacity, temporal fit + finite legs, and budget.  Returns the
        insertion when all pass, else None.
        """
        if self.instance.utility(event_id, user_id) <= 0.0:
            return None
        if self.is_full(event_id):
            return None
        schedule = self.schedules[user_id]
        insertion = schedule.plan_insertion(self.instance, event_id)
        if insertion is None:
            return None
        if not schedule.fits_budget(self.instance, insertion.inc_cost):
            return None
        return insertion


def validate_planning(planning: Planning) -> None:
    """Verify all four USEP constraints; raise on the first violation.

    1. capacity, 2. budget, 3. feasibility (time order), 4. utility.
    Also cross-checks the planning's incremental occupancy/cost caches
    against recomputed-from-scratch values.
    """
    instance = planning.instance
    counts = [0] * instance.num_events
    for schedule in planning.schedules:
        user = instance.users[schedule.user_id]
        if not schedule.is_time_feasible(instance):
            raise ConstraintViolationError(
                "feasibility",
                f"user {user.id}: schedule {schedule.event_ids} has a time overlap",
            )
        if len(set(schedule.event_ids)) != len(schedule.event_ids):
            raise ConstraintViolationError(
                "feasibility",
                f"user {user.id}: schedule repeats an event: {schedule.event_ids}",
            )
        fresh = Schedule(user.id, schedule.event_ids)
        cost = fresh.total_cost(instance)
        if math.isinf(cost):
            raise ConstraintViolationError(
                "feasibility",
                f"user {user.id}: schedule contains an unreachable leg",
            )
        if cost > user.budget + 1e-9:
            raise ConstraintViolationError(
                "budget",
                f"user {user.id}: travel cost {cost} exceeds budget {user.budget}",
            )
        cached = schedule.total_cost(instance)
        if abs(cached - cost) > 1e-6:
            raise ConstraintViolationError(
                "budget",
                f"user {user.id}: cached cost {cached} != recomputed {cost}",
            )
        for event_id in schedule:
            if instance.utility(event_id, user.id) <= 0.0:
                raise ConstraintViolationError(
                    "utility",
                    f"user {user.id} arranged event {event_id} with "
                    f"mu(v, u) = {instance.utility(event_id, user.id)}",
                )
            counts[event_id] += 1
    for event_id, count in enumerate(counts):
        if count > instance.events[event_id].capacity:
            raise ConstraintViolationError(
                "capacity",
                f"event {event_id}: {count} attendees exceed capacity "
                f"{instance.events[event_id].capacity}",
            )
        if count != planning.occupancy(event_id):
            raise ConstraintViolationError(
                "capacity",
                f"event {event_id}: cached occupancy {planning.occupancy(event_id)} "
                f"!= recomputed {count}",
            )


def planning_from_dict(
    instance: USEPInstance, schedules: Dict[int, List[int]]
) -> Planning:
    """Build a planning from ``{user_id: [event ids]}`` (any order).

    Events are inserted in time order; raises if any schedule is
    infeasible.  Convenient in tests and when loading recorded results.
    """
    planning = Planning(instance)
    for user_id, event_ids in schedules.items():
        ordered = sorted(event_ids, key=lambda v: instance.events[v].start)
        for event_id in ordered:
            planning.add_pair(event_id, user_id)
    return planning
