"""Typed in-place instance mutations with minimal re-solve (dynamic USEP).

The paper solves *static* instances; the related dynamic-EBSN work
("Social Event Scheduling", arXiv 1801.09973; "Attendance Maximization",
arXiv 1811.11593) treats arrivals, departures and edits as first-class.
This module is the bridge: a closed set of typed mutations —
:class:`AddUser`, :class:`DropUser`, :class:`AddEvent`,
:class:`DropEvent`, :class:`CapacityChange`, :class:`BudgetChange`,
:class:`UtilityChange` — that edit a live :class:`USEPInstance` **in
place** while keeping every derived structure consistent:

* the instance's content (entity tuples, the ``mu`` matrix) and its
  lazily built cost caches (``_vv_cost``, the per-user cost rows) and
  end-time ordering;
* the :class:`~repro.core.arrays.InstanceArrays` compute layer,
  updated *incrementally* — a budget edit writes one array cell, a new
  user appends one cost row (``O(|V|)`` cost-model calls instead of
  the ``O(|U| |V|)`` a full rebuild pays), a new event appends one
  column;
* the :class:`~repro.core.candidates.CandidateIndex` (per-row refresh
  for user-level edits, vectorised rebuild for event-set changes) and
  :class:`~repro.core.candidates.ScheduleMemo` (exact eviction of the
  *dirty* users, id remapping for drops);
* the staleness-sensitive caches: the whole-solve replay cache and
  memoised content fingerprint are invalidated via
  :meth:`IncrementalEngine.note_mutation`, the batch layer's shape
  cache is cleared on event-set changes (its entries embed event ids
  and leg submatrices), and the cross-cell build-cache registration is
  dropped (:func:`repro.core.build_cache.forget`) so the pre-mutation
  fingerprint can never adopt the mutated object.

**Dirty users.**  Every mutation reports the exact set of users whose
next Step-1 scheduling can differ — the analytically-affected set, no
more and no less (``tests/test_deltas.py`` holds this per kind):

====================  ===================================================
mutation              dirty users
====================  ===================================================
``add_user``          the new user
``drop_user``         none (remaining views are id-shifts, not changes)
``add_event``         users for whom the new event survives Lemma 1
                      (positive utility, round trip within budget)
``drop_event``        users with the event in their candidate view
``capacity_change``   users with the event in their candidate view
                      (their Step-1 decomposed views depend on the
                      event's pseudo-copy pool)
``budget_change``     the touched user (the budget value itself feeds
                      the DP threshold, even when the candidate set is
                      unchanged)
``utility_change``    the touched user, iff the event is
                      budget-feasible for them and the utility is
                      positive before or after (otherwise the edit
                      cannot enter any candidate view)
====================  ===================================================

Dirty users' memo entries are evicted; everyone else memo-hits on the
next solve, so a delta re-solve re-runs Step 1 only for the dirty set.
Because the memo replays only bit-identical views and every derived
structure above is rebuilt with the same elementwise operations a
from-scratch build uses, a delta re-solve is **bit-identical** to a
cold solve of the mutated content (the churn differential fuzzer in
:mod:`repro.verify.fuzz` compares canonical planning bytes after every
mutation).

Value no-ops (setting a capacity/budget/utility to its current value)
apply nothing and invalidate nothing — the report says so via
:attr:`DeltaReport.noop`.

Each mutation validates *before* touching any state, so a rejected
mutation (bad id, out-of-range utility) leaves the instance unchanged;
a mutation *list* applies sequentially and stops at the first invalid
entry (callers see how many applied via the report list length).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from . import build_cache
from .candidates import CandidateIndex
from .entities import Event, User
from .exceptions import InvalidInstanceError
from .instance import USEPInstance
from .timeutils import TimeInterval


# ----------------------------------------------------------------------
# the mutation types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AddUser:
    """Append a user (id ``|U|``) with their full utility column."""

    location: Tuple[float, float]
    budget: float
    utilities: Tuple[float, ...]  #: ``mu(v, new)`` per event id, length |V|
    name: Optional[str] = field(default=None, compare=False)

    kind = "add_user"


@dataclass(frozen=True)
class DropUser:
    """Remove a user; later user ids shift down by one."""

    user_id: int

    kind = "drop_user"


@dataclass(frozen=True)
class AddEvent:
    """Append an event (id ``|V|``) with its full utility row."""

    location: Tuple[float, float]
    capacity: int
    start: float
    end: float
    utilities: Tuple[float, ...]  #: ``mu(new, u)`` per user id, length |U|
    name: Optional[str] = field(default=None, compare=False)

    kind = "add_event"


@dataclass(frozen=True)
class DropEvent:
    """Remove an event; later event ids shift down by one."""

    event_id: int

    kind = "drop_event"


@dataclass(frozen=True)
class CapacityChange:
    """Set an event's capacity."""

    event_id: int
    capacity: int

    kind = "capacity_change"


@dataclass(frozen=True)
class BudgetChange:
    """Set a user's travel budget."""

    user_id: int
    budget: float

    kind = "budget_change"


@dataclass(frozen=True)
class UtilityChange:
    """Set one ``mu(v, u)`` cell."""

    event_id: int
    user_id: int
    utility: float

    kind = "utility_change"


Mutation = Union[
    AddUser,
    DropUser,
    AddEvent,
    DropEvent,
    CapacityChange,
    BudgetChange,
    UtilityChange,
]

#: kind string -> mutation class (the io codec walks this).
MUTATION_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        AddUser,
        DropUser,
        AddEvent,
        DropEvent,
        CapacityChange,
        BudgetChange,
        UtilityChange,
    )
}

MUTATION_KINDS: Tuple[str, ...] = tuple(MUTATION_TYPES)


@dataclass(frozen=True)
class DeltaReport:
    """What one applied mutation changed and invalidated.

    Attributes:
        kind: The mutation's kind string.
        dirty_users: Post-mutation ids of users whose next Step-1
            scheduling can differ (see the module table).  Exactly the
            analytically-affected set.
        version: ``instance.version`` after application (unchanged for
            a no-op).
        memo_evicted: Schedule-memo entries removed.
        index_rebuilt: True when the candidate index was rebuilt from
            scratch (event-set mutations) rather than row-refreshed.
        noop: True when the mutation set a value to itself and nothing
            was touched.
    """

    kind: str
    dirty_users: FrozenSet[int]
    version: int
    memo_evicted: int = 0
    index_rebuilt: bool = False
    noop: bool = False


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _check_event_id(instance: USEPInstance, event_id, path: str) -> int:
    if not isinstance(event_id, int) or isinstance(event_id, bool):
        raise InvalidInstanceError(f"{path}: event id must be an integer")
    if not 0 <= event_id < instance.num_events:
        raise InvalidInstanceError(
            f"{path}: event id {event_id} out of range "
            f"(instance has {instance.num_events} events)"
        )
    return event_id


def _check_user_id(instance: USEPInstance, user_id, path: str) -> int:
    if not isinstance(user_id, int) or isinstance(user_id, bool):
        raise InvalidInstanceError(f"{path}: user id must be an integer")
    if not 0 <= user_id < instance.num_users:
        raise InvalidInstanceError(
            f"{path}: user id {user_id} out of range "
            f"(instance has {instance.num_users} users)"
        )
    return user_id


def _check_utilities(values, expected: int, path: str) -> np.ndarray:
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(
            f"{path}: utilities must be an array of numbers ({exc})"
        ) from exc
    if arr.ndim != 1 or arr.shape[0] != expected:
        raise InvalidInstanceError(
            f"{path}: expected {expected} utilities, got shape {arr.shape}"
        )
    if arr.size and (
        np.isnan(arr).any() or float(arr.min()) < 0.0 or float(arr.max()) > 1.0
    ):
        raise InvalidInstanceError(f"{path}: utilities must lie in [0, 1]")
    return arr


def _check_utility(value, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidInstanceError(f"{path}: utility must be a number")
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise InvalidInstanceError(
            f"{path}: utility must lie in [0, 1], got {value}"
        )
    return value


def _layers(instance: USEPInstance):
    """``(arrays, engine, index)`` — only the parts already built.

    Mutations never *force* lazy layers into existence: an instance
    whose arrays/engine/index were never touched stays lazy and the
    next access derives everything from the mutated content.
    """
    arrays = instance._arrays  # noqa: SLF001 - deltas is core-internal
    engine = arrays._engine if arrays is not None else None  # noqa: SLF001
    index = None
    if engine is not None and engine._index_built:  # noqa: SLF001
        index = engine._index  # noqa: SLF001
    return arrays, engine, index


def _survivor_set(instance: USEPInstance, event_id: int) -> FrozenSet[int]:
    """Users for whom the event survives Lemma 1 + the positive filter.

    Exactly candidate-view membership: ``mu(v, u) > 0`` and round trip
    within budget — the same float comparisons the index build makes.
    """
    arrays = instance._arrays  # noqa: SLF001
    if arrays is not None and arrays.round_trip is not None:
        mask = (arrays.mu[event_id, :] > 0.0) & (
            arrays.round_trip[:, event_id] <= arrays.budgets
        )
        return frozenset(np.nonzero(mask)[0].tolist())
    users = instance.users
    return frozenset(
        u
        for u in range(instance.num_users)
        if instance.utility(event_id, u) > 0.0
        and instance.round_trip_cost(u, event_id) <= users[u].budget
    )


def _commit(instance: USEPInstance, engine) -> None:
    """Post-mutation invalidation shared by every (non-noop) mutation."""
    build_cache.forget(instance)
    instance._fingerprint_cache = None  # noqa: SLF001
    instance._version += 1  # noqa: SLF001
    if engine is not None:
        engine.note_mutation()


def _noop(instance: USEPInstance, kind: str) -> DeltaReport:
    return DeltaReport(
        kind=kind,
        dirty_users=frozenset(),
        version=instance.version,
        noop=True,
    )


def _rebuild_event_arrays(instance: USEPInstance, arrays) -> None:
    """Refresh the event-derived arrays after an event-set change.

    The same constructions :class:`InstanceArrays.__init__` runs, fed
    from the (already updated) instance content and caches — so every
    refreshed array is bit-identical to a from-scratch build.
    """
    events = instance.events
    arrays.mu = instance.utility_matrix()
    arrays.vv = (
        np.asarray(arrays.vv_rows, dtype=float)
        if arrays.vv_rows
        else np.zeros((0, 0))
    )
    arrays.event_start = np.array([ev.start for ev in events], dtype=float)
    arrays.event_end = np.array([ev.end for ev in events], dtype=float)
    arrays.order = np.asarray(instance.sorted_event_ids, dtype=np.intp)
    arrays.pos = np.asarray(instance.sorted_position, dtype=np.intp)
    arrays.pos_list = list(instance.sorted_position)
    arrays.l_index = np.asarray(instance.l_index, dtype=np.intp)


def _rebuild_index(instance: USEPInstance, engine) -> bool:
    """Vectorised full index rebuild (event-set mutations only)."""
    if engine is None or not engine._index_built:  # noqa: SLF001
        return False
    if engine._index is None:  # noqa: SLF001
        return False
    engine._index = CandidateIndex(instance)  # noqa: SLF001
    return True


# ----------------------------------------------------------------------
# per-kind application
# ----------------------------------------------------------------------


def _apply_utility_change(
    instance: USEPInstance, mutation: UtilityChange
) -> DeltaReport:
    path = "utility_change"
    v = _check_event_id(instance, mutation.event_id, path)
    u = _check_user_id(instance, mutation.user_id, path)
    value = _check_utility(mutation.utility, path)
    old = float(instance._mu[v, u])  # noqa: SLF001
    if value == old:
        return _noop(instance, path)
    # Dirty iff the edit can enter the user's candidate view: the event
    # must fit the budget, and the utility must be positive on at least
    # one side (0 -> 0.3 adds a candidate, 0.3 -> 0 removes one,
    # 0.3 -> 0.5 changes its utility; an infeasible event enters no
    # view at any utility).
    feasible = (
        instance.round_trip_cost(u, v) <= instance.users[u].budget
    )
    dirty = (
        frozenset((u,))
        if feasible and (old > 0.0 or value > 0.0)
        else frozenset()
    )
    instance._mu[v, u] = value  # noqa: SLF001 - arrays.mu is a view of _mu
    arrays, engine, index = _layers(instance)
    if index is not None:
        # Refresh even when clean: the positive-pair diagnostics count
        # mu > 0 cells regardless of feasibility.
        index.refresh_user(arrays, u)
    memo_evicted = engine.memo.evict_users(dirty) if engine is not None else 0
    _commit(instance, engine)
    return DeltaReport(path, dirty, instance.version, memo_evicted)


def _apply_budget_change(
    instance: USEPInstance, mutation: BudgetChange
) -> DeltaReport:
    path = "budget_change"
    u = _check_user_id(instance, mutation.user_id, path)
    old_user = instance.users[u]
    try:
        new_user = dataclasses.replace(old_user, budget=mutation.budget)
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"{path}: {exc}") from exc
    if new_user.budget == old_user.budget:
        return _noop(instance, path)
    users = list(instance.users)
    users[u] = new_user
    instance.users = tuple(users)
    arrays, engine, index = _layers(instance)
    if arrays is not None:
        arrays.budgets[u] = new_user.budget
    if index is not None:
        index.refresh_user(arrays, u)
    # Always dirty: the budget value itself is a DP input (the
    # threshold walk in dp_single), even when no candidate crosses the
    # feasibility boundary — a memo hit on an unchanged view would
    # replay a schedule computed under the old budget.
    dirty = frozenset((u,))
    memo_evicted = engine.memo.evict_users(dirty) if engine is not None else 0
    _commit(instance, engine)
    return DeltaReport(path, dirty, instance.version, memo_evicted)


def _apply_capacity_change(
    instance: USEPInstance, mutation: CapacityChange
) -> DeltaReport:
    path = "capacity_change"
    v = _check_event_id(instance, mutation.event_id, path)
    old_event = instance.events[v]
    try:
        new_event = dataclasses.replace(old_event, capacity=mutation.capacity)
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"{path}: {exc}") from exc
    if new_event.capacity == old_event.capacity:
        return _noop(instance, path)
    # Dirty: every user with the event in their candidate view — their
    # Step-1 decomposed views depend on the event's pseudo-copy pool
    # (saturation point, steal values).  The candidate index itself is
    # capacity-independent, so no index work.
    dirty = _survivor_set(instance, v)
    events = list(instance.events)
    events[v] = new_event
    instance.events = tuple(events)
    _, engine, _ = _layers(instance)
    memo_evicted = engine.memo.evict_users(dirty) if engine is not None else 0
    _commit(instance, engine)
    return DeltaReport(path, dirty, instance.version, memo_evicted)


def _apply_add_user(instance: USEPInstance, mutation: AddUser) -> DeltaReport:
    path = "add_user"
    new_id = instance.num_users
    try:
        user = User(
            id=new_id,
            location=(float(mutation.location[0]), float(mutation.location[1])),
            budget=mutation.budget,
            name=mutation.name,
        )
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidInstanceError(f"{path}: {exc}") from exc
    column = _check_utilities(
        mutation.utilities, instance.num_events, f"{path}.utilities"
    )
    instance.users = instance.users + (user,)
    instance._mu = np.concatenate(  # noqa: SLF001
        [instance._mu, column[:, None]], axis=1  # noqa: SLF001
    )
    arrays, engine, index = _layers(instance)
    if arrays is not None:
        arrays.mu = instance.utility_matrix()
        arrays.budgets = np.append(arrays.budgets, float(user.budget))
        if arrays.to_events is not None:
            # O(|V|) cost-model calls for the one new user — the same
            # calls (and caching) a from-scratch arrays build makes.
            to_row = np.asarray(instance.costs_to_events(new_id), dtype=float)
            from_row = np.asarray(
                instance.costs_from_events(new_id), dtype=float
            )
            arrays.to_events = np.vstack([arrays.to_events, to_row[None, :]])
            arrays.from_events = np.vstack(
                [arrays.from_events, from_row[None, :]]
            )
            arrays.round_trip = np.vstack(
                [arrays.round_trip, (to_row + from_row)[None, :]]
            )
    if index is not None:
        index.append_user(arrays)
    dirty = frozenset((new_id,))
    _commit(instance, engine)
    return DeltaReport(path, dirty, instance.version)


def _apply_drop_user(instance: USEPInstance, mutation: DropUser) -> DeltaReport:
    path = "drop_user"
    u = _check_user_id(instance, mutation.user_id, path)
    instance.users = tuple(
        old if old.id < u else dataclasses.replace(old, id=old.id - 1)
        for old in instance.users
        if old.id != u
    )
    instance._mu = np.delete(instance._mu, u, axis=1)  # noqa: SLF001
    for cache in (
        instance._to_event_cache,  # noqa: SLF001
        instance._from_event_cache,  # noqa: SLF001
    ):
        shifted = {
            (uid - 1 if uid > u else uid): row
            for uid, row in cache.items()
            if uid != u
        }
        cache.clear()
        cache.update(shifted)
    arrays, engine, index = _layers(instance)
    if arrays is not None:
        arrays.mu = instance.utility_matrix()
        arrays.budgets = np.delete(arrays.budgets, u)
        if arrays.to_events is not None:
            arrays.to_events = np.delete(arrays.to_events, u, axis=0)
            arrays.from_events = np.delete(arrays.from_events, u, axis=0)
            arrays.round_trip = np.delete(arrays.round_trip, u, axis=0)
    if index is not None:
        index.remove_user(u)
    memo_evicted = 0
    if engine is not None:
        memo_evicted = engine.memo.evict_users(frozenset((u,)))
        engine.memo.drop_user(u)
    _commit(instance, engine)
    # Remaining users' candidate views are unchanged (their ids shift,
    # their content does not), so nobody re-solves.
    return DeltaReport(path, frozenset(), instance.version, memo_evicted)


def _apply_add_event(instance: USEPInstance, mutation: AddEvent) -> DeltaReport:
    path = "add_event"
    new_id = instance.num_events
    try:
        event = Event(
            id=new_id,
            location=(float(mutation.location[0]), float(mutation.location[1])),
            capacity=mutation.capacity,
            interval=TimeInterval(mutation.start, mutation.end),
            name=mutation.name,
        )
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidInstanceError(f"{path}: {exc}") from exc
    row = _check_utilities(
        mutation.utilities, instance.num_users, f"{path}.utilities"
    )
    instance.events = instance.events + (event,)
    instance._mu = np.vstack([instance._mu, row[None, :]])  # noqa: SLF001
    model = instance.cost_model
    if instance._vv_cost is not None:  # noqa: SLF001
        # In place on the shared row lists (arrays.vv_rows is the same
        # object): append the new column to every row, then the new row.
        for a_id, row_list in enumerate(instance._vv_cost):  # noqa: SLF001
            row_list.append(model.event_to_event(instance.events[a_id], event))
        instance._vv_cost.append(  # noqa: SLF001
            [model.event_to_event(event, b) for b in instance.events]
        )
    for uid, row_list in instance._to_event_cache.items():  # noqa: SLF001
        row_list.append(model.user_to_event(instance.users[uid], event))
    for uid, row_list in instance._from_event_cache.items():  # noqa: SLF001
        row_list.append(model.event_to_user(event, instance.users[uid]))
    instance._rebuild_event_order()  # noqa: SLF001
    arrays, engine, index = _layers(instance)
    if arrays is not None:
        _rebuild_event_arrays(instance, arrays)
        if arrays.to_events is not None:
            num_users = instance.num_users
            to_col = np.empty(num_users, dtype=float)
            from_col = np.empty(num_users, dtype=float)
            for uid in range(num_users):
                # Cached rows are complete whenever arrays exist (the
                # arrays build filled every user); [-1] is the new leg.
                to_col[uid] = instance.costs_to_events(uid)[-1]
                from_col[uid] = instance.costs_from_events(uid)[-1]
            arrays.to_events = np.concatenate(
                [arrays.to_events, to_col[:, None]], axis=1
            )
            arrays.from_events = np.concatenate(
                [arrays.from_events, from_col[:, None]], axis=1
            )
            arrays.round_trip = np.concatenate(
                [arrays.round_trip, (to_col + from_col)[:, None]], axis=1
            )
    index_rebuilt = _rebuild_index(instance, engine)
    dirty = _survivor_set(instance, new_id)
    memo_evicted = 0
    if engine is not None:
        # Shape-cache entries embed event-id tuples, positions and leg
        # submatrices; the event set changed, so drop them wholesale.
        engine.shape_cache.clear()
        memo_evicted = engine.memo.evict_users(dirty)
    _commit(instance, engine)
    return DeltaReport(
        path, dirty, instance.version, memo_evicted, index_rebuilt
    )


def _apply_drop_event(
    instance: USEPInstance, mutation: DropEvent
) -> DeltaReport:
    path = "drop_event"
    v = _check_event_id(instance, mutation.event_id, path)
    # Dirty set from the *pre-drop* content: users who could see v.
    dirty = _survivor_set(instance, v)
    instance.events = tuple(
        old if old.id < v else dataclasses.replace(old, id=old.id - 1)
        for old in instance.events
        if old.id != v
    )
    instance._mu = np.delete(instance._mu, v, axis=0)  # noqa: SLF001
    if instance._vv_cost is not None:  # noqa: SLF001
        del instance._vv_cost[v]  # noqa: SLF001
        for row_list in instance._vv_cost:  # noqa: SLF001
            del row_list[v]
    for cache in (
        instance._to_event_cache,  # noqa: SLF001
        instance._from_event_cache,  # noqa: SLF001
    ):
        for row_list in cache.values():
            del row_list[v]
    instance._rebuild_event_order()  # noqa: SLF001
    arrays, engine, index = _layers(instance)
    if arrays is not None:
        _rebuild_event_arrays(instance, arrays)
        if arrays.to_events is not None:
            arrays.to_events = np.delete(arrays.to_events, v, axis=1)
            arrays.from_events = np.delete(arrays.from_events, v, axis=1)
            arrays.round_trip = np.delete(arrays.round_trip, v, axis=1)
    index_rebuilt = _rebuild_index(instance, engine)
    memo_evicted = 0
    if engine is not None:
        engine.shape_cache.clear()
        memo_evicted = engine.memo.evict_users(dirty)
        memo_evicted += engine.memo.remap_dropped_event(v)
    _commit(instance, engine)
    return DeltaReport(
        path, dirty, instance.version, memo_evicted, index_rebuilt
    )


_APPLIERS = {
    UtilityChange: _apply_utility_change,
    BudgetChange: _apply_budget_change,
    CapacityChange: _apply_capacity_change,
    AddUser: _apply_add_user,
    DropUser: _apply_drop_user,
    AddEvent: _apply_add_event,
    DropEvent: _apply_drop_event,
}


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------


def apply_mutation(instance: USEPInstance, mutation: Mutation) -> DeltaReport:
    """Apply one typed mutation in place; returns its :class:`DeltaReport`.

    Raises :class:`InvalidInstanceError` (instance untouched) when the
    mutation is structurally invalid for the current content.
    """
    applier = _APPLIERS.get(type(mutation))
    if applier is None:
        raise InvalidInstanceError(
            f"unknown mutation type {type(mutation).__name__}"
        )
    return applier(instance, mutation)


def apply_mutations(
    instance: USEPInstance, mutations: Iterable[Mutation]
) -> List[DeltaReport]:
    """Apply a mutation stream in order; reports in application order.

    Stops at (and re-raises) the first invalid mutation — everything
    before it stays applied, mirroring the sequential semantics of a
    churn stream.  Callers needing atomicity should validate against a
    copy first.
    """
    reports: List[DeltaReport] = []
    for mutation in mutations:
        reports.append(apply_mutation(instance, mutation))
    return reports


def dirty_union(reports: Sequence[DeltaReport]) -> FrozenSet[int]:
    """Union of the dirty sets of a report list.

    Best-effort diagnostic only: user ids are *post-mutation* ids of
    their own step, so a stream that drops users renumbers later ids
    and the union is not meaningful across such a stream.
    """
    out: FrozenSet[int] = frozenset()
    for report in reports:
        out = out | report.dirty_users
    return out
