"""Cross-cell instance build cache, keyed by content fingerprint.

A sweep cell's expensive setup — the ``|V| x |V|`` event-cost matrix,
the ``|U| x |V|`` user-cost matrices, the end-time ordering
(:class:`~repro.core.arrays.InstanceArrays`) and the Lemma 1 candidate
index (:class:`~repro.core.candidates.CandidateIndex`) — depends only
on the instance's *content*.  Yet the parallel sweep harness rebuilds
its point's instance in every worker cell (deterministic by seed), and
the verification pass, degradation-ladder rungs and the several
algorithms sharing one cell each re-derive the same structures when
they land on different instance objects.

:func:`get_or_register` deduplicates those rebuilds inside one process:
the first instance with a given fingerprint is registered (and kept
alive, LRU-bounded); later content-identical instances are *swapped
out* for the registered one, whose caches are already warm — including
the schedule memo, so clean users skip rescheduling outright.  Safe
because instances are immutable and every derived structure is a pure
function of the fingerprinted content.

The fingerprint covers events (capacity/location/interval), users
(location/budget), the full utility matrix, the cost model's defining
parameters and the ``cache_user_costs`` flag.  Cost models the module
cannot fingerprint make the instance uncacheable (never wrongly
shared).  Hit/miss counts are process-local diagnostics surfaced via
``--profile`` and the bench ledger, never in default sweep rows — a
hit depends on which worker ran the cell first.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from .costs import CostModel, GridCostModel, MatrixCostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instance import USEPInstance

#: Registered instances kept alive at once; small on purpose — each
#: entry pins a full instance plus its derived arrays.
MAX_ENTRIES = 4

_cache: "OrderedDict[str, USEPInstance]" = OrderedDict()
_stats: Dict[str, int] = {"hits": 0, "misses": 0, "uncacheable": 0, "evictions": 0}


def _model_token(model: CostModel) -> Optional[bytes]:
    """Stable bytes identifying a cost model's behaviour, or None."""
    if type(model) is GridCostModel:
        return repr(("grid", model.metric, model.speed, model.integral)).encode()
    if type(model) is MatrixCostModel:
        digest = hashlib.sha256()
        digest.update(repr(model._ee).encode())  # noqa: SLF001 - same package
        digest.update(repr(model._ue).encode())  # noqa: SLF001
        digest.update(repr(model._eu).encode())  # noqa: SLF001
        digest.update(repr(model.check_conflicts).encode())
        return b"matrix:" + digest.hexdigest().encode()
    return None  # unknown subclass: refuse to equate instances


def instance_fingerprint(instance: "USEPInstance") -> Optional[str]:
    """Content hash of everything the derived structures depend on.

    ``None`` when the cost model cannot be fingerprinted (the instance
    is then never cached or adopted).  Memoised on the instance —
    hashing a ``10k x 120`` utility matrix costs tens of milliseconds —
    and invalidated by :mod:`repro.core.deltas` on every mutation, so
    the fingerprint always reflects the instance's *current* content.
    """
    cached = instance._fingerprint_cache  # noqa: SLF001 - same package
    if cached is not None:
        return cached
    token = _model_token(instance.cost_model)
    if token is None:
        return None
    digest = hashlib.sha256()
    digest.update(token)
    digest.update(repr(instance._cache_user_costs).encode())  # noqa: SLF001
    for ev in instance.events:
        digest.update(
            repr((ev.id, ev.location, ev.capacity, ev.start, ev.end)).encode()
        )
    for user in instance.users:
        digest.update(repr((user.id, user.location, user.budget)).encode())
    digest.update(instance._mu.tobytes())  # noqa: SLF001 - content hash
    fingerprint = digest.hexdigest()
    instance._fingerprint_cache = fingerprint  # noqa: SLF001
    return fingerprint


def get_or_register(instance: "USEPInstance") -> Tuple["USEPInstance", bool]:
    """Swap a rebuilt instance for its registered warm twin.

    Returns ``(instance_to_use, cache_hit)``: on a hit the registered
    content-identical instance (warm arrays, candidate index and
    schedule memo) replaces the argument; on a miss the argument is
    registered and returned unchanged.
    """
    fingerprint = instance_fingerprint(instance)
    if fingerprint is None:
        _stats["uncacheable"] += 1
        return instance, False
    donor = _cache.get(fingerprint)
    if donor is not None:
        _cache.move_to_end(fingerprint)
        _stats["hits"] += 1
        return donor, True
    _stats["misses"] += 1
    _cache[fingerprint] = instance
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
        _stats["evictions"] += 1
    return instance, False


def forget(instance: "USEPInstance") -> int:
    """Unregister an instance *by identity* (not by fingerprint).

    :mod:`repro.core.deltas` calls this before mutating a registered
    instance: the registry maps the *pre-mutation* fingerprint to the
    object, so leaving the entry in place would hand the mutated object
    to a later caller presenting the old content — exactly the stale
    adoption the fingerprint exists to prevent.  Identity scan on
    purpose: the old fingerprint may already be uncomputable once the
    caller has started editing content.  Returns entries removed.
    """
    stale = [key for key, value in _cache.items() if value is instance]
    for key in stale:
        del _cache[key]
    return len(stale)


def prepare_build(instance: "USEPInstance") -> None:
    """Materialise the shared build up front (arrays + candidate index).

    Called by the resilient runner *before* forking supervised
    attempts, so every rung's child inherits one finished build through
    copy-on-write instead of each rebuilding it.
    """
    instance.arrays().engine().index  # noqa: B018 - builds as a side effect


def stats() -> Dict[str, int]:
    """Process-local cache counters (see module docstring)."""
    return dict(_stats, entries=len(_cache))


def clear() -> None:
    """Drop all registered instances and zero the counters."""
    _cache.clear()
    for key in _stats:
        _stats[key] = 0
