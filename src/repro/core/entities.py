"""Events and users — the two entity types of the USEP problem.

An :class:`Event` carries a capacity, a location and a time interval; a
:class:`User` carries a location (their start *and* return point) and a
travel budget (Section 2 of the paper).  Both are immutable value
objects; problem instances index them by dense integer ids so the
solvers can use flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .exceptions import InvalidInstanceError
from .timeutils import TimeInterval

Location = Tuple[float, float]

#: Capacity value standing in for "effectively unlimited" (firework shows
#: in the paper's phrasing).  Solvers clamp capacities to ``|U|`` anyway.
UNBOUNDED_CAPACITY = 10**9


@dataclass(frozen=True)
class Event:
    """An offline social event published on the EBSN platform.

    Attributes:
        id: Dense integer id, unique within an instance.
        location: Venue coordinates (used by grid cost models).
        capacity: Maximum number of attendees, a positive integer.
        interval: The event's time span ``[t1, t2]``.
        name: Optional human-readable label (EBSN simulator fills it).
    """

    id: int
    location: Location
    capacity: int
    interval: TimeInterval
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidInstanceError(f"event id must be >= 0, got {self.id}")
        if self.capacity < 1:
            raise InvalidInstanceError(
                f"event {self.id}: capacity must be a positive integer, "
                f"got {self.capacity}"
            )

    @property
    def start(self) -> float:
        """Start time ``t1``."""
        return self.interval.start

    @property
    def end(self) -> float:
        """End time ``t2``."""
        return self.interval.end

    def conflicts_with(self, other: "Event") -> bool:
        """Pure time conflict (ignores travel time between venues)."""
        return self.interval.overlaps(other.interval)


@dataclass(frozen=True)
class User:
    """A platform user to be arranged a schedule of events.

    Attributes:
        id: Dense integer id, unique within an instance.
        location: Initial and final location of the user.
        budget: Maximum total travel cost the user will spend (``b_u``).
        name: Optional human-readable label.
    """

    id: int
    location: Location
    budget: float
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise InvalidInstanceError(f"user id must be >= 0, got {self.id}")
        if self.budget < 0:
            raise InvalidInstanceError(
                f"user {self.id}: travel budget must be non-negative, "
                f"got {self.budget}"
            )
