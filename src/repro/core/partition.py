"""Spatial grid partitioning of huge instances, and the merge that
reassembles per-cell plans into one feasible planning.

The paper's decomposition is embarrassingly parallel across *users*,
but one huge instance still lands on one worker because every solver
touches the full ``|V| x |U|`` problem.  Utilities decay with distance
in real EBSN workloads, so far-apart event clusters barely interact —
the natural cut is spatial:

1. :func:`partition_instance` buckets **events** by location into a
   ``gx x gy`` grid over the event bounding box (about ``cells`` nonempty
   cells) and attaches each **user** to every cell holding at least one
   of their *positive-utility Lemma-1 candidates* (``mu(v, u) > 0`` and
   round-trip within budget).  A user near a cell boundary may appear
   in several cells; a user with no candidates appears in none (no
   solver could ever schedule them).  Each cell becomes a standalone
   renumbered :class:`~repro.core.instance.USEPInstance`.
2. Each sub-instance is solved independently (locally via
   :func:`repro.algorithms.partitioned.solve_partitioned`, or across
   the worker fleet via :mod:`repro.service.scatter`).
3. :func:`reconcile` merges the per-cell plans: single-cell users adopt
   their schedule verbatim, boundary users are resolved greedily by
   utility margin, and a bounded +RG-style repair pass restricted to
   boundary users recovers utility the cut destroyed.

**Contract.**  This is the first layer allowed to return a *different*
answer than the sequential solver: the merged plan must be
Definition-2 feasible (callers gate it with
:func:`repro.verify.oracle.verify_schedules`) and is expected to reach
a configured fraction of the monolithic utility (the fuzz harness and
bench guard enforce ``>= 0.95`` on clustered geographies) — **not**
byte-equality.  The floor is kept honest by a refusal guard: a cut
that would replicate more than :data:`MAX_REPLICATION_RATIO` of its
users across cells (relaxed to :data:`MAX_REPLICATION_RATIO_LARGE`
above :data:`REPLICATION_STRICT_BELOW_USERS` attached users, where
per-user coordination losses average out) raises
:class:`PartitionError` instead of producing a low-quality merge, and
the caller solves monolithically.  The single degenerate exception: a one-cell partition
contains every event under the identity id mapping and every user with
a candidate, so its merge *is* byte-identical to the monolithic solve
(regression-tested).

Why sub-plans stay feasible globally: a cell's events/users keep their
exact locations, intervals, capacities and budgets (ids are renumbered
densely, costs are sliced or delegated), so any schedule feasible in
the cell is feasible verbatim on the full instance.  Capacity cannot
be oversubscribed by the honest scatter path — each event lives in
exactly one cell — but :func:`reconcile` is defensive anyway and
resolves oversubscription by utility margin, since it also accepts
partial plans from untrusted workers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace as entity_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import instrument
from .costs import CostModel, GridCostModel, MatrixCostModel
from .entities import Event, User
from .exceptions import ReproError
from .instance import USEPInstance
from .planning import Planning

#: Reconciliation defaults: passes of the bounded boundary repair and
#: the per-user candidate cap each pass scans (mu-descending).
DEFAULT_REPAIR_PASSES = 2
DEFAULT_REPAIR_CANDIDATES = 32

#: Refusal threshold of :func:`partition_instance`: a multi-cell cut
#: replicating more than this fraction of its attached users is not a
#: spatial decomposition, it is the same problem copied k times — no
#: speedup, and enough cross-cell coupling that merge quality degrades
#: (measured: every utility-ratio dip below 0.95 across a 120-draw
#: seeded sweep had replication >= 0.58; everything under 0.50 stayed
#: >= 0.98).  Refusing keeps the quality floor honest over the whole
#: input space, because callers degrade to the monolithic path.
MAX_REPLICATION_RATIO = 0.5

#: The strict bound above is calibrated on *small* instances (the fuzz
#: distribution tops out under 500 users), where one mis-coordinated
#: boundary user carries a visible share of the objective.  At fleet
#: scale the loss averages out: the 50k-user bench instance measures a
#: 0.998 utility ratio at 66% replication.  So the strict bound applies
#: below this attached-user count, and only the looser
#: :data:`MAX_REPLICATION_RATIO_LARGE` backstop above it.
REPLICATION_STRICT_BELOW_USERS = 1000
MAX_REPLICATION_RATIO_LARGE = 0.85


class PartitionError(ReproError):
    """The instance cannot be partitioned (callers fall back to the
    monolithic solve path)."""


# ----------------------------------------------------------------------
# Lemma-1 candidate mask (the user -> cell attachment rule)
# ----------------------------------------------------------------------
def _manhattan_dists(instance: USEPInstance) -> Optional[np.ndarray]:
    """``(|V|, |U|)`` user-to-event costs, vectorised — or None.

    Only for Manhattan :class:`GridCostModel` instances, using the same
    float64 operations (abs-diff sums, half-even rounding) the scalar
    model performs per pair, so every entry is bit-identical to a
    ``cost_model.user_to_event`` call.  These are exactly the values the
    instance's per-user row caches hold; the partitioner *prefills*
    each sub-instance's caches from slices of this matrix, which is
    where most of the partitioned-vs-monolithic wall-clock win comes
    from on one core — the monolithic array layer pays one Python model
    call per ``(u, v)`` pair, the partitioned path one vectorised pass.
    """
    model = instance.cost_model
    if not isinstance(model, GridCostModel) or model.metric != "manhattan":
        return None
    ev = np.array([e.location for e in instance.events], dtype=float)
    us = np.array([u.location for u in instance.users], dtype=float)
    dist = np.abs(ev[:, 0:1] - us[None, :, 0]) + np.abs(
        ev[:, 1:2] - us[None, :, 1]
    )
    if model.integral:
        dist = np.rint(dist)
    return dist


def candidate_mask(
    instance: USEPInstance, dists: Optional[np.ndarray] = None
) -> np.ndarray:
    """``(|V|, |U|)`` bool: ``mu(v, u) > 0`` and round-trip within budget.

    Exactly the positive-utility Lemma-1 filter of
    :class:`~repro.core.candidates.CandidateIndex`, but computed
    without forcing the monolithic array layer into existence — the
    partitioner's whole point is that only the (much smaller) per-cell
    layers get built.  Three paths, most exact first:

    * an already-built :class:`~repro.core.arrays.InstanceArrays` with
      a round-trip matrix is reused verbatim;
    * a Manhattan :class:`GridCostModel` is vectorised
      (:func:`_manhattan_dists`; pass ``dists`` to reuse a matrix the
      caller already computed) with float64 ops bit-identical to the
      scalar model's;
    * anything else (matrix models, Euclidean, custom) goes through the
      instance's exact scalar :meth:`~USEPInstance.round_trip_cost`.
    """
    mu = instance.utility_matrix()
    num_events, num_users = instance.num_events, instance.num_users
    if not num_events or not num_users:
        return np.zeros((num_events, num_users), dtype=bool)
    budgets = np.array([u.budget for u in instance.users], dtype=float)

    arrays = instance._arrays  # noqa: SLF001 - reuse, never force-build
    if arrays is not None and arrays.round_trip is not None:
        round_trip = arrays.round_trip.T  # (|U|, |V|) -> (|V|, |U|)
    else:
        if dists is None:
            dists = _manhattan_dists(instance)
        if dists is not None:
            round_trip = 2.0 * dists
        else:
            round_trip = np.array(
                [
                    [
                        instance.round_trip_cost(user_id, event_id)
                        for user_id in range(num_users)
                    ]
                    for event_id in range(num_events)
                ],
                dtype=float,
            )
    return (mu > 0.0) & (round_trip <= budgets[None, :])


# ----------------------------------------------------------------------
# sub-instances
# ----------------------------------------------------------------------
class _SubsetCostModel(CostModel):
    """Delegate costs of renumbered entities to the parent model.

    Needed only for cost models that index by entity *id* and are
    neither grid- nor matrix-based: local entity ``i`` is looked up as
    its global twin before the parent model is consulted.  Not
    JSON-serialisable — the HTTP scatter path is restricted to grid and
    matrix models (see :mod:`repro.io`), which never need this wrapper.
    """

    def __init__(
        self,
        base: CostModel,
        global_events: Sequence[Event],
        global_users: Sequence[User],
        event_ids: Sequence[int],
        user_ids: Sequence[int],
    ):
        self._base = base
        self._events = [global_events[g] for g in event_ids]
        self._users = [global_users[g] for g in user_ids]

    def event_to_event(self, first: Event, second: Event) -> float:
        return self._base.event_to_event(
            self._events[first.id], self._events[second.id]
        )

    def user_to_event(self, user: User, event: Event) -> float:
        return self._base.user_to_event(
            self._users[user.id], self._events[event.id]
        )

    def event_to_user(self, event: Event, user: User) -> float:
        return self._base.event_to_user(
            self._events[event.id], self._users[user.id]
        )


def _slice_cost_model(
    instance: USEPInstance, event_ids: Sequence[int], user_ids: Sequence[int]
) -> CostModel:
    """The sub-instance's cost model.

    Grid models are purely location-based and shared as-is (they are
    stateless); matrix models are sliced to the surviving id ranges;
    anything else is wrapped with a local->global delegate.
    """
    model = instance.cost_model
    if isinstance(model, GridCostModel):
        return model
    if isinstance(model, MatrixCostModel):
        ee = [[model._ee[a][b] for b in event_ids] for a in event_ids]  # noqa: SLF001
        ue = [[model._ue[u][v] for v in event_ids] for u in user_ids]  # noqa: SLF001
        eu = model._eu  # noqa: SLF001
        if eu is not None:
            eu = [[eu[v][u] for u in user_ids] for v in event_ids]
        return MatrixCostModel(
            ee, ue, eu, check_conflicts=model.check_conflicts
        )
    return _SubsetCostModel(
        model, instance.events, instance.users, event_ids, user_ids
    )


@dataclass
class SubInstance:
    """One grid cell as a standalone, densely renumbered instance.

    Attributes:
        index: Position in :attr:`GridPartition.cells`.
        cell: The ``(ix, iy)`` grid coordinates of the cell.
        instance: The renumbered per-cell :class:`USEPInstance`.
        event_ids: Ascending global event ids; local event ``i`` is the
            global event ``event_ids[i]``.
        user_ids: Ascending global user ids, same convention.
    """

    index: int
    cell: Tuple[int, int]
    instance: USEPInstance
    event_ids: List[int]
    user_ids: List[int]

    def to_global_plan(
        self, local_plan: Dict[int, List[int]]
    ) -> Dict[int, List[int]]:
        """Map a ``{local user: [local events]}`` plan to global ids."""
        return {
            self.user_ids[user]: [self.event_ids[v] for v in events]
            for user, events in local_plan.items()
        }


@dataclass
class GridPartition:
    """The result of cutting one instance into grid cells.

    Attributes:
        instance: The original (uncut) instance.
        cells: Nonempty cells in deterministic ``(iy, ix)`` scan order.
        grid: The ``(gx, gy)`` grid dimensions.
        requested_cells: What the caller asked for.
        empty_cells: Grid slots that held no event (dropped).
        attached_users: Users attached to at least one cell.
        replicated_users: Users attached to two or more cells (the
            boundary set resolved by :func:`reconcile`).
        user_cell_count: Per-user number of cells attached to.
    """

    instance: USEPInstance
    cells: List[SubInstance]
    grid: Tuple[int, int]
    requested_cells: int
    empty_cells: int
    attached_users: int
    replicated_users: int
    user_cell_count: np.ndarray

    def boundary_users(self) -> List[int]:
        """Ascending global ids of users attached to >= 2 cells."""
        return np.nonzero(self.user_cell_count >= 2)[0].tolist()

    def describe(self) -> Dict[str, object]:
        """Summary block for stats endpoints and ``--profile`` output."""
        return {
            "cells": len(self.cells),
            "grid": list(self.grid),
            "requested_cells": self.requested_cells,
            "empty_cells": self.empty_cells,
            "attached_users": self.attached_users,
            "replicated_users": self.replicated_users,
            "cell_sizes": [
                {"events": len(sub.event_ids), "users": len(sub.user_ids)}
                for sub in self.cells
            ],
        }


def _grid_dimensions(cells: int) -> Tuple[int, int]:
    """A near-square ``gx x gy`` grid with ``gx * gy >= cells``."""
    gx = max(1, int(math.isqrt(cells)))
    gy = (cells + gx - 1) // gx
    return gx, gy


def partition_instance(
    instance: USEPInstance,
    cells: int = 4,
    max_replication_ratio: Optional[float] = MAX_REPLICATION_RATIO,
) -> GridPartition:
    """Cut an instance into about ``cells`` grid-cell sub-instances.

    Events are bucketed by quantised location over their bounding box;
    empty grid slots are dropped.  Users are attached per the Lemma-1
    candidate rule (see :func:`candidate_mask`); a cell may end up with
    zero attached users (its plan is trivially empty).  ``cells`` is
    clamped to ``[1, |V|]``; a degenerate geometry (all events at one
    point) yields a single cell, which merges byte-identically to the
    monolithic solve.

    A multi-cell cut whose boundary set exceeds ``max_replication_ratio``
    of the attached users is *refused* (the geography does not support
    the cut — candidate sets straddle the cell borders, so the cut buys
    no work reduction and costs merge quality); above
    :data:`REPLICATION_STRICT_BELOW_USERS` attached users the bound
    relaxes to :data:`MAX_REPLICATION_RATIO_LARGE`.  Pass ``None`` to
    disable the guard (tests of the reconciler's defensive paths do).

    Raises:
        PartitionError: On an instance with no events or no users, or
            on a refused high-replication cut — callers degrade to the
            monolithic path.
    """
    started = time.perf_counter()
    if not instance.num_events or not instance.num_users:
        raise PartitionError(
            f"nothing to partition: |V| = {instance.num_events}, "
            f"|U| = {instance.num_users}"
        )
    requested = int(cells)
    if requested < 1:
        raise PartitionError(f"cells must be >= 1, got {cells}")
    target = min(requested, instance.num_events)
    gx, gy = _grid_dimensions(target)

    locations = np.array(
        [e.location for e in instance.events], dtype=float
    )  # (|V|, 2)
    low = locations.min(axis=0)
    span = locations.max(axis=0) - low
    span[span == 0.0] = 1.0  # flat axis: every event lands in slot 0
    ix = np.minimum((locations[:, 0] - low[0]) / span[0] * gx, gx - 1).astype(int)
    iy = np.minimum((locations[:, 1] - low[1]) / span[1] * gy, gy - 1).astype(int)

    buckets: Dict[Tuple[int, int], List[int]] = {}
    for event_id in range(instance.num_events):
        buckets.setdefault((int(ix[event_id]), int(iy[event_id])), []).append(
            event_id
        )
    ordered_cells = sorted(buckets, key=lambda c: (c[1], c[0]))

    dists = _manhattan_dists(instance)  # also seeds the cell cost caches
    mask = candidate_mask(instance, dists)  # (|V|, |U|)
    user_cell_count = np.zeros(instance.num_users, dtype=int)
    members: List[np.ndarray] = []
    for cell in ordered_cells:
        cell_users = np.nonzero(mask[buckets[cell], :].any(axis=0))[0]
        user_cell_count[cell_users] += 1
        members.append(cell_users)

    attached = int((user_cell_count >= 1).sum())
    replicated = int((user_cell_count >= 2).sum())
    if max_replication_ratio is not None and len(ordered_cells) > 1:
        bound = max_replication_ratio
        if attached >= REPLICATION_STRICT_BELOW_USERS:
            bound = max(bound, MAX_REPLICATION_RATIO_LARGE)
        if replicated > bound * max(1, attached):
            raise PartitionError(
                f"cut refused: {replicated} of {attached} attached users "
                f"({replicated / max(1, attached):.0%}) would be replicated "
                f"across cells, above the {bound:.0%} bound — "
                f"the geography does not support {len(ordered_cells)} cells"
            )

    subs: List[SubInstance] = []
    for index, cell in enumerate(ordered_cells):
        event_ids = buckets[cell]  # ascending: built in id order
        user_ids = members[index].tolist()
        events = [
            entity_replace(instance.events[g], id=i)
            for i, g in enumerate(event_ids)
        ]
        users = [
            entity_replace(instance.users[g], id=j)
            for j, g in enumerate(user_ids)
        ]
        mu = np.ascontiguousarray(
            instance.utility_matrix()[np.ix_(event_ids, user_ids)]
        )
        sub = USEPInstance(
            events,
            users,
            _slice_cost_model(instance, event_ids, user_ids),
            mu,
            cache_user_costs=instance._cache_user_costs,  # noqa: SLF001
            name=f"{instance.name or 'instance'}[cell {cell[0]},{cell[1]}]",
        )
        if dists is not None and instance._cache_user_costs:  # noqa: SLF001
            # Seed the cell's per-user cost-row caches from the matrix
            # computed above: bit-identical values (same IEEE float64
            # ops and rounding as the scalar model), so the cell's
            # array layer skips its per-pair Python build entirely.
            rows = dists[np.ix_(event_ids, user_ids)].T.tolist()
            sub._to_event_cache = {  # noqa: SLF001
                j: row for j, row in enumerate(rows)
            }
            sub._from_event_cache = {  # noqa: SLF001
                j: list(row) for j, row in enumerate(rows)
            }
        subs.append(
            SubInstance(
                index=index,
                cell=cell,
                instance=sub,
                event_ids=list(event_ids),
                user_ids=user_ids,
            )
        )

    partition = GridPartition(
        instance=instance,
        cells=subs,
        grid=(gx, gy),
        requested_cells=requested,
        empty_cells=gx * gy - len(subs),
        attached_users=attached,
        replicated_users=replicated,
        user_cell_count=user_cell_count,
    )
    prof = instrument.active()
    if prof is not None:
        prof.add("partition_cells", len(subs))
        prof.add("partition_replicated_users", replicated)
        prof.add(
            "partition_build_ms",
            int(round(1e3 * (time.perf_counter() - started))),
        )
    return partition


# ----------------------------------------------------------------------
# boundary reconciliation
# ----------------------------------------------------------------------
def _repair_candidates(
    instance: USEPInstance, user_id: int, cap: int
) -> List[int]:
    """The user's Lemma-1 candidates, best utility first (capped).

    Exact scalar filtering — the boundary set is small, so a per-event
    loop is cheaper than any vectorised detour and matches the
    schedulers' own pruning bit for bit.
    """
    budget = instance.users[user_id].budget
    survivors = [
        (event_id, instance.utility(event_id, user_id))
        for event_id in range(instance.num_events)
        if instance.utility(event_id, user_id) > 0.0
        and instance.round_trip_cost(user_id, event_id) <= budget
    ]
    survivors.sort(key=lambda pair: (-pair[1], pair[0]))
    return [event_id for event_id, _ in survivors[:cap]]


def reconcile(
    instance: USEPInstance,
    cell_plans: Sequence[Dict[int, List[int]]],
    cell_user_ids: Sequence[Sequence[int]],
    repair_passes: int = DEFAULT_REPAIR_PASSES,
    repair_candidates: int = DEFAULT_REPAIR_CANDIDATES,
) -> Tuple[Planning, Dict[str, int]]:
    """Merge per-cell plans into one feasible global planning.

    Args:
        instance: The original uncut instance.
        cell_plans: One ``{global user id: [global event ids]}`` plan
            per cell (map local plans through
            :meth:`SubInstance.to_global_plan` first).
        cell_user_ids: The users *attached* to each cell — membership,
            not who got scheduled; it defines the boundary set.
        repair_passes: Upper bound on boundary repair sweeps.
        repair_candidates: Per-user candidate cap per repair sweep.

    Three deterministic stages:

    1. **Verbatim adoption** — a user attached to exactly one cell
       keeps that cell's schedule unchanged (this is what makes the
       single-cell partition byte-identical to the monolithic solve).
       If adopted pairs oversubscribe an event — impossible via the
       honest scatter path, but this function accepts arbitrary
       partial plans — the lowest-margin attendees are evicted into
       the boundary pool until capacity holds.
    2. **Greedy conflict resolution by utility margin** — every pair
       proposed for a boundary user (plus evictees) is attempted in
       descending ``mu(v, u)`` order through the planning's validity
       test (utility, capacity, temporal fit, budget).
    3. **Bounded +RG repair** — up to ``repair_passes`` sweeps over the
       boundary users the merge shortchanged (a proposed pair lost to
       a conflict or an eviction), scanning each one's top
       ``repair_candidates`` Lemma-1 candidates best-first for valid
       insertions the cut made invisible; stops early when a sweep
       inserts nothing.

    Returns:
        ``(planning, stats)``; callers gate the planning through
        :func:`repro.verify.oracle.verify_schedules` before serving it.
    """
    started = time.perf_counter()
    if len(cell_plans) != len(cell_user_ids):
        raise PartitionError(
            f"{len(cell_plans)} cell plans but {len(cell_user_ids)} "
            f"cell membership lists"
        )
    membership = np.zeros(instance.num_users, dtype=int)
    for user_ids in cell_user_ids:
        for user_id in user_ids:
            membership[user_id] += 1
    boundary = set(np.nonzero(membership >= 2)[0].tolist())

    planning = Planning(instance)
    pool: List[Tuple[int, int]] = []  # (event, user) pairs for stage 2
    adopted = 0
    for plan in cell_plans:
        for user_id, event_ids in plan.items():
            if not event_ids:
                continue
            if user_id in boundary:
                pool.extend((event_id, user_id) for event_id in event_ids)
                continue
            ordered = sorted(
                event_ids, key=lambda v: (instance.events[v].start, v)
            )
            planning.set_schedule(user_id, ordered)
            adopted += 1

    # Stage 1b: defensive eviction — restore the capacity invariant
    # before any validity-checked insertion runs.
    evictions = 0
    over_events = [
        event_id
        for event_id in range(instance.num_events)
        if planning.occupancy(event_id)
        > instance.events[event_id].capacity
    ]
    if over_events:
        attendees: Dict[int, List[int]] = {v: [] for v in over_events}
        for event_id, user_id in planning.iter_pairs():
            if event_id in attendees:
                attendees[event_id].append(user_id)
        for event_id in over_events:
            excess = planning.occupancy(event_id) - instance.events[
                event_id
            ].capacity
            # Keep the highest-margin attendees; ties keep smaller ids.
            by_margin = sorted(
                attendees[event_id],
                key=lambda u: (instance.utility(event_id, u), -u),
            )
            for user_id in by_margin[:excess]:
                planning.remove_pair(event_id, user_id)
                pool.append((event_id, user_id))
                evictions += 1

    # Stage 2: boundary pairs, best utility margin first.
    conflicts = 0
    applied = 0
    seen = set()
    unique_pool = []
    for pair in pool:
        if pair not in seen:
            seen.add(pair)
            unique_pool.append(pair)
    unique_pool.sort(
        key=lambda pair: (-instance.utility(pair[0], pair[1]), pair[0], pair[1])
    )
    losers = set()
    for event_id, user_id in unique_pool:
        if event_id in planning.schedule_of(user_id):
            continue
        insertion = planning.plan_valid_insertion(event_id, user_id)
        if insertion is None:
            conflicts += 1
            losers.add(user_id)
            continue
        planning.apply_insertion(user_id, insertion)
        applied += 1

    # Stage 3: bounded +RG repair restricted to the boundary users the
    # merge actually shortchanged — everyone who lost a proposed pair
    # to a conflict or an eviction.  Candidate lists are computed once
    # (they depend only on the instance); what changes between passes
    # is the planning state the validity test reads.
    repair_insertions = 0
    passes_run = 0
    repair_targets = sorted(losers)
    target_candidates = {
        user_id: _repair_candidates(instance, user_id, repair_candidates)
        for user_id in repair_targets
    }
    for _ in range(max(0, repair_passes)):
        if not repair_targets:
            break
        passes_run += 1
        inserted_this_pass = 0
        for user_id in repair_targets:
            for event_id in target_candidates[user_id]:
                if event_id in planning.schedule_of(user_id):
                    continue
                insertion = planning.plan_valid_insertion(event_id, user_id)
                if insertion is not None:
                    planning.apply_insertion(user_id, insertion)
                    inserted_this_pass += 1
        repair_insertions += inserted_this_pass
        if not inserted_this_pass:
            break

    reconcile_ms = int(round(1e3 * (time.perf_counter() - started)))
    stats = {
        "adopted_users": adopted,
        "boundary_users": len(boundary),
        "boundary_pairs": len(unique_pool),
        "boundary_applied": applied,
        "boundary_conflicts": conflicts,
        "evictions": evictions,
        "repair_passes": passes_run,
        "repair_insertions": repair_insertions,
        "reconcile_ms": reconcile_ms,
    }
    prof = instrument.active()
    if prof is not None:
        prof.add("partition_boundary_conflicts", conflicts + evictions)
        prof.add("partition_repair_passes", passes_run)
        prof.add("partition_reconcile_ms", reconcile_ms)
    return planning, stats
