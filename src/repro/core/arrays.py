"""Array-backed compute layer shared by the solver hot paths.

The seed implementations of DeDP/DeDPO/DeGreedy repeat, once per user
and per :func:`~repro.algorithms.dp_single.dp_single` call, work that
only depends on the instance: building per-user cost rows, sorting the
candidate set by end time, and looking event-to-event legs up through a
method call per pair.  :class:`InstanceArrays` precomputes all of it
*once per instance*:

* the ``|V| x |V|`` event-to-event cost matrix (``inf`` = conflict),
  both as a numpy array and as the row lists the scalar kernels index;
* the ``|U| x |V|`` to-event / from-event cost matrices and their sum
  (the Lemma 1 round-trip pruning quantity) — built only when the
  instance caches user costs, so ``cache_user_costs=False`` keeps its
  bounded-memory contract;
* per-event start/end time arrays, the global end-time candidate order
  (ties by start then id) and its inverse permutation, and the global
  ``l_i`` predecessor index table of Equation (4).

Solvers obtain the layer through :meth:`USEPInstance.arrays`, which
caches it on the instance; :func:`~repro.algorithms.base.warm_instance`
materialises it before memory measurement so the arrays are attributed
to the input data, exactly like the seed's lazy cost caches.

Everything here is *derived* data.  The matrices are filled through the
same :class:`~repro.core.costs.CostModel` calls the scalar accessors
make, so array-backed solvers see bit-identical costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instance import USEPInstance


class DPArena:
    """Flat reusable numpy arenas for the batched DP kernels.

    The batch kernel (:mod:`repro.algorithms.dp_batch`) fills a handful
    of ``(group, candidate)`` tables per flush — outbound/return costs,
    negated utilities, budget thresholds, flat gather indices.  Naive
    code would allocate them per call; the arena instead keeps one
    named buffer per table, grown to the largest shape ever requested
    and re-sliced on every call, so steady-state batch execution does
    **no** per-call table allocation.

    Buffers are *not* cleared between calls on purpose (that would cost
    a memset per table); every kernel must fully overwrite the region
    it reads.  ``poison()`` exists so tests can fill all slabs with
    garbage and prove no stale value from a previous user or call leaks
    into a later frontier.
    """

    __slots__ = ("_tables", "bytes_peak")

    def __init__(self) -> None:
        self._tables: Dict[str, np.ndarray] = {}
        #: Total bytes across all named buffers at their largest; the
        #: ``dp_arena_bytes_peak`` profile counter reports it.
        self.bytes_peak = 0

    def table(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``-sized view of the named buffer (contents undefined)."""
        want = 1
        for dim in shape:
            want *= int(dim)
        buf = self._tables.get(name)
        if buf is None or buf.size < want or buf.dtype != np.dtype(dtype):
            buf = np.empty(max(want, 1), dtype=dtype)
            self._tables[name] = buf
            self.bytes_peak = max(
                self.bytes_peak,
                sum(b.nbytes for b in self._tables.values()),
            )
        return buf[:want].reshape(shape)

    def poison(self) -> None:
        """Fill every slab with garbage (tests only — see class docs)."""
        for buf in self._tables.values():
            if buf.dtype.kind == "f":
                buf.fill(np.nan)
            else:
                buf.fill(-1)


class InstanceArrays:
    """Precomputed numpy views of one :class:`USEPInstance`.

    Attributes:
        mu: ``(|V|, |U|)`` utility matrix (read-only view).
        vv: ``(|V|, |V|)`` event-to-event cost matrix; ``inf`` entries
            are conflicting ordered pairs.
        vv_rows: The same costs as a list of row lists — scalar indexing
            on plain lists is what the tight DP loop wants.
        event_start: ``(|V|,)`` start times ``t1``.
        event_end: ``(|V|,)`` end times ``t2``.
        order: ``(|V|,)`` event ids sorted by ``(t2, t1, id)``.
        pos: ``(|V|,)`` inverse of ``order`` (event id -> sorted slot).
        pos_list: ``pos`` as a plain list (fast sort key).
        l_index: ``(|V|,)`` Equation (4) predecessor counts over the
            *global* sorted order.
        to_events: ``(|U|, |V|)`` ``cost(u, v)`` matrix, or None when
            the instance does not cache user costs.
        from_events: ``(|U|, |V|)`` ``cost(v, u)`` matrix, or None.
        round_trip: ``to_events + from_events``, or None.
    """

    __slots__ = (
        "instance",
        "mu",
        "vv",
        "vv_rows",
        "event_start",
        "event_end",
        "order",
        "pos",
        "pos_list",
        "l_index",
        "to_events",
        "from_events",
        "round_trip",
        "budgets",
        "_engine",
        "_dp_arena",
    )

    def __init__(self, instance: "USEPInstance"):
        self.instance = instance
        self._engine = None
        self._dp_arena: Optional[DPArena] = None
        self.mu = instance.utility_matrix()
        #: ``(|U|,)`` travel budgets ``b_u`` (O(|U|), kept regardless of
        #: the user-cost caching knob).
        self.budgets = np.array([u.budget for u in instance.users], dtype=float)

        # Event-to-event legs: reuse the instance's lazily built row
        # lists (they are the cache the scalar accessors read, so the
        # numpy matrix is bit-identical by construction).
        self.vv_rows: List[List[float]] = instance._vv_matrix()
        self.vv = np.asarray(self.vv_rows, dtype=float) if self.vv_rows else np.zeros(
            (0, 0)
        )

        events = instance.events
        self.event_start = np.array([ev.start for ev in events], dtype=float)
        self.event_end = np.array([ev.end for ev in events], dtype=float)
        self.order = np.asarray(instance.sorted_event_ids, dtype=np.intp)
        self.pos = np.asarray(instance.sorted_position, dtype=np.intp)
        self.pos_list: List[int] = list(instance.sorted_position)
        self.l_index = np.asarray(instance.l_index, dtype=np.intp)

        self.to_events: Optional[np.ndarray] = None
        self.from_events: Optional[np.ndarray] = None
        self.round_trip: Optional[np.ndarray] = None
        if instance._cache_user_costs:
            num_users = instance.num_users
            num_events = instance.num_events
            to_m = np.empty((num_users, num_events), dtype=float)
            from_m = np.empty((num_users, num_events), dtype=float)
            for user_id in range(num_users):
                # Fills (or reads) the instance's per-user row caches, so
                # list and array accessors share one source of truth.
                to_m[user_id] = instance.costs_to_events(user_id)
                from_m[user_id] = instance.costs_from_events(user_id)
            self.to_events = to_m
            self.from_events = from_m
            self.round_trip = to_m + from_m

    def engine(self):
        """The instance's incremental scheduling engine (lazily built).

        One :class:`~repro.core.candidates.IncrementalEngine` per
        instance — the Lemma 1 candidate index plus the dirty-set
        schedule memo — shared by every solver run on the instance (and
        by adopters of the cross-cell build cache).
        """
        if self._engine is None:
            from .candidates import IncrementalEngine

            self._engine = IncrementalEngine(self.instance)
        return self._engine

    def dp_arena(self) -> DPArena:
        """The instance's shared :class:`DPArena` (built on first use)."""
        arena = self._dp_arena
        if arena is None:
            arena = self._dp_arena = DPArena()
        return arena

    def user_cost_rows(self, user_id: int) -> Tuple[List[float], List[float]]:
        """``(cost(u, ·), cost(·, u))`` rows as plain lists.

        Served from the instance's row cache when enabled, recomputed
        per call otherwise — identical to the seed solvers' behaviour.
        """
        instance = self.instance
        return (
            instance.costs_to_events(user_id),
            instance.costs_from_events(user_id),
        )


def get_arrays(instance: "USEPInstance") -> InstanceArrays:
    """The instance's cached :class:`InstanceArrays` (built on first use)."""
    arrays = instance._arrays
    if arrays is None:
        arrays = InstanceArrays(instance)
        instance._arrays = arrays
    return arrays
