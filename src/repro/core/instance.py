"""The USEP problem instance.

A :class:`USEPInstance` bundles everything Definition 2 of the paper
needs: the event set ``V`` with capacities/locations/intervals, the user
set ``U`` with locations/budgets, the travel-cost model and the utility
matrix ``mu(v, u) in [0, 1]``.

The instance also owns the derived structures every solver needs:

* events sorted by non-descending end time ``t2`` (the order DeDP
  processes events in),
* the ``l_i`` predecessor index of Equation (4) — for each sorted
  position the last sorted position whose event ends no later than this
  event starts,
* cached cost lookups (the |V| x |V| event matrix is materialised
  lazily; per-user cost rows are cached unless the instance is built
  with ``cache_user_costs=False`` for very large ``|U|``).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .costs import CostModel
from .entities import Event, User
from .exceptions import InvalidInstanceError


class USEPInstance:
    """A USEP problem instance.

    Instances are immutable from the solvers' point of view; the only
    sanctioned way to change one in place is through the typed
    mutations of :mod:`repro.core.deltas`, which keep every derived
    structure (cost caches, :mod:`~repro.core.arrays`, the candidate
    index and schedule memo) consistent and bump :attr:`version`.

    Args:
        events: Events with ids ``0 .. |V|-1`` in order.
        users: Users with ids ``0 .. |U|-1`` in order.
        cost_model: Travel-cost model (grid or matrix based).
        utilities: ``|V| x |U|`` array-like; ``utilities[v][u] = mu(v, u)``.
        cache_user_costs: Keep per-user cost rows after first computation.
            Disable for instances with very many users to bound memory.
        name: Optional label used in experiment reports.
    """

    def __init__(
        self,
        events: Sequence[Event],
        users: Sequence[User],
        cost_model: CostModel,
        utilities,
        cache_user_costs: bool = True,
        name: Optional[str] = None,
    ):
        self.events: Tuple[Event, ...] = tuple(events)
        self.users: Tuple[User, ...] = tuple(users)
        self.cost_model = cost_model
        self._mu = np.asarray(utilities, dtype=float)
        expected_shape = (len(self.events), len(self.users))
        if (
            self._mu.size == 0
            and 0 in expected_shape
            and self._mu.shape != expected_shape
        ):
            # An empty utilities payload ([] for |V| = 0) carries no
            # second dimension; adopt the declared one so degenerate
            # instances round-trip through JSON.
            self._mu = self._mu.reshape(expected_shape)
        self.name = name
        self._cache_user_costs = cache_user_costs
        self._validate()

        self._vv_cost: Optional[List[List[float]]] = None
        self._to_event_cache: Dict[int, List[float]] = {}
        self._from_event_cache: Dict[int, List[float]] = {}
        #: lazily built array layer (see :mod:`repro.core.arrays`)
        self._arrays = None
        #: monotone mutation counter (see :mod:`repro.core.deltas`);
        #: every applied mutation bumps it, so derived caches keyed on
        #: content can tell pre- and post-mutation states apart.
        self._version = 0
        #: memoised content fingerprint (:mod:`repro.core.build_cache`);
        #: mutations reset it to None.
        self._fingerprint_cache: Optional[str] = None
        self._rebuild_event_order()

    def _rebuild_event_order(self) -> None:
        """(Re)derive the end-time ordering and the ``l_i`` index.

        Called from ``__init__`` and again by :mod:`repro.core.deltas`
        after a mutation changes the event set — the same construction
        both times, so a mutated instance's ordering is bit-identical
        to a fresh build on the same content.
        """
        # Events sorted by non-descending end time; ties by start then id
        # so every run is deterministic.
        self.sorted_event_ids: List[int] = sorted(
            range(len(self.events)),
            key=lambda i: (self.events[i].end, self.events[i].start, i),
        )
        #: position of each event id in the sorted order
        self.sorted_position: List[int] = [0] * len(self.events)
        for pos, ev_id in enumerate(self.sorted_event_ids):
            self.sorted_position[ev_id] = pos
        ends = [self.events[i].end for i in self.sorted_event_ids]
        #: ``l_index[pos]`` = number of sorted events ending no later than
        #: the start of the event at ``pos`` (so valid predecessor
        #: positions are ``range(l_index[pos])``), cf. Equation (4).
        self.l_index: List[int] = [
            bisect.bisect_right(ends, self.events[ev_id].start)
            for ev_id in self.sorted_event_ids
        ]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for idx, ev in enumerate(self.events):
            if ev.id != idx:
                raise InvalidInstanceError(
                    f"event ids must be dense 0..|V|-1; position {idx} has id {ev.id}"
                )
        for idx, u in enumerate(self.users):
            if u.id != idx:
                raise InvalidInstanceError(
                    f"user ids must be dense 0..|U|-1; position {idx} has id {u.id}"
                )
        expected = (len(self.events), len(self.users))
        if self._mu.shape != expected:
            raise InvalidInstanceError(
                f"utility matrix shape {self._mu.shape} != (|V|, |U|) = {expected}"
            )
        if self._mu.size and (self._mu.min() < 0.0 or self._mu.max() > 1.0):
            raise InvalidInstanceError("utilities must lie in [0, 1]")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """``|V|``."""
        return len(self.events)

    @property
    def version(self) -> int:
        """Number of mutations applied (0 for a freshly built instance)."""
        return self._version

    @property
    def num_users(self) -> int:
        """``|U|``."""
        return len(self.users)

    def utility(self, event_id: int, user_id: int) -> float:
        """``mu(v, u)``."""
        return float(self._mu[event_id, user_id])

    def utilities_for_user(self, user_id: int) -> List[float]:
        """Utility of every event for one user (list indexed by event id)."""
        return self._mu[:, user_id].tolist()

    def utilities_for_event(self, event_id: int) -> List[float]:
        """Utility of one event for every user (list indexed by user id)."""
        return self._mu[event_id, :].tolist()

    def utility_matrix(self) -> np.ndarray:
        """Read-only view of the full ``mu`` matrix."""
        view = self._mu.view()
        view.setflags(write=False)
        return view

    def clamped_capacity(self, event_id: int) -> int:
        """Capacity clamped to ``|U|`` (line 1 of Algorithms 3 and 4)."""
        return min(self.events[event_id].capacity, len(self.users))

    # ------------------------------------------------------------------
    # cost lookups
    # ------------------------------------------------------------------
    def cost_vv(self, first_id: int, second_id: int) -> float:
        """``cost(v_i, v_j)`` with ``v_i`` attended first; inf if conflicting."""
        matrix = self._vv_matrix()
        return matrix[first_id][second_id]

    def _vv_matrix(self) -> List[List[float]]:
        if self._vv_cost is None:
            model = self.cost_model
            events = self.events
            self._vv_cost = [
                [model.event_to_event(a, b) for b in events] for a in events
            ]
        return self._vv_cost

    def cost_uv(self, user_id: int, event_id: int) -> float:
        """``cost(u, v)`` from home to venue."""
        row = self._to_event_cache.get(user_id)
        if row is not None:
            return row[event_id]
        if self._cache_user_costs:
            return self.costs_to_events(user_id)[event_id]
        # caching disabled: a single model call, not a full-row build
        return self.cost_model.user_to_event(
            self.users[user_id], self.events[event_id]
        )

    def cost_vu(self, event_id: int, user_id: int) -> float:
        """``cost(v, u)`` from venue back home."""
        row = self._from_event_cache.get(user_id)
        if row is not None:
            return row[event_id]
        if self._cache_user_costs:
            return self.costs_from_events(user_id)[event_id]
        return self.cost_model.event_to_user(
            self.events[event_id], self.users[user_id]
        )

    def costs_to_events(self, user_id: int) -> List[float]:
        """Row of ``cost(u, v)`` over all events for one user."""
        row = self._to_event_cache.get(user_id)
        if row is None:
            user = self.users[user_id]
            row = [self.cost_model.user_to_event(user, ev) for ev in self.events]
            if self._cache_user_costs:
                self._to_event_cache[user_id] = row
        return row

    def costs_from_events(self, user_id: int) -> List[float]:
        """Row of ``cost(v, u)`` over all events for one user."""
        row = self._from_event_cache.get(user_id)
        if row is None:
            user = self.users[user_id]
            row = [self.cost_model.event_to_user(ev, user) for ev in self.events]
            if self._cache_user_costs:
                self._from_event_cache[user_id] = row
        return row

    def round_trip_cost(self, user_id: int, event_id: int) -> float:
        """``cost(u, v) + cost(v, u)`` — the Lemma 1 pruning quantity."""
        return self.cost_uv(user_id, event_id) + self.cost_vu(event_id, user_id)

    def arrays(self):
        """The instance's array-backed compute layer (built on first use).

        Returns an :class:`~repro.core.arrays.InstanceArrays` holding
        the precomputed cost/utility matrices and end-time ordering the
        vectorised solver kernels index; cached on the instance so every
        solver shares one copy.
        """
        from .arrays import get_arrays

        return get_arrays(self)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def measured_conflict_ratio(self) -> float:
        """Fraction of event pairs with no feasible attendance order.

        This is the paper's ``cr``: a pair conflicts when neither order
        allows attending both (time overlap, or unreachable both ways).
        """
        n = self.num_events
        if n < 2:
            return 0.0
        matrix = self._vv_matrix()
        conflicts = 0
        for i in range(n):
            row_i = matrix[i]
            for j in range(i + 1, n):
                if math.isinf(row_i[j]) and math.isinf(matrix[j][i]):
                    conflicts += 1
        return conflicts / (n * (n - 1) / 2)

    def describe(self) -> Dict[str, float]:
        """Summary statistics used by experiment logs."""
        caps = [ev.capacity for ev in self.events]
        budgets = [u.budget for u in self.users]
        return {
            "name": self.name or "<unnamed>",
            "num_events": self.num_events,
            "num_users": self.num_users,
            "mean_capacity": sum(caps) / len(caps) if caps else 0.0,
            "mean_budget": sum(budgets) / len(budgets) if budgets else 0.0,
            "positive_utility_fraction": float((self._mu > 0).mean())
            if self._mu.size
            else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"USEPInstance(|V|={self.num_events}, |U|={self.num_users}, "
            f"name={self.name!r})"
        )
