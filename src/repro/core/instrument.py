"""Zero-overhead-when-off instrumentation counters for the solver hot paths.

The incremental scheduling engine (``docs/performance.md``) wants
fine-grained visibility — DP calls actually executed, states expanded,
candidates pruned by the Lemma 1 index, memo hits — but those live in
loops that run millions of times, so they cannot pay for a counter
object when nobody is looking.  The contract here:

* :func:`active` returns the current :class:`ProfileCounters` or
  ``None``.  Hot paths read it **once** per call/solve into a local and
  guard every recording site with ``if prof is not None`` — when
  profiling is off the entire cost is one module-dict read per solve.
* :func:`profiled` is a re-entrant context manager that installs a
  fresh counter set for the duration of a block (used by
  ``Solver.run(profile=True)``) and restores the previous one after.

Counters recorded here are *diagnostics*, not results: they may depend
on cache warmth, process reuse and worker scheduling, so they are kept
out of default sweep rows and checkpoint journals — they only appear
when the user opts in via ``--profile`` (or the bench ledger's
dedicated profiled pass).  Plannings never depend on profiling state.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Prefixes of counter keys this module's users emit; the CLI's
#: ``--profile`` report aggregates exactly these across sweep rows.
PROFILE_KEY_PREFIXES = (
    "dp_",
    "greedy_",
    "sched_",
    "candidates_",
    "index_",
    "build_cache_",
    "partition_",
)


class ProfileCounters(Dict[str, int]):
    """A plain ``{key: int}`` dict with an accumulate helper."""

    def add(self, key: str, amount: int = 1) -> None:
        self[key] = self.get(key, 0) + amount


#: The active counter set; ``None`` means profiling is off.
_active: Optional[ProfileCounters] = None


def active() -> Optional[ProfileCounters]:
    """The installed counter set, or None when profiling is off."""
    return _active


def enable() -> ProfileCounters:
    """Install (and return) a fresh counter set."""
    global _active
    _active = ProfileCounters()
    return _active


def disable() -> None:
    """Turn profiling off."""
    global _active
    _active = None


@contextmanager
def profiled(enabled: bool = True) -> Iterator[Optional[ProfileCounters]]:
    """Profile a block with a fresh counter set; restores the previous
    state (including "off") on exit, so nesting is safe.

    With ``enabled=False`` the block runs under whatever state was
    already installed and yields ``None`` — callers can thread a
    ``profile`` flag without branching around the ``with``.
    """
    global _active
    if not enabled:
        yield None
        return
    previous = _active
    counters = ProfileCounters()
    _active = counters
    try:
        yield counters
    finally:
        _active = previous


def is_profile_key(key: str) -> bool:
    """Whether a row field was emitted by this module's users."""
    return key.startswith(PROFILE_KEY_PREFIXES)
