"""Per-user schedules and the incremental-cost computation of Equation (3).

A :class:`Schedule` is the paper's ``S_u``: the list of events arranged
for one user, kept in increasing time order.  Because a feasible schedule
has pairwise non-overlapping intervals (Definition 1), the time position
of a new event is unique and can be found by binary search.

The central primitive is :meth:`Schedule.plan_insertion`, which returns
the unique insertion slot for an event together with its ``inc_cost`` —
the extra travel expenditure Equation (3) assigns to adding the event:

* empty schedule:      ``cost(u,v) + cost(v,u)``
* new first event:     ``cost(u,v) + cost(v, first) - cost(u, first)``
* between ``a`` and ``b``: ``cost(a,v) + cost(v,b) - cost(a,b)``
* new last event:      ``cost(last,v) + cost(v,u) - cost(last,u)``

Under the triangle inequality all four cases are non-negative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from .exceptions import InfeasibleScheduleError
from .instance import USEPInstance


@dataclass(frozen=True)
class Insertion:
    """A feasible slot for one event in one schedule.

    Attributes:
        event_id: The candidate event.
        position: Index in the schedule's event list where it would land.
        inc_cost: Equation (3) incremental travel cost of the insertion.
    """

    event_id: int
    position: int
    inc_cost: float


class Schedule:
    """The ordered event schedule ``S_u`` of a single user.

    The schedule caches its total travel cost (Constraint 2's left-hand
    side) and keeps events ordered by start time; all mutation goes
    through :meth:`insert` / :meth:`remove` so the cache stays coherent.
    """

    __slots__ = ("user_id", "event_ids", "_total_cost")

    def __init__(self, user_id: int, event_ids: Optional[Iterable[int]] = None):
        self.user_id = user_id
        self.event_ids: List[int] = list(event_ids) if event_ids else []
        self._total_cost: Optional[float] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.event_ids)

    def __contains__(self, event_id: int) -> bool:
        return event_id in self.event_ids

    def __iter__(self):
        return iter(self.event_ids)

    def is_empty(self) -> bool:
        """True iff no event is arranged yet."""
        return not self.event_ids

    def copy(self) -> "Schedule":
        """Independent copy (cost cache carried over)."""
        dup = Schedule(self.user_id, self.event_ids)
        dup._total_cost = self._total_cost
        return dup

    def utility(self, instance: USEPInstance) -> float:
        """``Omega(S_u)``: sum of utilities over arranged events."""
        return sum(instance.utility(v, self.user_id) for v in self.event_ids)

    def total_cost(self, instance: USEPInstance) -> float:
        """Total travel cost of completing the schedule (0 when empty).

        ``cost(u, v_1) + sum(cost(v_{i-1}, v_i)) + cost(v_last, u)``.
        """
        if self._total_cost is None:
            self._total_cost = self._compute_total_cost(instance)
        return self._total_cost

    def _compute_total_cost(self, instance: USEPInstance) -> float:
        if not self.event_ids:
            return 0.0
        u = self.user_id
        cost = instance.cost_uv(u, self.event_ids[0])
        for prev, nxt in zip(self.event_ids, self.event_ids[1:]):
            cost += instance.cost_vv(prev, nxt)
        cost += instance.cost_vu(self.event_ids[-1], u)
        return cost

    def is_time_feasible(self, instance: USEPInstance) -> bool:
        """Definition 1: consecutive events must not overlap."""
        events = instance.events
        return all(
            events[a].interval.precedes(events[b].interval)
            for a, b in zip(self.event_ids, self.event_ids[1:])
        )

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _slot_for(self, instance: USEPInstance, event_id: int) -> Optional[int]:
        """Unique time slot for ``event_id``, or None if it overlaps.

        Linear scan: schedules are short (a user attends a handful of
        events), so binary search would not pay for itself and the scan
        keeps the overlap check in one place.
        """
        events = instance.events
        candidate = events[event_id].interval
        position = 0
        for existing_id in self.event_ids:
            existing = events[existing_id].interval
            if existing.precedes(candidate):
                position += 1
                continue
            if candidate.precedes(existing):
                break
            return None  # overlap with an arranged event
        return position

    def plan_insertion(
        self, instance: USEPInstance, event_id: int
    ) -> Optional[Insertion]:
        """Feasible insertion slot and its Equation (3) ``inc_cost``.

        Returns None when the event overlaps an arranged event or when a
        required travel leg is infeasible (infinite cost).  Budget and
        capacity are *not* checked here — callers combine ``inc_cost``
        with the cached :meth:`total_cost` and the planning-level
        occupancy to decide validity.
        """
        if event_id in self.event_ids:
            return None
        position = self._slot_for(instance, event_id)
        if position is None:
            return None
        u = self.user_id
        if not self.event_ids:
            inc = instance.cost_uv(u, event_id) + instance.cost_vu(event_id, u)
        elif position == 0:
            first = self.event_ids[0]
            inc = (
                instance.cost_uv(u, event_id)
                + instance.cost_vv(event_id, first)
                - instance.cost_uv(u, first)
            )
        elif position == len(self.event_ids):
            last = self.event_ids[-1]
            inc = (
                instance.cost_vv(last, event_id)
                + instance.cost_vu(event_id, u)
                - instance.cost_vu(last, u)
            )
        else:
            before = self.event_ids[position - 1]
            after = self.event_ids[position]
            inc = (
                instance.cost_vv(before, event_id)
                + instance.cost_vv(event_id, after)
                - instance.cost_vv(before, after)
            )
        if math.isinf(inc) or math.isnan(inc):
            return None
        return Insertion(event_id=event_id, position=position, inc_cost=inc)

    def fits_budget(self, instance: USEPInstance, inc_cost: float) -> bool:
        """Would the schedule still satisfy Constraint 2 after adding?"""
        budget = instance.users[self.user_id].budget
        return self.total_cost(instance) + inc_cost <= budget

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, instance: USEPInstance, insertion: Insertion) -> None:
        """Apply a previously planned insertion."""
        expected = self._slot_for(instance, insertion.event_id)
        if expected is None or expected != insertion.position:
            raise InfeasibleScheduleError(
                f"stale insertion of event {insertion.event_id} into schedule "
                f"of user {self.user_id}: slot moved or became infeasible"
            )
        total_before = self.total_cost(instance)
        self.event_ids.insert(insertion.position, insertion.event_id)
        self._total_cost = total_before + insertion.inc_cost

    def insert_event(self, instance: USEPInstance, event_id: int) -> Insertion:
        """Plan and apply in one step; raises if infeasible."""
        insertion = self.plan_insertion(instance, event_id)
        if insertion is None:
            raise InfeasibleScheduleError(
                f"event {event_id} cannot be inserted into schedule of user "
                f"{self.user_id}"
            )
        self.insert(instance, insertion)
        return insertion

    def remove(self, instance: USEPInstance, event_id: int) -> None:
        """Remove an arranged event (used by the framework's second step).

        The cached total cost is recomputed from scratch: with triangle
        inequality the cost can only drop, but matrix cost models are not
        forced to be metric, so we do not assume the delta.
        """
        try:
            self.event_ids.remove(event_id)
        except ValueError:
            raise InfeasibleScheduleError(
                f"event {event_id} is not in schedule of user {self.user_id}"
            ) from None
        self._total_cost = None

    def replace_events(self, instance: USEPInstance, event_ids: Iterable[int]) -> None:
        """Overwrite the schedule wholesale (solver internals)."""
        self.event_ids = list(event_ids)
        self._total_cost = None
