"""Travel-cost models.

Section 2 of the paper defines three kinds of travel cost:

* ``cost(v_i, v_j)`` between two events — a bounded non-negative integer
  when a user can attend ``v_j`` right after ``v_i`` (no time overlap and
  the venue is reachable within the gap), and ``+inf`` otherwise;
* ``cost(u, v)`` from a user's home to an event venue; and
* ``cost(v, u)`` from a venue back home.

All costs satisfy the triangle inequality.  Two concrete models are
provided:

:class:`GridCostModel`
    Locations are points on a plane; cost is the (rounded) Manhattan or
    Euclidean distance — the paper uses Manhattan distance both in its
    running example and for the Meetup datasets.  An optional ``speed``
    turns a too-short time gap between events into ``+inf`` (the
    "cannot attend v_j on time" case); with the default instantaneous
    travel, conflicts are purely interval overlaps, matching the
    synthetic generator of Section 5.1.

:class:`MatrixCostModel`
    Explicit cost matrices.  Used by tests, by the Knapsack reduction of
    Theorem 1, and wherever full control over costs is needed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from .entities import Event, Location, User
from .exceptions import InvalidInstanceError

INFEASIBLE = math.inf


def manhattan(a: Location, b: Location) -> float:
    """L1 distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def euclidean(a: Location, b: Location) -> float:
    """L2 distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


_METRICS = {"manhattan": manhattan, "euclidean": euclidean}


class CostModel(ABC):
    """Travel costs between events and between users and events.

    Implementations must be symmetric in space (``dist(a,b) == dist(b,a)``)
    and satisfy the triangle inequality; event-to-event costs additionally
    encode temporal reachability (``+inf`` when the pair conflicts).
    """

    @abstractmethod
    def event_to_event(self, first: Event, second: Event) -> float:
        """Cost of travelling from ``first`` to ``second``, attending
        ``first`` before ``second``.

        Returns ``math.inf`` when ``second`` cannot be attended after
        ``first`` (time overlap, wrong order, or unreachable in the gap).
        """

    @abstractmethod
    def user_to_event(self, user: User, event: Event) -> float:
        """Cost from the user's home location to the event venue."""

    def event_to_user(self, event: Event, user: User) -> float:
        """Cost from the venue back home; symmetric by default."""
        return self.user_to_event(user, event)


class GridCostModel(CostModel):
    """Distance-based costs on the plane with integer rounding.

    Args:
        metric: ``"manhattan"`` (paper default) or ``"euclidean"``.
        speed: Travel speed in distance units per time unit.  ``None``
            means travel is instantaneous, so any non-overlapping ordered
            pair of events is compatible.  With a finite speed, an
            ordered pair is compatible only if
            ``distance / speed <= gap`` between the events.
        integral: Round costs to the nearest integer (required by the
            DP solvers; on integer grid coordinates Manhattan distances
            are already integral and rounding is a no-op).
    """

    def __init__(
        self,
        metric: str = "manhattan",
        speed: Optional[float] = None,
        integral: bool = True,
    ):
        if metric not in _METRICS:
            raise InvalidInstanceError(
                f"unknown metric {metric!r}; expected one of {sorted(_METRICS)}"
            )
        if speed is not None and speed <= 0:
            raise InvalidInstanceError(f"speed must be positive, got {speed}")
        self.metric = metric
        self.speed = speed
        self.integral = integral
        self._dist = _METRICS[metric]

    def _cost(self, a: Location, b: Location) -> float:
        d = self._dist(a, b)
        return float(round(d)) if self.integral else d

    def event_to_event(self, first: Event, second: Event) -> float:
        if not first.interval.precedes(second.interval):
            return INFEASIBLE
        d = self._cost(first.location, second.location)
        if self.speed is not None:
            gap = first.interval.gap_to(second.interval)
            if self._dist(first.location, second.location) > self.speed * gap:
                return INFEASIBLE
        return d

    def user_to_event(self, user: User, event: Event) -> float:
        return self._cost(user.location, event.location)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridCostModel(metric={self.metric!r}, speed={self.speed}, "
            f"integral={self.integral})"
        )


class MatrixCostModel(CostModel):
    """Costs given as explicit matrices indexed by entity ids.

    ``event_event[i][j]`` is the cost of attending event ``j`` right
    after event ``i`` (``math.inf`` when incompatible);
    ``user_event[u][v]`` is the user→venue cost, which is also used for
    the venue→user return leg unless ``event_user`` is supplied.

    Temporal feasibility is *not* re-derived from intervals here: the
    matrix is the single source of truth, exactly like the paper's
    abstract ``cost`` function.  (``event_to_event`` still returns
    ``inf`` for pairs whose intervals make attendance impossible, to
    keep matrices that forgot to encode a conflict from producing
    infeasible schedules.)
    """

    def __init__(
        self,
        event_event: Sequence[Sequence[float]],
        user_event: Sequence[Sequence[float]],
        event_user: Optional[Sequence[Sequence[float]]] = None,
        check_conflicts: bool = True,
    ):
        self._ee = [list(row) for row in event_event]
        self._ue = [list(row) for row in user_event]
        self._eu = [list(row) for row in event_user] if event_user is not None else None
        self.check_conflicts = check_conflicts
        self._validate()

    def _validate(self) -> None:
        n = len(self._ee)
        for i, row in enumerate(self._ee):
            if len(row) != n:
                raise InvalidInstanceError(
                    f"event_event must be square, row {i} has length {len(row)} != {n}"
                )
            for j, c in enumerate(row):
                if c < 0:
                    raise InvalidInstanceError(
                        f"negative event-event cost at ({i}, {j}): {c}"
                    )
        for u, row in enumerate(self._ue):
            if len(row) != n:
                raise InvalidInstanceError(
                    f"user_event row {u} has length {len(row)}, expected {n}"
                )
            for j, c in enumerate(row):
                if c < 0 or math.isinf(c):
                    raise InvalidInstanceError(
                        f"user-event cost must be finite and non-negative, "
                        f"got {c} at ({u}, {j})"
                    )
        if self._eu is not None and (
            len(self._eu) != n or any(len(r) != len(self._ue) for r in self._eu)
        ):
            raise InvalidInstanceError(
                "event_user must have shape (|V|, |U|) transposed to user_event"
            )

    def event_to_event(self, first: Event, second: Event) -> float:
        if self.check_conflicts and not first.interval.precedes(second.interval):
            return INFEASIBLE
        return self._ee[first.id][second.id]

    def user_to_event(self, user: User, event: Event) -> float:
        return self._ue[user.id][event.id]

    def event_to_user(self, event: Event, user: User) -> float:
        if self._eu is not None:
            return self._eu[event.id][user.id]
        return self._ue[user.id][event.id]


def audit_triangle_inequality(
    model: CostModel,
    events: Sequence[Event],
    users: Sequence[User],
    tolerance: float = 1e-9,
    max_violations: int = 10,
) -> list:
    """Best-effort check that spatial costs satisfy the triangle inequality.

    Only finite event-to-event legs are compared (the ``inf`` entries
    encode temporal conflicts, not geometry).  Returns a list of violation
    descriptions, empty when the model passes.  Intended for tests and for
    validating hand-written :class:`MatrixCostModel` inputs; it is
    O(|V|^3 + |U||V|^2) and should not be run on large instances.
    """
    violations = []
    fin = math.isfinite

    def record(kind, triple, lhs, rhs):
        if len(violations) < max_violations:
            violations.append(
                f"{kind} triangle violated for {triple}: {lhs} > {rhs}"
            )

    for a in events:
        for b in events:
            ab = model.event_to_event(a, b)
            if not fin(ab):
                continue
            for c in events:
                ac = model.event_to_event(a, c)
                cb = model.event_to_event(c, b)
                if fin(ac) and fin(cb) and ab > ac + cb + tolerance:
                    record("event", (a.id, c.id, b.id), ab, ac + cb)
    for u in users:
        for a in events:
            ua = model.user_to_event(u, a)
            for b in events:
                ab = model.event_to_event(a, b)
                ub = model.user_to_event(u, b)
                if fin(ab) and ub > ua + ab + tolerance:
                    record("user", (u.id, a.id, b.id), ub, ua + ab)
    return violations
