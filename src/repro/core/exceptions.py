"""Typed exceptions raised by the USEP core model and solvers.

Keeping a small, explicit exception hierarchy lets callers distinguish
"you gave me a malformed problem" (:class:`InvalidInstanceError`) from
"this particular schedule/planning breaks a USEP constraint"
(:class:`InfeasibleScheduleError`, :class:`ConstraintViolationError`)
without string-matching error messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidInstanceError(ReproError):
    """A :class:`~repro.core.instance.USEPInstance` input is malformed.

    Examples: a negative capacity, a utility outside ``[0, 1]``, an event
    interval with ``t2 <= t1``, or mismatched matrix shapes.
    """


class InfeasibleScheduleError(ReproError):
    """An operation would produce a schedule violating Definition 1.

    Raised when events in a schedule overlap in time, or when an event is
    inserted at a position inconsistent with its interval.
    """


class ConstraintViolationError(ReproError):
    """A planning violates one of the four USEP constraints.

    The ``constraint`` attribute names which one: ``"capacity"``,
    ``"budget"``, ``"feasibility"`` or ``"utility"``.
    """

    def __init__(self, constraint: str, message: str):
        super().__init__(message)
        self.constraint = constraint


class SolverError(ReproError):
    """A solver was invoked on an instance it cannot handle.

    For example, :class:`~repro.algorithms.dp_single.DPSingle` requires
    integer travel costs and budgets (the DP is pseudo-polynomial in the
    budget, exactly as in the paper).
    """
