"""The USEP problem variants of Section 2's Remarks 1 and 2.

Both remarks show that seemingly richer formulations reduce to the
original USEP problem; this module implements those reductions as
instance transformers so any solver handles the variants unchanged.

Remark 1 — *candidate sets*: each user ``u`` supplies ``V_u ⊆ V`` and
may only be arranged events from it.  Reduction: zero out
``mu(v, u)`` for ``v ∉ V_u`` (the utility constraint then bars them).

Remark 2 — *participation fees*: each event ``v`` charges ``fee_v`` on
entry, paid from the user's (monetary) travel budget.  Reduction: fold
the fee into every inbound travel leg — ``cost'(u, v) = cost(u, v) +
fee_v`` and ``cost'(v_i, v_j) = cost(v_i, v_j) + fee_{v_j}`` — leaving
outbound/return legs unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .core.costs import CostModel
from .core.entities import Event, User
from .core.exceptions import InvalidInstanceError
from .core.instance import USEPInstance


def restrict_candidate_sets(
    instance: USEPInstance, candidate_sets: Mapping[int, Iterable[int]]
) -> USEPInstance:
    """Remark 1: build the USEP instance of the candidate-set variant.

    Args:
        instance: The base instance.
        candidate_sets: ``{user_id: iterable of allowed event ids}``.
            Users absent from the mapping keep their full event set.

    Returns:
        A new instance with ``mu(v, u) = 0`` for every ``v ∉ V_u``;
        schedules produced by any solver then satisfy ``S_u ⊆ V_u``.
    """
    utilities = np.array(instance.utility_matrix(), copy=True)
    for user_id, allowed in candidate_sets.items():
        if not 0 <= user_id < instance.num_users:
            raise InvalidInstanceError(f"unknown user id {user_id}")
        allowed = set(allowed)
        for event_id in allowed:
            if not 0 <= event_id < instance.num_events:
                raise InvalidInstanceError(
                    f"unknown event id {event_id} in V_u of user {user_id}"
                )
        mask = np.ones(instance.num_events, dtype=bool)
        mask[list(allowed)] = False
        utilities[mask, user_id] = 0.0
    return USEPInstance(
        instance.events,
        instance.users,
        instance.cost_model,
        utilities,
        cache_user_costs=instance._cache_user_costs,  # noqa: SLF001
        name=f"{instance.name or 'instance'}+candidate-sets",
    )


class _FeeCostModel(CostModel):
    """Wraps a cost model, folding entry fees into inbound legs."""

    def __init__(self, base: CostModel, fees: Sequence[float]):
        self.base = base
        self.fees = list(fees)

    def event_to_event(self, first: Event, second: Event) -> float:
        return self.base.event_to_event(first, second) + self.fees[second.id]

    def user_to_event(self, user: User, event: Event) -> float:
        return self.base.user_to_event(user, event) + self.fees[event.id]

    def event_to_user(self, event: Event, user: User) -> float:
        # Leaving an event charges nothing; only entry carries the fee.
        return self.base.event_to_user(event, user)


def apply_participation_fees(
    instance: USEPInstance, fees: Mapping[int, float]
) -> USEPInstance:
    """Remark 2: build the USEP instance of the participation-fee variant.

    Args:
        instance: The base instance (costs interpreted as money).
        fees: ``{event_id: fee_v >= 0}``; missing events charge nothing.

    Returns:
        A new instance whose cost model adds ``fee_v`` to every inbound
        leg of ``v``; budgets are unchanged, so a user's budget now
        covers travel *plus* fees, exactly as in the paper's remark.
    """
    fee_row = [0.0] * instance.num_events
    for event_id, fee in fees.items():
        if not 0 <= event_id < instance.num_events:
            raise InvalidInstanceError(f"unknown event id {event_id}")
        if fee < 0:
            raise InvalidInstanceError(f"fee must be >= 0, got {fee} for {event_id}")
        fee_row[event_id] = fee
    return USEPInstance(
        instance.events,
        instance.users,
        _FeeCostModel(instance.cost_model, fee_row),
        instance.utility_matrix(),
        cache_user_costs=instance._cache_user_costs,  # noqa: SLF001
        name=f"{instance.name or 'instance'}+fees",
    )
