"""Synthetic USEP instance generation — the Table 7 configuration matrix.

:class:`SyntheticConfig` mirrors the paper's synthetic-dataset knobs
with the paper's defaults (bold in Table 7): ``|V| = 100``,
``|U| = 5000``, utilities Uniform, mean capacity 50 (Uniform), budget
factor ``f_b = 2`` (Uniform), conflict ratio 0.25.  Locations are
integer lattice points so every travel cost is an integer, as the paper
assumes.

Note the paper-scale default ``|U| = 5000`` is what *the paper* ran (in
C++); the experiment harness scales sweeps down by default and exposes
``--scale paper`` for the original grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..core.costs import GridCostModel
from ..core.entities import Event, User
from ..core.exceptions import InvalidInstanceError
from ..core.instance import USEPInstance
from .budgets import sample_budgets
from .conflicts import DEFAULT_HORIZON, generate_intervals
from .distributions import sample_capacities, sample_points, sample_utilities


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic instance (Table 7 knobs).

    Attributes:
        num_events: ``|V|``.
        num_users: ``|U|``.
        mean_capacity: Mean of event capacities ``c_v``.
        capacity_distribution: ``"uniform"`` or ``"normal"``.
        utility_distribution: ``"uniform"``, ``"normal"``, ``"power:a"``.
        budget_factor: The paper's ``f_b``.
        budget_distribution: ``"uniform"`` or ``"normal"``.
        conflict_ratio: Target ``cr``.
        grid_size: Side of the integer location lattice.
        horizon: Scheduling window length (integer time units).
        speed: Optional travel speed; ``None`` = instantaneous travel,
            so conflicts are pure interval overlaps (Section 5.1 model).
        seed: RNG seed; equal configs generate identical instances.
        cache_user_costs: Forwarded to :class:`USEPInstance`; disable
            for very large ``|U|`` scalability runs.
        name: Optional label; auto-derived when omitted.
    """

    num_events: int = 100
    num_users: int = 5000
    mean_capacity: float = 50
    capacity_distribution: str = "uniform"
    utility_distribution: str = "uniform"
    budget_factor: float = 2.0
    budget_distribution: str = "uniform"
    conflict_ratio: float = 0.25
    grid_size: int = 100
    horizon: int = DEFAULT_HORIZON
    speed: Optional[float] = None
    seed: int = 0
    cache_user_costs: bool = True
    name: Optional[str] = None

    def label(self) -> str:
        """Human-readable config label for experiment logs."""
        if self.name:
            return self.name
        return (
            f"V{self.num_events}-U{self.num_users}-c{self.mean_capacity}"
            f"-fb{self.budget_factor}-cr{self.conflict_ratio}-s{self.seed}"
        )

    def with_overrides(self, **changes) -> "SyntheticConfig":
        """Copy with some knobs changed (sweep helper)."""
        return replace(self, **changes)


def generate_instance(config: SyntheticConfig) -> USEPInstance:
    """Materialise a :class:`USEPInstance` from a config, deterministically."""
    if config.num_events <= 0 or config.num_users <= 0:
        raise InvalidInstanceError(
            f"need at least one event and one user, got |V| = {config.num_events}, "
            f"|U| = {config.num_users}"
        )
    # One independent child stream per generated component, so that
    # sweeping one knob (say |U|) leaves the components it does not
    # touch (event locations, intervals, capacities) bit-identical —
    # sweep curves then vary only through the swept parameter.
    streams = np.random.SeedSequence(config.seed).spawn(6)
    rng_event_locs, rng_user_locs, rng_times, rng_caps, rng_mu, rng_budgets = (
        np.random.default_rng(stream) for stream in streams
    )

    event_locs = sample_points(rng_event_locs, config.num_events, config.grid_size)
    user_locs = sample_points(rng_user_locs, config.num_users, config.grid_size)
    intervals = generate_intervals(
        config.num_events, config.conflict_ratio, rng_times, horizon=config.horizon
    )
    capacities = sample_capacities(
        rng_caps, config.num_events, config.mean_capacity, config.capacity_distribution
    )
    utilities = sample_utilities(
        rng_mu, (config.num_events, config.num_users), config.utility_distribution
    )
    budgets = sample_budgets(
        rng_budgets,
        user_locs,
        event_locs,
        config.budget_factor,
        config.budget_distribution,
    )

    events: List[Event] = [
        Event(
            id=i,
            location=(int(event_locs[i, 0]), int(event_locs[i, 1])),
            capacity=int(capacities[i]),
            interval=intervals[i],
        )
        for i in range(config.num_events)
    ]
    users: List[User] = [
        User(
            id=u,
            location=(int(user_locs[u, 0]), int(user_locs[u, 1])),
            budget=int(budgets[u]),
        )
        for u in range(config.num_users)
    ]
    cost_model = GridCostModel(metric="manhattan", speed=config.speed, integral=True)
    return USEPInstance(
        events,
        users,
        cost_model,
        utilities,
        cache_user_costs=config.cache_user_costs,
        name=config.label(),
    )
