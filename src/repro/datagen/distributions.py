"""Seeded samplers for the distributions of Table 7.

The paper varies three generated quantities:

* utility values ``mu(v, u)``: Uniform on [0, 1], Normal(0.5, 0.25)
  clipped to [0, 1], or a Power distribution with parameter 0.5 or 4
  (density ``a * x^(a-1)`` on [0, 1]; ``a < 1`` skews toward 0 — sparse
  interest — and ``a > 1`` skews toward 1);
* event capacities: Uniform or Normal around a configurable mean;
* user budgets: Uniform or Normal per the Section 5.1 rule (implemented
  in :mod:`repro.datagen.budgets`).

Distribution *specs* are strings so experiment configs stay declarative:
``"uniform"``, ``"normal"``, ``"power:0.5"``, ``"power:4"``.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import InvalidInstanceError


def parse_power_param(spec: str) -> float:
    """Extract ``a`` from a ``"power:a"`` spec string."""
    try:
        param = float(spec.split(":", 1)[1])
    except (IndexError, ValueError):
        raise InvalidInstanceError(
            f"power distribution spec must look like 'power:0.5', got {spec!r}"
        ) from None
    if param <= 0:
        raise InvalidInstanceError(f"power parameter must be positive, got {param}")
    return param


def sample_utilities(
    rng: np.random.Generator, shape, spec: str = "uniform"
) -> np.ndarray:
    """Sample a utility array in [0, 1] according to a spec string.

    Args:
        rng: Seeded generator.
        shape: Output shape, typically ``(|V|, |U|)``.
        spec: ``"uniform"`` | ``"normal"`` (mean 0.5, std 0.25, clipped)
            | ``"power:a"`` (density ``a x^(a-1)``, sampled by inverse
            CDF ``U^(1/a)``).
    """
    if spec == "uniform":
        return rng.uniform(0.0, 1.0, size=shape)
    if spec == "normal":
        return np.clip(rng.normal(0.5, 0.25, size=shape), 0.0, 1.0)
    if spec.startswith("power"):
        a = parse_power_param(spec)
        return rng.uniform(0.0, 1.0, size=shape) ** (1.0 / a)
    raise InvalidInstanceError(f"unknown utility distribution spec {spec!r}")


def sample_capacities(
    rng: np.random.Generator, count: int, mean: float, spec: str = "uniform"
) -> np.ndarray:
    """Sample integer event capacities with the given mean.

    ``"uniform"`` draws integers from ``{1, ..., 2*mean - 1}`` (mean
    ``mean``); ``"normal"`` draws from Normal(mean, 0.25 * mean) —
    the std the paper states for its Normal capacity runs — rounded
    and clipped to at least 1.
    """
    if mean < 1:
        raise InvalidInstanceError(f"mean capacity must be >= 1, got {mean}")
    if spec == "uniform":
        high = max(int(round(2 * mean)) - 1, 1)
        return rng.integers(1, high + 1, size=count)
    if spec == "normal":
        draws = rng.normal(mean, 0.25 * mean, size=count)
        return np.maximum(np.rint(draws).astype(int), 1)
    raise InvalidInstanceError(f"unknown capacity distribution spec {spec!r}")


def sample_points(
    rng: np.random.Generator, count: int, grid_size: int
) -> np.ndarray:
    """Integer lattice points uniform on ``[0, grid_size]^2``.

    Integer coordinates keep Manhattan travel costs integral, matching
    the paper's "bounded non-negative integer" cost assumption (and the
    pseudo-polynomial DP).
    """
    return rng.integers(0, grid_size + 1, size=(count, 2))


def sample_clustered_points(
    rng: np.random.Generator,
    count: int,
    grid_size: int,
    num_clusters: int,
    spread: float,
) -> np.ndarray:
    """City-like geography: Gaussian clusters snapped to the lattice.

    Used by the EBSN simulator — venues and homes concentrate around a
    handful of district centres rather than spreading uniformly.
    """
    if count == 0:
        return np.empty((0, 2), dtype=int)
    centres = rng.uniform(0.2 * grid_size, 0.8 * grid_size, size=(num_clusters, 2))
    assignment = rng.integers(0, num_clusters, size=count)
    points = centres[assignment] + rng.normal(0.0, spread, size=(count, 2))
    return np.clip(np.rint(points), 0, grid_size).astype(int)
