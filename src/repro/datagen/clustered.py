"""Clustered-geography instance family — the spatial-partition workload.

Uniform synthetics (:mod:`repro.datagen.synthetic`) spread venues and
homes evenly over the lattice, so every grid cut is equally good and a
spatial partitioner has nothing to exploit.  Real EBSN geography is not
like that: venues concentrate in a handful of districts and users live
near them.  This module generates that shape deterministically:

* **events** land in Gaussian *city clusters* — ``num_clusters``
  centres drawn once, each event assigned to a centre and scattered
  around it with ``event_spread``;
* **users** live near the same centres, with a (wider) ``user_spread``
  — the same district structure seen from the demand side;
* **utilities decay with distance**: interest is local, so
  ``mu(v, u)`` is a seeded base draw scaled by
  ``max(0, 1 - dist(u, v) / utility_radius)``.  Events beyond the
  radius have exactly ``mu = 0`` and are pruned by the positive-utility
  filter — each user's Lemma-1 candidate set stays concentrated in
  their home district, which is what makes grid cells nearly
  independent (see ``docs/partitioning.md``).

Budgets follow the paper's Section 5.1 budget-factor rule unchanged;
intervals and capacities reuse the Table 7 samplers.  Equal configs
generate bit-identical instances (independent child seed streams per
component, same discipline as :func:`~repro.datagen.synthetic.
generate_instance`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..core.costs import GridCostModel
from ..core.entities import Event, User
from ..core.exceptions import InvalidInstanceError
from ..core.instance import USEPInstance
from .budgets import sample_budgets
from .conflicts import DEFAULT_HORIZON, generate_intervals
from .distributions import sample_capacities, sample_utilities


@dataclass(frozen=True)
class ClusteredConfig:
    """Parameters of one clustered-geography instance.

    Attributes:
        num_events: ``|V|``.
        num_users: ``|U|``.
        num_clusters: City districts shared by events and users.
        event_spread: Gaussian std of venue scatter around a centre.
        user_spread: Gaussian std of home scatter (wider than venues).
        utility_radius: Distance at which interest reaches exactly 0;
            ``None`` derives ``grid_size / (2 * num_clusters)`` (a
            district radius — tight enough that most users' candidate
            sets stay within their home district).
        mean_capacity: Mean of event capacities ``c_v``.
        capacity_distribution: ``"uniform"`` or ``"normal"``.
        utility_distribution: Base draw before the distance decay.
        budget_factor: The paper's ``f_b``.
        budget_distribution: ``"uniform"`` or ``"normal"``.
        conflict_ratio: Target ``cr``.
        grid_size: Side of the integer location lattice.
        horizon: Scheduling window length.
        seed: RNG seed; equal configs generate identical instances.
        cache_user_costs: Forwarded to :class:`USEPInstance`.
        name: Optional label; auto-derived when omitted.
    """

    num_events: int = 100
    num_users: int = 5000
    num_clusters: int = 4
    event_spread: float = 6.0
    user_spread: float = 10.0
    utility_radius: Optional[float] = None
    mean_capacity: float = 50
    capacity_distribution: str = "uniform"
    utility_distribution: str = "uniform"
    budget_factor: float = 2.0
    budget_distribution: str = "uniform"
    conflict_ratio: float = 0.25
    grid_size: int = 100
    horizon: int = DEFAULT_HORIZON
    seed: int = 0
    cache_user_costs: bool = True
    name: Optional[str] = None

    def label(self) -> str:
        """Human-readable config label for experiment logs."""
        if self.name:
            return self.name
        return (
            f"clustered-V{self.num_events}-U{self.num_users}"
            f"-k{self.num_clusters}-r{self.effective_radius():g}"
            f"-fb{self.budget_factor}-s{self.seed}"
        )

    def with_overrides(self, **changes) -> "ClusteredConfig":
        """Copy with some knobs changed (sweep helper)."""
        return replace(self, **changes)

    def effective_radius(self) -> float:
        """The utility decay radius actually applied."""
        if self.utility_radius is not None:
            return float(self.utility_radius)
        return self.grid_size / (2 * max(1, self.num_clusters))


def _clustered_points(
    rng: np.random.Generator,
    centres: np.ndarray,
    count: int,
    spread: float,
    grid_size: int,
) -> np.ndarray:
    """Lattice points scattered around shared district centres."""
    if count == 0:
        return np.empty((0, 2), dtype=int)
    assignment = rng.integers(0, len(centres), size=count)
    points = centres[assignment] + rng.normal(0.0, spread, size=(count, 2))
    return np.clip(np.rint(points), 0, grid_size).astype(int)


def generate_clustered_instance(config: ClusteredConfig) -> USEPInstance:
    """Materialise a clustered-geography :class:`USEPInstance`."""
    if config.num_events <= 0 or config.num_users <= 0:
        raise InvalidInstanceError(
            f"need at least one event and one user, got |V| = "
            f"{config.num_events}, |U| = {config.num_users}"
        )
    if config.num_clusters <= 0:
        raise InvalidInstanceError(
            f"need at least one cluster, got {config.num_clusters}"
        )
    radius = config.effective_radius()
    if radius <= 0:
        raise InvalidInstanceError(
            f"utility radius must be positive, got {radius}"
        )
    # One child stream per component (same discipline as synthetic.py):
    # sweeping |U| leaves event geography, intervals and capacities
    # bit-identical.
    streams = np.random.SeedSequence(config.seed).spawn(7)
    (
        rng_centres,
        rng_event_locs,
        rng_user_locs,
        rng_times,
        rng_caps,
        rng_mu,
        rng_budgets,
    ) = (np.random.default_rng(stream) for stream in streams)

    centres = rng_centres.uniform(
        0.15 * config.grid_size,
        0.85 * config.grid_size,
        size=(config.num_clusters, 2),
    )
    event_locs = _clustered_points(
        rng_event_locs, centres, config.num_events, config.event_spread,
        config.grid_size,
    )
    user_locs = _clustered_points(
        rng_user_locs, centres, config.num_users, config.user_spread,
        config.grid_size,
    )
    intervals = generate_intervals(
        config.num_events, config.conflict_ratio, rng_times,
        horizon=config.horizon,
    )
    capacities = sample_capacities(
        rng_caps, config.num_events, config.mean_capacity,
        config.capacity_distribution,
    )
    base = sample_utilities(
        rng_mu, (config.num_events, config.num_users),
        config.utility_distribution,
    )
    # Manhattan distance per (event, user) pair, then the linear decay:
    # interest is zero at and beyond the radius, full at distance 0.
    dists = np.abs(
        event_locs[:, None, :].astype(float) - user_locs[None, :, :]
    ).sum(axis=2)
    decay = np.maximum(0.0, 1.0 - dists / radius)
    utilities = base * decay
    budgets = sample_budgets(
        rng_budgets,
        user_locs,
        event_locs,
        config.budget_factor,
        config.budget_distribution,
    )

    events: List[Event] = [
        Event(
            id=i,
            location=(int(event_locs[i, 0]), int(event_locs[i, 1])),
            capacity=int(capacities[i]),
            interval=intervals[i],
        )
        for i in range(config.num_events)
    ]
    users: List[User] = [
        User(
            id=u,
            location=(int(user_locs[u, 0]), int(user_locs[u, 1])),
            budget=int(budgets[u]),
        )
        for u in range(config.num_users)
    ]
    cost_model = GridCostModel(metric="manhattan", speed=None, integral=True)
    return USEPInstance(
        events,
        users,
        cost_model,
        utilities,
        cache_user_costs=config.cache_user_costs,
        name=config.label(),
    )
