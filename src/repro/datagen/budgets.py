"""Travel-budget generation — the budget factor rule of Section 5.1.

The paper controls budgets through a universal *budget factor* ``f_b``:

    b_u ~ Uniform[ 2 * min_v cost(u, v),
                   2 * min_v cost(u, v) + 2 * mid * f_b ]

with ``mid = (max_{v,v'} cost(v, v') + min_{v,v'} cost(v, v')) / 2``.
The lower bound guarantees every user can afford a round trip to their
nearest venue; ``f_b`` scales how much further they can roam.

For the Normal variant (Figure 3, last column) the paper uses mean
``2 * min_v cost(u, v) + mid * f_b`` and std ``0.25 * mean``.

``mid`` is computed over *spatial* venue-to-venue distances (ignoring
temporal compatibility): the cost matrix proper contains ``+inf`` for
conflicting pairs — all of them when ``cr = 1`` — which would make the
paper's formula degenerate, while the spatial distances always give the
intended scale of the city.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exceptions import InvalidInstanceError

_CHUNK = 2048  # users per vectorised distance block


def pairwise_manhattan_mid(event_locations: np.ndarray) -> float:
    """``mid``: half of (max + min) off-diagonal venue distance."""
    n = len(event_locations)
    if n < 2:
        return 0.0
    locs = np.asarray(event_locations, dtype=float)
    dists = np.abs(locs[:, None, :] - locs[None, :, :]).sum(axis=2)
    off_diag = dists[~np.eye(n, dtype=bool)]
    return float(off_diag.max() + off_diag.min()) / 2.0


def min_event_distance_per_user(
    user_locations: np.ndarray, event_locations: np.ndarray
) -> np.ndarray:
    """``min_v cost(u, v)`` for every user (Manhattan), chunked over users."""
    users = np.asarray(user_locations, dtype=float)
    events = np.asarray(event_locations, dtype=float)
    if len(events) == 0:
        return np.zeros(len(users))
    mins = np.empty(len(users))
    for lo in range(0, len(users), _CHUNK):
        block = users[lo : lo + _CHUNK]
        dists = np.abs(block[:, None, :] - events[None, :, :]).sum(axis=2)
        mins[lo : lo + _CHUNK] = dists.min(axis=1)
    return mins


def sample_budgets(
    rng: np.random.Generator,
    user_locations: Sequence,
    event_locations: Sequence,
    budget_factor: float,
    spec: str = "uniform",
) -> np.ndarray:
    """Integer budgets per user following the Section 5.1 rule.

    Args:
        rng: Seeded generator.
        user_locations: ``(|U|, 2)`` integer coordinates.
        event_locations: ``(|V|, 2)`` integer coordinates.
        budget_factor: The paper's ``f_b``.
        spec: ``"uniform"`` (paper default) or ``"normal"``.
    """
    if budget_factor < 0:
        raise InvalidInstanceError(f"budget factor must be >= 0, got {budget_factor}")
    user_locs = np.asarray(user_locations)
    event_locs = np.asarray(event_locations)
    base = 2.0 * min_event_distance_per_user(user_locs, event_locs)
    mid = pairwise_manhattan_mid(event_locs)
    if spec == "uniform":
        budgets = rng.uniform(base, base + 2.0 * mid * budget_factor)
    elif spec == "normal":
        mean = base + mid * budget_factor
        budgets = rng.normal(mean, 0.25 * np.maximum(mean, 1e-9))
        budgets = np.maximum(budgets, base)  # keep the nearest venue reachable
    else:
        raise InvalidInstanceError(f"unknown budget distribution spec {spec!r}")
    return np.floor(budgets).astype(int)
