"""Synthetic workload generation reproducing Table 7 of the paper."""

from .budgets import (
    min_event_distance_per_user,
    pairwise_manhattan_mid,
    sample_budgets,
)
from .conflicts import DEFAULT_HORIZON, generate_intervals
from .distributions import (
    sample_capacities,
    sample_clustered_points,
    sample_points,
    sample_utilities,
)
from .synthetic import SyntheticConfig, generate_instance

__all__ = [
    "DEFAULT_HORIZON",
    "SyntheticConfig",
    "generate_instance",
    "generate_intervals",
    "min_event_distance_per_user",
    "pairwise_manhattan_mid",
    "sample_budgets",
    "sample_capacities",
    "sample_clustered_points",
    "sample_points",
    "sample_utilities",
]
