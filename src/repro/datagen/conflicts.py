"""Event time-interval generation with a controlled conflict ratio.

Section 5.1 defines the *conflict ratio* ``cr`` as the fraction of event
pairs that are spatio-temporally conflicting, and generates times "based
on the conflict ratio".  We realise that with a closed-form start:
independent uniform starts over a horizon ``H`` with a common duration
``d`` give a pairwise overlap probability

    p(d) = 2x - x^2,  where x = d / (H - d),

so a target ``cr`` is hit by ``x = 1 - sqrt(1 - cr)``.  Because the
sampled intervals' *measured* ratio fluctuates around the target, the
generator then calibrates ``d`` by bisection against the measured ratio
on the fixed start draws — the result is deterministic per seed and
accurate to ``tolerance``.

Edge cases: ``cr = 0`` produces strictly sequential slots (no pair
overlaps, every pair attendable in order) and ``cr = 1`` gives all
events the same interval (each user can attend at most one event, as
discussed for Figure 2d).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.timeutils import TimeInterval, conflict_ratio

#: Default scheduling horizon, in abstract integer time units.
DEFAULT_HORIZON = 10_000


def _intervals_for_duration(
    start_fractions: np.ndarray, duration: int, horizon: int
) -> List[TimeInterval]:
    """Place fixed start draws for a given common duration."""
    span = max(horizon - duration, 0)
    starts = np.rint(start_fractions * span).astype(int)
    return [TimeInterval(int(s), int(s) + duration) for s in starts]


def generate_intervals(
    num_events: int,
    cr: float,
    rng: np.random.Generator,
    horizon: int = DEFAULT_HORIZON,
    calibrate: bool = True,
    tolerance: float = 0.02,
) -> List[TimeInterval]:
    """Generate ``num_events`` intervals whose overlap ratio targets ``cr``.

    Args:
        num_events: Number of intervals.
        cr: Target conflict ratio in [0, 1].
        rng: Seeded generator (start positions are drawn once; the
            calibration only adjusts the common duration, so results are
            deterministic).
        horizon: Length of the scheduling window.
        calibrate: Bisect the duration against the *measured* ratio.
        tolerance: Acceptable |measured - target| when calibrating.
    """
    if not 0.0 <= cr <= 1.0:
        raise InvalidInstanceError(f"conflict ratio must be in [0, 1], got {cr}")
    if num_events <= 0:
        return []
    if num_events == 1:
        return [TimeInterval(0, max(horizon // 10, 1))]

    if cr >= 1.0:
        return [TimeInterval(0, horizon) for _ in range(num_events)]
    if cr <= 0.0:
        # Sequential slots with positive gaps: zero overlap by design.
        slot = horizon // num_events
        duration = max(slot - max(slot // 4, 1), 1)
        return [
            TimeInterval(i * slot, i * slot + duration) for i in range(num_events)
        ]

    start_fractions = rng.uniform(0.0, 1.0, size=num_events)
    x = 1.0 - math.sqrt(1.0 - cr)
    duration = max(int(round(x * horizon / (1.0 + x))), 1)
    intervals = _intervals_for_duration(start_fractions, duration, horizon)
    if not calibrate:
        return intervals

    measured = conflict_ratio(intervals)
    if abs(measured - cr) <= tolerance:
        return intervals
    # Measured ratio is non-decreasing in the duration (for fixed start
    # fractions it is "almost" monotone; bisection converges in practice
    # and we keep the best iterate seen).
    lo, hi = 1, horizon - 1
    best = (abs(measured - cr), intervals)
    for _ in range(40):
        if measured < cr:
            lo = duration + 1
        else:
            hi = duration - 1
        if lo > hi:
            break
        duration = (lo + hi) // 2
        intervals = _intervals_for_duration(start_fractions, duration, horizon)
        measured = conflict_ratio(intervals)
        error = abs(measured - cr)
        if error < best[0]:
            best = (error, intervals)
        if error <= tolerance:
            break
    return best[1]
