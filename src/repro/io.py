"""Instance and planning (de)serialisation.

JSON is the interchange format: instances round-trip completely
(events, users, utilities, and either cost-model family), so workloads
generated here can be archived, diffed, or consumed by other tools, and
recorded plannings can be re-validated later against their instance.

``math.inf`` appears in event-to-event matrices (temporal conflicts);
it is encoded as the string ``"inf"`` for strict-JSON compatibility.

Deserialisation here is the boundary between untrusted bytes and the
typed core model: the planning service feeds request bodies straight
into :func:`instance_from_dict`.  Every structural defect — a missing
key, a wrong type, a ``"1e9"`` string where a number belongs, a
negative capacity — is therefore reported as
:class:`~repro.core.exceptions.InvalidInstanceError` carrying the JSON
path of the offending value (``events[3].capacity``), never a raw
``KeyError``/``TypeError``/``ValueError`` traceback.  The mutation-fuzz
suite (``tests/test_io_fuzz.py``) holds that contract.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .core.costs import GridCostModel, MatrixCostModel
from .core.deltas import (
    AddEvent,
    AddUser,
    BudgetChange,
    CapacityChange,
    DropEvent,
    DropUser,
    Mutation,
    UtilityChange,
)
from .core.entities import Event, User
from .core.exceptions import InvalidInstanceError
from .core.instance import USEPInstance
from .core.planning import Planning, planning_from_dict
from .core.timeutils import TimeInterval

_FORMAT_VERSION = 1


def _encode_cost(value: float):
    return "inf" if math.isinf(value) else value


# -- hardened decoding helpers ------------------------------------------
#
# Each helper checks one structural expectation and raises
# InvalidInstanceError naming the JSON path on failure, so a malformed
# payload pinpoints its own defect instead of surfacing as a traceback
# three frames deep in a dataclass constructor.


def _type_name(value) -> str:
    return type(value).__name__


def _invalid(path: str, message: str) -> InvalidInstanceError:
    return InvalidInstanceError(f"{path}: {message}")


def _as_object(value, path: str) -> Dict:
    if not isinstance(value, dict):
        raise _invalid(path, f"expected an object, got {_type_name(value)}")
    return value


def _as_array(value, path: str) -> List:
    if not isinstance(value, (list, tuple)):
        raise _invalid(path, f"expected an array, got {_type_name(value)}")
    return list(value)


def _require(mapping: Dict, key: str, path: str):
    if key not in mapping:
        raise _invalid(f"{path}.{key}", "missing required key")
    return mapping[key]


def _as_number(value, path: str, minimum: Optional[float] = None) -> float:
    # bool is an int subclass; `true` where a number belongs is a bug.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _invalid(path, f"expected a number, got {_type_name(value)}")
    number = float(value)
    if math.isnan(number):
        raise _invalid(path, "NaN is not a valid value")
    if minimum is not None and number < minimum:
        raise _invalid(path, f"must be >= {minimum}, got {number}")
    return number


def _as_int(value, path: str, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise _invalid(
                path, f"expected an integer, got {_type_name(value)}"
            )
    if minimum is not None and value < minimum:
        raise _invalid(path, f"must be >= {minimum}, got {value}")
    return value


def _as_location(value, path: str) -> Tuple[float, float]:
    coords = _as_array(value, path)
    if len(coords) != 2:
        raise _invalid(path, f"expected [x, y], got {len(coords)} element(s)")
    return (
        _as_number(coords[0], f"{path}[0]"),
        _as_number(coords[1], f"{path}[1]"),
    )


def _decode_cost(value, path: str = "cost") -> float:
    """One travel-cost entry: a non-negative number or the string "inf"."""
    if value == "inf":
        return math.inf
    if isinstance(value, str):
        raise _invalid(
            path, f'expected a number or "inf", got the string {value!r}'
        )
    return _as_number(value, path, minimum=0.0)


def _cost_matrix(value, path: str) -> List[List[float]]:
    rows = _as_array(value, path)
    return [
        [
            _decode_cost(cell, f"{path}[{i}][{j}]")
            for j, cell in enumerate(_as_array(row, f"{path}[{i}]"))
        ]
        for i, row in enumerate(rows)
    ]


def _cost_model_to_dict(model) -> Dict:
    if isinstance(model, GridCostModel):
        return {
            "type": "grid",
            "metric": model.metric,
            "speed": model.speed,
            "integral": model.integral,
        }
    if isinstance(model, MatrixCostModel):
        return {
            "type": "matrix",
            "event_event": [[_encode_cost(c) for c in row] for row in model._ee],
            "user_event": [list(row) for row in model._ue],
            "event_user": (
                [list(row) for row in model._eu] if model._eu is not None else None
            ),
            "check_conflicts": model.check_conflicts,
        }
    raise InvalidInstanceError(
        f"cannot serialise cost model of type {type(model).__name__}; "
        "only GridCostModel and MatrixCostModel are supported"
    )


def _cost_model_from_dict(data, path: str = "cost_model"):
    data = _as_object(data, path)
    kind = data.get("type")
    if kind == "grid":
        metric = _require(data, "metric", path)
        if not isinstance(metric, str):
            raise _invalid(
                f"{path}.metric",
                f"expected a string, got {_type_name(metric)}",
            )
        speed = data.get("speed")
        if speed is not None:
            speed = _as_number(speed, f"{path}.speed")
        integral = data.get("integral", True)
        if not isinstance(integral, bool):
            raise _invalid(
                f"{path}.integral",
                f"expected a boolean, got {_type_name(integral)}",
            )
        try:
            return GridCostModel(metric=metric, speed=speed, integral=integral)
        except InvalidInstanceError as exc:
            raise _invalid(path, str(exc)) from exc
    if kind == "matrix":
        check = data.get("check_conflicts", True)
        if not isinstance(check, bool):
            raise _invalid(
                f"{path}.check_conflicts",
                f"expected a boolean, got {_type_name(check)}",
            )
        event_user = data.get("event_user")
        try:
            return MatrixCostModel(
                _cost_matrix(
                    _require(data, "event_event", path), f"{path}.event_event"
                ),
                _cost_matrix(
                    _require(data, "user_event", path), f"{path}.user_event"
                ),
                event_user=(
                    None
                    if event_user is None
                    else _cost_matrix(event_user, f"{path}.event_user")
                ),
                check_conflicts=check,
            )
        except InvalidInstanceError:
            raise
        except (TypeError, ValueError, IndexError) as exc:
            raise _invalid(path, f"malformed matrix cost model: {exc}") from exc
    raise _invalid(f"{path}.type", f"unknown cost model type {kind!r}")


def instance_to_dict(instance: USEPInstance) -> Dict:
    """Serialise an instance to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": instance.name,
        "events": [
            {
                "id": ev.id,
                "location": list(ev.location),
                "capacity": ev.capacity,
                "start": ev.start,
                "end": ev.end,
                "name": ev.name,
            }
            for ev in instance.events
        ],
        "users": [
            {
                "id": u.id,
                "location": list(u.location),
                "budget": u.budget,
                "name": u.name,
            }
            for u in instance.users
        ],
        "cost_model": _cost_model_to_dict(instance.cost_model),
        "utilities": instance.utility_matrix().tolist(),
    }


def _event_from_dict(data, path: str) -> Event:
    data = _as_object(data, path)
    name = data.get("name")
    if name is not None and not isinstance(name, str):
        raise _invalid(f"{path}.name", f"expected a string, got {_type_name(name)}")
    start = _as_number(_require(data, "start", path), f"{path}.start")
    end = _as_number(_require(data, "end", path), f"{path}.end")
    try:
        return Event(
            id=_as_int(_require(data, "id", path), f"{path}.id", minimum=0),
            location=_as_location(_require(data, "location", path), f"{path}.location"),
            capacity=_as_int(
                _require(data, "capacity", path), f"{path}.capacity", minimum=1
            ),
            interval=TimeInterval(start, end),
            name=name,
        )
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise _invalid(path, str(exc)) from exc


def _user_from_dict(data, path: str) -> User:
    data = _as_object(data, path)
    name = data.get("name")
    if name is not None and not isinstance(name, str):
        raise _invalid(f"{path}.name", f"expected a string, got {_type_name(name)}")
    try:
        return User(
            id=_as_int(_require(data, "id", path), f"{path}.id", minimum=0),
            location=_as_location(_require(data, "location", path), f"{path}.location"),
            budget=_as_number(
                _require(data, "budget", path), f"{path}.budget", minimum=0.0
            ),
            name=name,
        )
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise _invalid(path, str(exc)) from exc


def instance_from_dict(data) -> USEPInstance:
    """Rebuild an instance from :func:`instance_to_dict` output.

    Hardened against untrusted input: any structural defect raises
    :class:`InvalidInstanceError` with the JSON path of the offending
    value; no other exception type escapes.
    """
    data = _as_object(data, "instance")
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise InvalidInstanceError(
            f"unsupported instance format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    name = data.get("name")
    if name is not None and not isinstance(name, str):
        raise _invalid("name", f"expected a string, got {_type_name(name)}")
    events = [
        _event_from_dict(entry, f"events[{i}]")
        for i, entry in enumerate(_as_array(_require(data, "events", "instance"), "events"))
    ]
    users = [
        _user_from_dict(entry, f"users[{i}]")
        for i, entry in enumerate(_as_array(_require(data, "users", "instance"), "users"))
    ]
    utilities = _as_array(_require(data, "utilities", "instance"), "utilities")
    for i, row in enumerate(utilities):
        row = _as_array(row, f"utilities[{i}]")
        utilities[i] = [
            _as_number(cell, f"utilities[{i}][{j}]") for j, cell in enumerate(row)
        ]
    model = _cost_model_from_dict(_require(data, "cost_model", "instance"))
    try:
        return USEPInstance(events, users, model, utilities, name=name)
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError, KeyError, IndexError) as exc:
        # USEPInstance cross-validates shapes/ranges; anything it trips
        # over that is not already typed is still the caller's payload.
        raise InvalidInstanceError(
            f"instance: inconsistent payload: {exc}"
        ) from exc


def save_instance(instance: USEPInstance, path: str) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w") as handle:
        json.dump(instance_to_dict(instance), handle)


def load_instance(path: str) -> USEPInstance:
    """Read an instance from a JSON file."""
    with open(path) as handle:
        return instance_from_dict(json.load(handle))


# -- mutations (see repro.core.deltas) ----------------------------------


def mutation_to_dict(mutation: Mutation) -> Dict:
    """Serialise a typed mutation to its JSON wire form (``op``-tagged)."""
    if isinstance(mutation, AddUser):
        payload: Dict = {
            "op": "add_user",
            "location": [mutation.location[0], mutation.location[1]],
            "budget": mutation.budget,
            "utilities": list(mutation.utilities),
        }
        if mutation.name is not None:
            payload["name"] = mutation.name
        return payload
    if isinstance(mutation, DropUser):
        return {"op": "drop_user", "user_id": mutation.user_id}
    if isinstance(mutation, AddEvent):
        payload = {
            "op": "add_event",
            "location": [mutation.location[0], mutation.location[1]],
            "capacity": mutation.capacity,
            "start": mutation.start,
            "end": mutation.end,
            "utilities": list(mutation.utilities),
        }
        if mutation.name is not None:
            payload["name"] = mutation.name
        return payload
    if isinstance(mutation, DropEvent):
        return {"op": "drop_event", "event_id": mutation.event_id}
    if isinstance(mutation, CapacityChange):
        return {
            "op": "capacity_change",
            "event_id": mutation.event_id,
            "capacity": mutation.capacity,
        }
    if isinstance(mutation, BudgetChange):
        return {
            "op": "budget_change",
            "user_id": mutation.user_id,
            "budget": mutation.budget,
        }
    if isinstance(mutation, UtilityChange):
        return {
            "op": "utility_change",
            "event_id": mutation.event_id,
            "user_id": mutation.user_id,
            "utility": mutation.utility,
        }
    raise InvalidInstanceError(
        f"cannot serialise mutation of type {type(mutation).__name__}"
    )


def _utilities_from(data: Dict, path: str) -> Tuple[float, ...]:
    raw = _as_array(_require(data, "utilities", path), f"{path}.utilities")
    return tuple(
        _as_number(cell, f"{path}.utilities[{i}]") for i, cell in enumerate(raw)
    )


def _name_from(data: Dict, path: str) -> Optional[str]:
    name = data.get("name")
    if name is not None and not isinstance(name, str):
        raise _invalid(f"{path}.name", f"expected a string, got {_type_name(name)}")
    return name


def mutation_from_dict(data, path: str = "mutation") -> Mutation:
    """Rebuild a typed mutation from :func:`mutation_to_dict` output.

    Hardened like :func:`instance_from_dict`: any structural defect
    raises :class:`InvalidInstanceError` with the JSON path of the
    offending value.  Range checks against a concrete instance (id in
    range, utility vector length) happen at *application* time in
    :func:`repro.core.deltas.apply_mutation` — the wire layer cannot
    know the target content.
    """
    data = _as_object(data, path)
    op = _require(data, "op", path)
    if not isinstance(op, str):
        raise _invalid(f"{path}.op", f"expected a string, got {_type_name(op)}")
    if op == "add_user":
        return AddUser(
            location=_as_location(_require(data, "location", path), f"{path}.location"),
            budget=_as_number(
                _require(data, "budget", path), f"{path}.budget", minimum=0.0
            ),
            utilities=_utilities_from(data, path),
            name=_name_from(data, path),
        )
    if op == "drop_user":
        return DropUser(
            user_id=_as_int(
                _require(data, "user_id", path), f"{path}.user_id", minimum=0
            )
        )
    if op == "add_event":
        return AddEvent(
            location=_as_location(_require(data, "location", path), f"{path}.location"),
            capacity=_as_int(
                _require(data, "capacity", path), f"{path}.capacity", minimum=1
            ),
            start=_as_number(_require(data, "start", path), f"{path}.start"),
            end=_as_number(_require(data, "end", path), f"{path}.end"),
            utilities=_utilities_from(data, path),
            name=_name_from(data, path),
        )
    if op == "drop_event":
        return DropEvent(
            event_id=_as_int(
                _require(data, "event_id", path), f"{path}.event_id", minimum=0
            )
        )
    if op == "capacity_change":
        return CapacityChange(
            event_id=_as_int(
                _require(data, "event_id", path), f"{path}.event_id", minimum=0
            ),
            capacity=_as_int(
                _require(data, "capacity", path), f"{path}.capacity", minimum=1
            ),
        )
    if op == "budget_change":
        return BudgetChange(
            user_id=_as_int(
                _require(data, "user_id", path), f"{path}.user_id", minimum=0
            ),
            budget=_as_number(
                _require(data, "budget", path), f"{path}.budget", minimum=0.0
            ),
        )
    if op == "utility_change":
        return UtilityChange(
            event_id=_as_int(
                _require(data, "event_id", path), f"{path}.event_id", minimum=0
            ),
            user_id=_as_int(
                _require(data, "user_id", path), f"{path}.user_id", minimum=0
            ),
            utility=_as_number(_require(data, "utility", path), f"{path}.utility"),
        )
    raise _invalid(f"{path}.op", f"unknown mutation op {op!r}")


def mutations_from_list(data, path: str = "mutations") -> List[Mutation]:
    """Decode a JSON array of mutation objects."""
    return [
        mutation_from_dict(entry, f"{path}[{i}]")
        for i, entry in enumerate(_as_array(data, path))
    ]


def save_mutation_stream(mutations: Sequence[Mutation], path: str) -> None:
    """Write mutations as JSONL — one mutation object per line."""
    with open(path, "w") as handle:
        for mutation in mutations:
            handle.write(json.dumps(mutation_to_dict(mutation)))
            handle.write("\n")


def load_mutation_stream(path: str) -> List[Mutation]:
    """Read a JSONL mutation stream (blank lines ignored)."""
    mutations: List[Mutation] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise InvalidInstanceError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            mutations.append(mutation_from_dict(data, f"{path}:{lineno}"))
    return mutations


def canonical_planning_bytes(planning: Planning) -> bytes:
    """Canonical byte encoding of a planning, for bit-identity checks.

    Sorted keys, compact separators, ``repr``-exact floats (json uses
    ``repr`` for doubles, so two plannings differing in any utility
    bit encode differently).  The churn differential fuzzer and the
    bench churn scale compare delta re-solves against cold solves on
    these bytes.
    """
    payload = {
        "schedules": {
            str(user_id): list(event_ids)
            for user_id, event_ids in sorted(planning.as_dict().items())
        },
        "total_utility": planning.total_utility(),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def planning_to_dict(planning: Planning) -> Dict:
    """Serialise a planning (schedules only; pair with its instance)."""
    return {
        "format_version": _FORMAT_VERSION,
        "instance_name": planning.instance.name,
        "total_utility": planning.total_utility(),
        "schedules": {
            str(user_id): event_ids
            for user_id, event_ids in planning.as_dict().items()
        },
    }


def planning_from_serialised(instance: USEPInstance, data: Dict) -> Planning:
    """Rebuild (and re-validate feasibility of) a recorded planning."""
    data = _as_object(data, "planning")
    raw = _as_object(_require(data, "schedules", "planning"), "planning.schedules")
    schedules: Dict[int, List[int]] = {}
    for user_id, event_ids in raw.items():
        try:
            key = int(user_id)
        except (TypeError, ValueError) as exc:
            raise _invalid(
                f"planning.schedules[{user_id!r}]",
                "keys must be integer user ids",
            ) from exc
        schedules[key] = [
            _as_int(ev, f"planning.schedules[{user_id!r}][{k}]", minimum=0)
            for k, ev in enumerate(
                _as_array(event_ids, f"planning.schedules[{user_id!r}]")
            )
        ]
    return planning_from_dict(instance, schedules)


def save_planning(planning: Planning, path: str) -> None:
    """Write a planning to a JSON file."""
    with open(path, "w") as handle:
        json.dump(planning_to_dict(planning), handle)


def load_planning(instance: USEPInstance, path: str) -> Planning:
    """Read a planning from a JSON file, rebinding it to ``instance``."""
    with open(path) as handle:
        return planning_from_serialised(instance, json.load(handle))
