"""Instance and planning (de)serialisation.

JSON is the interchange format: instances round-trip completely
(events, users, utilities, and either cost-model family), so workloads
generated here can be archived, diffed, or consumed by other tools, and
recorded plannings can be re-validated later against their instance.

``math.inf`` appears in event-to-event matrices (temporal conflicts);
it is encoded as the string ``"inf"`` for strict-JSON compatibility.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from .core.costs import GridCostModel, MatrixCostModel
from .core.entities import Event, User
from .core.exceptions import InvalidInstanceError
from .core.instance import USEPInstance
from .core.planning import Planning, planning_from_dict
from .core.timeutils import TimeInterval

_FORMAT_VERSION = 1


def _encode_cost(value: float):
    return "inf" if math.isinf(value) else value


def _decode_cost(value) -> float:
    return math.inf if value == "inf" else float(value)


def _cost_model_to_dict(model) -> Dict:
    if isinstance(model, GridCostModel):
        return {
            "type": "grid",
            "metric": model.metric,
            "speed": model.speed,
            "integral": model.integral,
        }
    if isinstance(model, MatrixCostModel):
        return {
            "type": "matrix",
            "event_event": [[_encode_cost(c) for c in row] for row in model._ee],
            "user_event": [list(row) for row in model._ue],
            "event_user": (
                [list(row) for row in model._eu] if model._eu is not None else None
            ),
            "check_conflicts": model.check_conflicts,
        }
    raise InvalidInstanceError(
        f"cannot serialise cost model of type {type(model).__name__}; "
        "only GridCostModel and MatrixCostModel are supported"
    )


def _cost_model_from_dict(data: Dict):
    kind = data.get("type")
    if kind == "grid":
        return GridCostModel(
            metric=data["metric"], speed=data["speed"], integral=data["integral"]
        )
    if kind == "matrix":
        return MatrixCostModel(
            [[_decode_cost(c) for c in row] for row in data["event_event"]],
            data["user_event"],
            event_user=data.get("event_user"),
            check_conflicts=data.get("check_conflicts", True),
        )
    raise InvalidInstanceError(f"unknown cost model type {kind!r}")


def instance_to_dict(instance: USEPInstance) -> Dict:
    """Serialise an instance to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": instance.name,
        "events": [
            {
                "id": ev.id,
                "location": list(ev.location),
                "capacity": ev.capacity,
                "start": ev.start,
                "end": ev.end,
                "name": ev.name,
            }
            for ev in instance.events
        ],
        "users": [
            {
                "id": u.id,
                "location": list(u.location),
                "budget": u.budget,
                "name": u.name,
            }
            for u in instance.users
        ],
        "cost_model": _cost_model_to_dict(instance.cost_model),
        "utilities": instance.utility_matrix().tolist(),
    }


def instance_from_dict(data: Dict) -> USEPInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise InvalidInstanceError(
            f"unsupported instance format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    events = [
        Event(
            id=e["id"],
            location=tuple(e["location"]),
            capacity=e["capacity"],
            interval=TimeInterval(e["start"], e["end"]),
            name=e.get("name"),
        )
        for e in data["events"]
    ]
    users = [
        User(
            id=u["id"],
            location=tuple(u["location"]),
            budget=u["budget"],
            name=u.get("name"),
        )
        for u in data["users"]
    ]
    return USEPInstance(
        events,
        users,
        _cost_model_from_dict(data["cost_model"]),
        data["utilities"],
        name=data.get("name"),
    )


def save_instance(instance: USEPInstance, path: str) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w") as handle:
        json.dump(instance_to_dict(instance), handle)


def load_instance(path: str) -> USEPInstance:
    """Read an instance from a JSON file."""
    with open(path) as handle:
        return instance_from_dict(json.load(handle))


def planning_to_dict(planning: Planning) -> Dict:
    """Serialise a planning (schedules only; pair with its instance)."""
    return {
        "format_version": _FORMAT_VERSION,
        "instance_name": planning.instance.name,
        "total_utility": planning.total_utility(),
        "schedules": {
            str(user_id): event_ids
            for user_id, event_ids in planning.as_dict().items()
        },
    }


def planning_from_serialised(instance: USEPInstance, data: Dict) -> Planning:
    """Rebuild (and re-validate feasibility of) a recorded planning."""
    schedules: Dict[int, List[int]] = {
        int(user_id): list(event_ids)
        for user_id, event_ids in data["schedules"].items()
    }
    return planning_from_dict(instance, schedules)


def save_planning(planning: Planning, path: str) -> None:
    """Write a planning to a JSON file."""
    with open(path, "w") as handle:
        json.dump(planning_to_dict(planning), handle)


def load_planning(instance: USEPInstance, path: str) -> Planning:
    """Read a planning from a JSON file, rebinding it to ``instance``."""
    with open(path) as handle:
        return planning_from_serialised(instance, json.load(handle))
