"""Planning analytics: quality metrics beyond the paper's Ω(A).

The paper evaluates plannings by total utility, running time and
memory.  A production EBSN operator would also ask *who* is served and
*how well*: per-user coverage, fairness of the utility distribution,
event fill rates, budget utilisation.  This module computes those
diagnostics from any feasible planning; the CLI's ``solve`` command and
the city example use it, and the ablation studies report it alongside
Ω(A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .core.planning import Planning


@dataclass
class PlanningReport:
    """Aggregate diagnostics of one planning.

    Attributes:
        total_utility: Ω(A), the paper's objective.
        arranged_pairs: Number of (event, user) assignments.
        users_served: Users with at least one arranged event.
        user_coverage: ``users_served / |U|``.
        events_used: Events with at least one attendee.
        mean_fill_rate: Mean of occupancy/capacity over all events.
        full_events: Events at capacity.
        mean_schedule_length: Mean events per *served* user.
        max_schedule_length: Longest schedule.
        mean_budget_utilisation: Mean spent/budget over served users.
        utility_gini: Gini coefficient of per-user utility (0 = all
            users equally happy; 1 = one user takes everything).
        per_user_utility: Utility per user id.
    """

    total_utility: float
    arranged_pairs: int
    users_served: int
    user_coverage: float
    events_used: int
    mean_fill_rate: float
    full_events: int
    mean_schedule_length: float
    max_schedule_length: int
    mean_budget_utilisation: float
    utility_gini: float
    per_user_utility: List[float] = field(repr=False, default_factory=list)

    def summary_rows(self) -> List[Dict[str, object]]:
        """Key/value rows for table rendering."""
        return [
            {"metric": "total utility", "value": round(self.total_utility, 3)},
            {"metric": "arranged pairs", "value": self.arranged_pairs},
            {
                "metric": "users served",
                "value": f"{self.users_served} ({self.user_coverage:.0%})",
            },
            {"metric": "events used", "value": self.events_used},
            {"metric": "mean fill rate", "value": f"{self.mean_fill_rate:.0%}"},
            {"metric": "full events", "value": self.full_events},
            {
                "metric": "mean schedule length",
                "value": round(self.mean_schedule_length, 2),
            },
            {"metric": "max schedule length", "value": self.max_schedule_length},
            {
                "metric": "mean budget utilisation",
                "value": f"{self.mean_budget_utilisation:.0%}",
            },
            {"metric": "utility Gini", "value": round(self.utility_gini, 3)},
        ]


def gini_coefficient(values: List[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 when equal).

    Uses the mean-absolute-difference formulation; returns 0.0 for
    empty or all-zero inputs.
    """
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total <= 0:
        return 0.0
    ordered = sorted(values)
    # Gini = (2 * sum(i * x_i) / (n * sum x)) - (n + 1) / n, 1-indexed
    weighted = sum((i + 1) * x for i, x in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def analyze_planning(planning: Planning) -> PlanningReport:
    """Compute a :class:`PlanningReport` for a planning."""
    instance = planning.instance
    per_user_utility = [s.utility(instance) for s in planning.schedules]
    lengths = [len(s) for s in planning.schedules]
    served = [s for s in planning.schedules if len(s)]

    occupancies = [planning.occupancy(v) for v in range(instance.num_events)]
    fill_rates = [
        occ / instance.clamped_capacity(v) for v, occ in enumerate(occupancies)
    ]
    budget_utilisation = []
    for schedule in served:
        budget = instance.users[schedule.user_id].budget
        if budget > 0:
            budget_utilisation.append(schedule.total_cost(instance) / budget)

    num_users = max(instance.num_users, 1)
    return PlanningReport(
        total_utility=planning.total_utility(),
        arranged_pairs=sum(lengths),
        users_served=len(served),
        user_coverage=len(served) / num_users,
        events_used=sum(1 for occ in occupancies if occ > 0),
        mean_fill_rate=(
            sum(fill_rates) / len(fill_rates) if fill_rates else 0.0
        ),
        full_events=sum(1 for v in range(instance.num_events) if planning.is_full(v)),
        mean_schedule_length=(
            sum(lengths) / len(served) if served else 0.0
        ),
        max_schedule_length=max(lengths) if lengths else 0,
        mean_budget_utilisation=(
            sum(budget_utilisation) / len(budget_utilisation)
            if budget_utilisation
            else 0.0
        ),
        utility_gini=gini_coefficient(per_user_utility),
        per_user_utility=per_user_utility,
    )


def compare_plannings(plannings: Dict[str, Planning]) -> List[Dict[str, object]]:
    """Side-by-side metric rows for several plannings (one per solver)."""
    rows: List[Dict[str, object]] = []
    for name, planning in plannings.items():
        report = analyze_planning(planning)
        rows.append(
            {
                "solver": name,
                "utility": round(report.total_utility, 2),
                "pairs": report.arranged_pairs,
                "coverage": f"{report.user_coverage:.0%}",
                "fill": f"{report.mean_fill_rate:.0%}",
                "gini": round(report.utility_gini, 3),
                "budget-use": f"{report.mean_budget_utilisation:.0%}",
            }
        )
    return rows
