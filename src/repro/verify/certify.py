"""Mechanical certificates beyond plain feasibility.

Three properties of the USEP stack are cheaply checkable from the
outside and therefore certified here rather than trusted:

* **Omega recomputation** — a solver's reported ``Omega(A)`` must match
  the sum of ``mu(v, u)`` over its arranged pairs, recomputed straight
  from the utility matrix (:func:`recompute_utility` /
  :func:`certify_omega`);
* **the 1/2-approximation bound (Theorem 3)** — on instances small
  enough for :class:`~repro.algorithms.exact.ExactSolver`, every member
  of the DeDP family must achieve at least half the exact optimum
  (:func:`certify_half_approximation`);
* **capacity monotonicity** — enlarging an event's capacity enlarges
  the feasible region, so the *verified* exact optimum can never drop
  (:func:`certify_capacity_monotonicity`).

Unlike :mod:`repro.verify.oracle`, this module may run solvers — the
certificates are statements *about* solver outputs, and each output is
still oracle-checked before its utility is trusted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.entities import Event
from ..core.instance import USEPInstance
from ..core.planning import Planning
from .oracle import verify_planning

#: DeDP-family registry names Theorem 3's 1/2 bound applies to.  The
#: ``+RG`` variants only ever add pairs, so they inherit the bound.
HALF_APPROX_ALGORITHMS: Tuple[str, ...] = (
    "DeDP",
    "DeDPO",
    "DeDP+RG",
    "DeDPO+RG",
)

#: Numeric slack for utility comparisons (sums of [0, 1] floats).
APPROX_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Certificate:
    """Outcome of one certified property.

    Attributes:
        name: Which property was checked (e.g. ``"half-approx:DeDP"``).
        passed: The verdict.
        details: The recomputed numbers backing the verdict.
    """

    name: str
    passed: bool
    details: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form."""
        return {"name": self.name, "passed": self.passed, "details": self.details}


def recompute_utility(
    instance: USEPInstance, schedules: Mapping[int, Sequence[int]]
) -> float:
    """``Omega(A)`` summed independently from the raw utility matrix."""
    return math.fsum(
        instance.utility(event_id, user_id)
        for user_id, event_ids in schedules.items()
        for event_id in event_ids
    )


def certify_omega(
    instance: USEPInstance,
    planning: Planning,
    reported_utility: Optional[float] = None,
    tolerance: float = 1e-6,
) -> Certificate:
    """Certify that the reported ``Omega(A)`` matches a fresh recount."""
    if reported_utility is None:
        reported_utility = planning.total_utility()
    recomputed = recompute_utility(instance, planning.as_dict())
    delta = abs(reported_utility - recomputed)
    return Certificate(
        name="omega",
        passed=delta <= tolerance,
        details=(
            f"reported {reported_utility!r}, recomputed {recomputed!r}, "
            f"|delta| = {delta:.3g}"
        ),
    )


def _verified_utility(
    instance: USEPInstance, name: str, planning: Planning
) -> Tuple[float, Optional[str]]:
    """A planning's recomputed utility, or an error when it fails the oracle."""
    report = verify_planning(instance, planning)
    if not report.ok:
        return 0.0, f"{name} output fails the oracle: {report.summary()}"
    return report.recomputed_utility, None


def exact_optimum(instance: USEPInstance, **limits) -> float:
    """The oracle-verified exact optimum of a small instance."""
    from ..algorithms.exact import ExactSolver

    solver = ExactSolver(**limits) if limits else ExactSolver()
    planning = solver.solve(instance)
    utility, error = _verified_utility(instance, "Exact", planning)
    if error is not None:
        raise AssertionError(error)
    return utility


def certify_half_approximation(
    instance: USEPInstance,
    algorithms: Sequence[str] = HALF_APPROX_ALGORITHMS,
    tolerance: float = APPROX_TOLERANCE,
) -> List[Certificate]:
    """Certify Theorem 3 on one (small) instance.

    Runs the exact solver once, then every named algorithm; each output
    is oracle-verified before its recomputed utility is compared against
    ``0.5 * OPT``.  Also certifies ``utility <= OPT`` — a "solver" that
    beats the verified optimum is broken by definition.
    """
    from ..algorithms.registry import make_solver

    opt = exact_optimum(instance)
    certificates: List[Certificate] = []
    for name in algorithms:
        planning = make_solver(name).solve(instance)
        utility, error = _verified_utility(instance, name, planning)
        if error is not None:
            certificates.append(
                Certificate(f"half-approx:{name}", False, error)
            )
            continue
        meets_lower = utility >= 0.5 * opt - tolerance
        meets_upper = utility <= opt + tolerance
        certificates.append(
            Certificate(
                name=f"half-approx:{name}",
                passed=meets_lower and meets_upper,
                details=(
                    f"utility {utility:.6g} vs optimum {opt:.6g} "
                    f"(ratio {utility / opt:.3f})"
                    if opt > 0
                    else f"utility {utility:.6g}, optimum 0"
                ),
            )
        )
    return certificates


def with_increased_capacity(
    instance: USEPInstance, event_id: int, delta: int = 1
) -> USEPInstance:
    """A copy of the instance with one event's capacity raised by ``delta``.

    Everything else (locations, intervals, users, cost model, utility
    matrix) is shared or equal, so the feasible region of the copy is a
    superset of the original's.
    """
    if delta < 0:
        raise ValueError(f"capacity delta must be >= 0, got {delta}")
    events = list(instance.events)
    old = events[event_id]
    events[event_id] = Event(
        id=old.id,
        location=old.location,
        capacity=old.capacity + delta,
        interval=old.interval,
        name=old.name,
    )
    return USEPInstance(
        events,
        instance.users,
        instance.cost_model,
        instance.utility_matrix().copy(),
        cache_user_costs=instance._cache_user_costs,  # noqa: SLF001
        name=f"{instance.name or '<unnamed>'}+cap[{event_id}]+{delta}",
    )


def certify_capacity_monotonicity(
    instance: USEPInstance,
    event_id: int = 0,
    delta: int = 1,
    tolerance: float = APPROX_TOLERANCE,
) -> Certificate:
    """Certify that added capacity never lowers the verified optimum.

    Solves the instance and its capacity-raised copy exactly (both
    outputs oracle-verified); the copy's optimum must be at least the
    original's.
    """
    if not instance.num_events:
        return Certificate(
            "capacity-monotonicity", True, "no events; trivially monotone"
        )
    base_opt = exact_optimum(instance)
    raised = with_increased_capacity(instance, event_id, delta)
    raised_opt = exact_optimum(raised)
    return Certificate(
        name="capacity-monotonicity",
        passed=raised_opt >= base_opt - tolerance,
        details=(
            f"optimum {base_opt:.6g} -> {raised_opt:.6g} after raising "
            f"capacity of event {event_id} by {delta}"
        ),
    )
