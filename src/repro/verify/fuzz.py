"""Seeded differential fuzzing of every registry solver.

The harness generates random :class:`~repro.datagen.SyntheticConfig`\\ s
across the generator's whole distribution space (utility/capacity/budget
distributions, conflict ratios, budget factors, optional finite travel
speed), runs **every** registry algorithm on each instance and checks:

* every output passes the :mod:`~repro.verify.oracle` (all four
  Definition 2 constraints + ``Omega`` recount);
* every array-kernel solver produces a **bit-identical** planning to
  its preserved ``*-seed`` twin (same utility, same schedules);
* on instances small enough for the exact solver, the DeDP family meets
  Theorem 3's 1/2-approximation bound and the exact optimum is
  capacity-monotone.

On the first failing instance the harness greedily *shrinks* the config
(fewer events/users, simpler distributions, no conflicts, ...) while the
failure still reproduces, then dumps a JSON repro — config, findings and
shrunk config — so ``replay(path)`` reproduces the bug from the file
alone.  Everything is driven by one seed: same seed, same instances,
same verdict.

**Churn mode** (``--churn``) fuzzes the dynamic layer instead: each
stream draws a random instance, warms a solve, then applies a seeded
random mutation stream (:mod:`repro.core.deltas`) one mutation at a
time — after every step the delta re-solve is oracle-checked *and*
bit-compared (canonical planning bytes) against a cold solve of the
mutated content decoded fresh from JSON.  A failing stream is greedily
shrunk to a minimal mutation list and dumped as a JSON repro whose
``mutations`` key :func:`replay` understands.

**Churn-kill mode** (``--churn-kill``) is churn mode pointed at a real
fleet: each stream boots a supervised multi-worker cluster
(:class:`~repro.service.router.LocalCluster`), registers the instance
over HTTP, streams the mutations through ``/mutate`` and SIGKILLs the
owning worker at a seeded mid-stream position.  Every batch must still
be acknowledged 200 (failover + journal replay + seq dedupe), and the
recovered instance must match an offline uninterrupted twin bit for
bit — journal fingerprint, version, and an oracle-checked final solve.

**Partition mode** (``--partition``) fuzzes the spatial-decomposition
layer (:mod:`repro.core.partition`) under its own quality contract —
the first layer whose answer is *allowed* to differ from the
sequential solver, so bit-compare is replaced by a floor: each
clustered-geography instance is solved monolithically and through
:func:`~repro.algorithms.partitioned.solve_partitioned` at a seeded
cell count, and the merged plan must pass the oracle with utility at
least ``--utility-floor`` (default 0.95) of the monolithic plan.  The
single-cell degenerate case *is* still held to bit-identity.

Run it directly::

    python -m repro.verify.fuzz --seed 2026 --max-instances 200
    python -m repro.verify.fuzz --time-budget 60 --out fuzz_failure.json
    python -m repro.verify.fuzz --churn --streams 20 --mutations-per-stream 30
    python -m repro.verify.fuzz --churn-kill --streams 3 --workers 2
    python -m repro.verify.fuzz --partition --max-instances 50

The process exits non-zero iff a failure was found (CI uploads the
``--out`` file as the failing-seed artifact).

The harness is dependency-free by design — stdlib ``random``/``json``
plus this package — so it runs anywhere the solvers do.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..algorithms.base import Solver
from ..algorithms.registry import available_solvers, make_solver
from ..core.deltas import (
    AddEvent,
    AddUser,
    BudgetChange,
    CapacityChange,
    DropEvent,
    DropUser,
    Mutation,
    UtilityChange,
    apply_mutation,
)
from ..core.exceptions import InvalidInstanceError
from ..core.instance import USEPInstance
from ..datagen.synthetic import SyntheticConfig, generate_instance
from .certify import certify_capacity_monotonicity, certify_half_approximation
from .oracle import verify_planning

#: (array-kernel solver, seed reference) twins that must be bit-identical.
TWIN_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("DeDP", "DeDP-seed"),
    ("DeDPO", "DeDPO-seed"),
    ("DeGreedy", "DeGreedy-seed"),
)

#: Registry names the fuzz loop never runs unconditionally.  ``Exact``
#: is exponential and size-capped; it still participates through the
#: certification pass on small instances.
EXCLUDED_ALGORITHMS: Tuple[str, ...] = ("Exact",)

#: Instances at or below these dims additionally get the exact-solver
#: certification pass (1/2-approx + capacity monotonicity).
CERTIFY_MAX_EVENTS = 6
CERTIFY_MAX_USERS = 5


@dataclass(frozen=True)
class FuzzFinding:
    """One check failure on one instance.

    Attributes:
        solver: Registry name of the offending solver (or the twin pair
            / certificate name for cross-solver checks).
        kind: ``"crash" | "oracle" | "twin" | "certificate"``.
        message: What went wrong, with the recomputed numbers.
    """

    solver: str
    kind: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"solver": self.solver, "kind": self.kind, "message": self.message}


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` / :func:`run_churn_fuzz` campaign."""

    seed: int
    algorithms: List[str]
    instances_run: int = 0
    elapsed_s: float = 0.0
    findings: List[FuzzFinding] = field(default_factory=list)
    failing_config: Optional[SyntheticConfig] = None
    shrunk_config: Optional[SyntheticConfig] = None
    repro_path: Optional[str] = None
    #: ``"static"`` (instance fuzzing), ``"churn"`` (mutation streams),
    #: ``"churn-kill"`` (mutation streams over HTTP across a worker
    #: SIGKILL), ``"churn-disk"`` (mutation streams over HTTP with a
    #: seeded journal disk fault armed) or ``"partition"``
    #: (partitioned-vs-monolithic differential with a utility-ratio
    #: floor).  Partition-mode configs are
    #: :class:`~repro.datagen.clustered.ClusteredConfig`.
    mode: str = "static"
    failing_mutations: Optional[List[Mutation]] = None
    shrunk_mutations: Optional[List[Mutation]] = None
    partition_cells: Optional[int] = None
    partition_utility_floor: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        unit = "streams" if self.mode.startswith("churn") else "instances"
        if self.ok:
            return (
                f"fuzz ok: {self.instances_run} {unit} x "
                f"{len(self.algorithms)} algorithms in {self.elapsed_s:.1f}s "
                f"(seed {self.seed})"
            )
        head = self.findings[0]
        return (
            f"fuzz FAILED after {self.instances_run} {unit} "
            f"(seed {self.seed}): [{head.kind}] {head.solver}: {head.message}"
        )


def default_algorithms() -> List[str]:
    """Every registry solver the fuzz loop runs (``Exact`` excluded)."""
    return [
        name
        for name in available_solvers()
        if name not in EXCLUDED_ALGORITHMS
    ]


def random_config(rng: random.Random) -> SyntheticConfig:
    """Draw one small config across the datagen distribution space."""
    speed: Optional[float] = None
    if rng.random() < 0.25:
        speed = rng.choice([0.5, 1.0, 2.0, 5.0])
    return SyntheticConfig(
        num_events=rng.randint(1, 10),
        num_users=rng.randint(1, 12),
        mean_capacity=rng.randint(1, 5),
        capacity_distribution=rng.choice(["uniform", "normal"]),
        utility_distribution=rng.choice(["uniform", "normal", "power:0.5"]),
        budget_factor=rng.choice([0.0, 0.5, 1.0, 2.0, 3.0]),
        budget_distribution=rng.choice(["uniform", "normal"]),
        conflict_ratio=rng.choice([0.0, 0.2, 0.5, 0.8, 1.0]),
        grid_size=rng.randint(5, 40),
        horizon=rng.choice([50, 100, 200]),
        speed=speed,
        seed=rng.randrange(2**31),
    )


def check_instance(
    instance: USEPInstance,
    algorithms: Sequence[str],
    extra_solvers: Optional[Mapping[str, Callable[[], Solver]]] = None,
    certify: bool = True,
) -> List[FuzzFinding]:
    """Run every algorithm on one instance and collect all findings.

    Args:
        instance: The instance under test.
        algorithms: Registry names to run.
        extra_solvers: Extra ``{name: factory}`` solvers to run alongside
            the registry ones (used to fuzz unregistered or deliberately
            broken solvers in tests).
        certify: Also run the exact-solver certification pass when the
            instance is small enough.
    """
    findings: List[FuzzFinding] = []
    plannings: Dict[str, object] = {}

    factories: List[Tuple[str, Callable[[], Solver]]] = [
        (name, (lambda n=name: make_solver(n))) for name in algorithms
    ]
    if extra_solvers:
        factories.extend(sorted(extra_solvers.items()))

    for name, factory in factories:
        try:
            planning = factory().solve(instance)
        except Exception as exc:  # noqa: BLE001 - the whole point of fuzzing
            findings.append(
                FuzzFinding(name, "crash", f"{type(exc).__name__}: {exc}")
            )
            continue
        plannings[name] = planning
        report = verify_planning(instance, planning)
        for violation in report.violations:
            findings.append(
                FuzzFinding(
                    name,
                    f"oracle:{violation.constraint}",
                    violation.message,
                )
            )

    for kernel, seed_twin in TWIN_PAIRS:
        if kernel not in plannings or seed_twin not in plannings:
            continue
        kp, sp = plannings[kernel], plannings[seed_twin]
        if kp.total_utility() != sp.total_utility():
            findings.append(
                FuzzFinding(
                    f"{kernel}|{seed_twin}",
                    "twin",
                    f"utilities differ: {kp.total_utility()!r} != "
                    f"{sp.total_utility()!r}",
                )
            )
        elif kp.as_dict() != sp.as_dict():
            findings.append(
                FuzzFinding(
                    f"{kernel}|{seed_twin}",
                    "twin",
                    "equal utilities but different schedules: "
                    f"{kp.as_dict()} != {sp.as_dict()}",
                )
            )

    if (
        certify
        and instance.num_events <= CERTIFY_MAX_EVENTS
        and instance.num_users <= CERTIFY_MAX_USERS
    ):
        certificates = certify_half_approximation(instance)
        certificates.append(certify_capacity_monotonicity(instance))
        for certificate in certificates:
            if not certificate.passed:
                findings.append(
                    FuzzFinding(
                        certificate.name, "certificate", certificate.details
                    )
                )

    return findings


def fuzz_config(
    config: SyntheticConfig,
    algorithms: Sequence[str],
    extra_solvers: Optional[Mapping[str, Callable[[], Solver]]] = None,
    certify: bool = True,
) -> List[FuzzFinding]:
    """Generate the config's instance and :func:`check_instance` it."""
    try:
        instance = generate_instance(config)
    except Exception as exc:  # noqa: BLE001
        return [
            FuzzFinding("<datagen>", "crash", f"{type(exc).__name__}: {exc}")
        ]
    return check_instance(
        instance, algorithms, extra_solvers=extra_solvers, certify=certify
    )


def _shrink_candidates(config: SyntheticConfig) -> List[SyntheticConfig]:
    """Strictly-simpler one-step variants of a config, most drastic first."""
    out: List[SyntheticConfig] = []

    def propose(**changes) -> None:
        candidate = config.with_overrides(**changes)
        if candidate != config:
            out.append(candidate)

    if config.num_events > 1:
        propose(num_events=max(1, config.num_events // 2))
        propose(num_events=config.num_events - 1)
    if config.num_users > 1:
        propose(num_users=max(1, config.num_users // 2))
        propose(num_users=config.num_users - 1)
    if config.speed is not None:
        propose(speed=None)
    propose(conflict_ratio=0.0)
    propose(utility_distribution="uniform")
    propose(capacity_distribution="uniform")
    propose(budget_distribution="uniform")
    if config.mean_capacity > 1:
        propose(mean_capacity=1)
    if config.budget_factor not in (0.0, 1.0):
        propose(budget_factor=1.0)
    if config.grid_size > 5:
        propose(grid_size=max(5, config.grid_size // 2))
    return out


def shrink_config(
    config: SyntheticConfig,
    algorithms: Sequence[str],
    extra_solvers: Optional[Mapping[str, Callable[[], Solver]]] = None,
    certify: bool = True,
    max_rounds: int = 40,
) -> Tuple[SyntheticConfig, List[FuzzFinding]]:
    """Greedily shrink a failing config while any finding reproduces.

    Each round tries every one-step simplification (halve events/users,
    drop conflicts, uniform distributions, smaller grid, ...) and keeps
    the first one that still fails; stops at a fixpoint.  Returns the
    minimal config and its findings.
    """
    current = config
    findings = fuzz_config(
        current, algorithms, extra_solvers=extra_solvers, certify=certify
    )
    if not findings:
        return current, findings  # flaky input; nothing to shrink
    for _ in range(max_rounds):
        for candidate in _shrink_candidates(current):
            candidate_findings = fuzz_config(
                candidate,
                algorithms,
                extra_solvers=extra_solvers,
                certify=certify,
            )
            if candidate_findings:
                current = candidate
                findings = candidate_findings
                break
        else:
            break  # no simpler config reproduces: minimal
    return current, findings


# ----------------------------------------------------------------------
# churn mode: differential fuzzing of repro.core.deltas
# ----------------------------------------------------------------------

#: Solvers churn mode runs by default — the array-kernel trio whose
#: Step 1 flows through the incremental engine (candidate index,
#: schedule memo, replay cache) the delta layer invalidates.
CHURN_ALGORITHMS: Tuple[str, ...] = ("DeDP", "DeDPO", "DeGreedy")


def random_mutation(rng: random.Random, instance: USEPInstance) -> Mutation:
    """Draw one mutation valid for the instance's *current* dimensions.

    Value edits dominate (the common churn), with drops rare enough
    that streams keep some population; all draws come from ``rng`` so a
    stream is reproducible from the master seed alone.
    """
    num_users, num_events = instance.num_users, instance.num_events
    kinds: List[str] = ["add_user", "add_event"]
    if num_users:
        kinds += ["budget_change"] * 3 + ["drop_user"]
    if num_events:
        kinds += ["capacity_change"] * 2 + ["drop_event"]
    if num_users and num_events:
        kinds += ["utility_change"] * 4
    kind = rng.choice(kinds)
    if kind == "budget_change":
        return BudgetChange(rng.randrange(num_users), round(rng.uniform(0.0, 60.0), 3))
    if kind == "capacity_change":
        return CapacityChange(rng.randrange(num_events), rng.randint(1, 6))
    if kind == "utility_change":
        value = 0.0 if rng.random() < 0.2 else round(rng.random(), 6)
        return UtilityChange(rng.randrange(num_events), rng.randrange(num_users), value)
    if kind == "drop_user":
        return DropUser(rng.randrange(num_users))
    if kind == "drop_event":
        return DropEvent(rng.randrange(num_events))
    if kind == "add_user":
        return AddUser(
            location=(round(rng.uniform(0, 20), 3), round(rng.uniform(0, 20), 3)),
            budget=round(rng.uniform(0.0, 60.0), 3),
            utilities=tuple(
                round(rng.random(), 6) if rng.random() < 0.7 else 0.0
                for _ in range(num_events)
            ),
        )
    start = round(rng.uniform(0, 90), 3)
    return AddEvent(
        location=(round(rng.uniform(0, 20), 3), round(rng.uniform(0, 20), 3)),
        capacity=rng.randint(1, 5),
        start=start,
        end=start + round(rng.uniform(1, 30), 3),
        utilities=tuple(
            round(rng.random(), 6) if rng.random() < 0.7 else 0.0
            for _ in range(num_users)
        ),
    )


def generate_churn_stream(
    config: SyntheticConfig, rng: random.Random, num_mutations: int
) -> List[Mutation]:
    """Draw a mutation stream valid against the config's instance.

    Mutations are applied while generating (against a throwaway copy)
    so each draw sees the dimensions its predecessors left behind —
    the resulting list replays cleanly on a fresh instance.
    """
    instance = generate_instance(config)
    mutations: List[Mutation] = []
    for _ in range(num_mutations):
        mutation = random_mutation(rng, instance)
        apply_mutation(instance, mutation)
        mutations.append(mutation)
    return mutations


def check_churn_stream(
    instance: USEPInstance,
    mutations: Sequence[Mutation],
    algorithms: Sequence[str] = CHURN_ALGORITHMS,
) -> List[FuzzFinding]:
    """Apply a stream one mutation at a time, delta-solving after each.

    After every applied mutation, each algorithm's delta re-solve (warm
    engine, memo-hitting clean users) is oracle-checked and bit-compared
    — canonical planning bytes — against a cold solve of the mutated
    content decoded fresh from its JSON form.  Stops at the first step
    with findings (later steps run on diverged state and would only
    echo it).  Mutations invalid for the current dimensions are skipped,
    which keeps shrunk subsequences applicable.
    """
    from ..io import canonical_planning_bytes, instance_from_dict, instance_to_dict

    findings: List[FuzzFinding] = []
    solvers = {name: make_solver(name) for name in algorithms}
    for solver in solvers.values():  # warm: build index, memo, replay state
        solver.solve(instance)
    for step, mutation in enumerate(mutations):
        try:
            apply_mutation(instance, mutation)
        except InvalidInstanceError:
            continue
        except Exception as exc:  # noqa: BLE001 - the whole point of fuzzing
            findings.append(
                FuzzFinding(
                    "<deltas>",
                    "churn-crash",
                    f"step {step} ({mutation.kind}): {type(exc).__name__}: {exc}",
                )
            )
            return findings
        cold_instance = instance_from_dict(instance_to_dict(instance))
        for name, solver in solvers.items():
            try:
                delta_planning = solver.solve(instance)
            except Exception as exc:  # noqa: BLE001
                findings.append(
                    FuzzFinding(
                        name,
                        "churn-crash",
                        f"step {step} ({mutation.kind}): "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            report = verify_planning(instance, delta_planning)
            for violation in report.violations:
                findings.append(
                    FuzzFinding(
                        name,
                        f"churn-oracle:{violation.constraint}",
                        f"step {step} ({mutation.kind}): {violation.message}",
                    )
                )
            cold_planning = make_solver(name).solve(cold_instance)
            delta_bytes = canonical_planning_bytes(delta_planning)
            cold_bytes = canonical_planning_bytes(cold_planning)
            if delta_bytes != cold_bytes:
                findings.append(
                    FuzzFinding(
                        name,
                        "churn-bytes",
                        f"step {step} ({mutation.kind}): delta planning "
                        f"diverges from cold solve: {delta_bytes[:160]!r} != "
                        f"{cold_bytes[:160]!r}",
                    )
                )
        if findings:
            return findings
    return findings


def fuzz_churn(
    config: SyntheticConfig,
    mutations: Sequence[Mutation],
    algorithms: Sequence[str] = CHURN_ALGORITHMS,
) -> List[FuzzFinding]:
    """Generate the config's instance and :func:`check_churn_stream` it."""
    try:
        instance = generate_instance(config)
    except Exception as exc:  # noqa: BLE001
        return [FuzzFinding("<datagen>", "crash", f"{type(exc).__name__}: {exc}")]
    return check_churn_stream(instance, mutations, algorithms)


def shrink_mutations(
    config: SyntheticConfig,
    mutations: Sequence[Mutation],
    algorithms: Sequence[str] = CHURN_ALGORITHMS,
    max_rounds: int = 20,
) -> Tuple[List[Mutation], List[FuzzFinding]]:
    """Greedily shrink a failing mutation stream to a minimal repro.

    Delta-debugging flavour: drop half-stream chunks first, then ever
    smaller ones down to single mutations, keeping any cut after which
    the stream still fails; repeat to a fixpoint.  (The config is left
    alone — mutations embed ids valid for its dimensions.)
    """
    current = list(mutations)
    findings = fuzz_churn(config, current, algorithms)
    if not findings:
        return current, findings  # flaky input; nothing to shrink
    for _ in range(max_rounds):
        reduced = False
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                candidate_findings = fuzz_churn(config, candidate, algorithms)
                if candidate_findings:
                    current, findings = candidate, candidate_findings
                    reduced = True
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2
        if not reduced:
            break
    return current, findings


def run_churn_fuzz(
    seed: int = 0,
    streams: int = 20,
    mutations_per_stream: int = 30,
    time_budget_s: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
    shrink: bool = True,
    out_path: Optional[str] = None,
    progress: bool = False,
    progress_stream=None,
) -> FuzzReport:
    """Run a churn campaign; stop at the first failing stream.

    Each stream is one random config plus one seeded mutation stream,
    checked by :func:`check_churn_stream`.  ``instances_run`` counts
    streams.  On failure the stream is shrunk to a minimal mutation
    list and the JSON repro (with a ``mutations`` key) is dumped for
    :func:`replay`.
    """
    rng = random.Random(seed)
    algorithms = (
        list(algorithms) if algorithms is not None else list(CHURN_ALGORITHMS)
    )
    stream = progress_stream if progress_stream is not None else sys.stderr
    report = FuzzReport(seed=seed, algorithms=algorithms, mode="churn")
    start = time.perf_counter()

    for index in range(streams):
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        config = random_config(rng)
        try:
            mutations = generate_churn_stream(config, rng, mutations_per_stream)
        except Exception as exc:  # noqa: BLE001
            report.instances_run = index + 1
            report.findings = [
                FuzzFinding(
                    "<churn-gen>", "crash", f"{type(exc).__name__}: {exc}"
                )
            ]
            report.failing_config = config
            if out_path:
                dump_repro(report, out_path)
                report.repro_path = out_path
            break
        findings = fuzz_churn(config, mutations, algorithms)
        report.instances_run = index + 1
        if findings:
            report.findings = findings
            report.failing_config = config
            report.failing_mutations = list(mutations)
            if shrink:
                shrunk, shrunk_findings = shrink_mutations(
                    config, mutations, algorithms
                )
                report.shrunk_mutations = shrunk
                report.findings = shrunk_findings
            if out_path:
                dump_repro(report, out_path)
                report.repro_path = out_path
            break
        if progress and (index + 1) % 5 == 0:
            print(
                f"[churn seed={seed}] {index + 1}/{streams} streams clean "
                f"({time.perf_counter() - start:.1f}s)",
                file=stream,
                flush=True,
            )

    report.elapsed_s = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# churn-kill mode: the churn fuzz pointed at a real fleet, with SIGKILL
# ----------------------------------------------------------------------


def _post_json(base_url: str, path: str, payload: Mapping[str, object]):
    """One POST to the fleet; returns (status, body) or raises OSError."""
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def check_churn_kill_stream(
    config: SyntheticConfig,
    mutations: Sequence[Mutation],
    kill_index: int,
    workers: int = 2,
) -> List[FuzzFinding]:
    """One seeded mutation stream through a real fleet, with a SIGKILL.

    Boots a :class:`~repro.service.router.LocalCluster` (router + real
    worker processes + journals), registers the config's instance,
    streams the mutations one batch at a time and SIGKILLs the owning
    worker right before batch ``kill_index``.  The recovery contract
    under test:

    * every batch (including the one that hit the dying worker) is
      acknowledged 200 — zero transport errors, zero 5xx;
    * the journal replays to the exact content an offline twin reaches
      by applying the same stream (fingerprint + version identical);
    * the recovered ``instance_id`` still solves, at the twin's
      version, and the plan passes the oracle against the twin.
    """
    import tempfile

    from ..core import build_cache
    from ..io import instance_from_dict, instance_to_dict, mutation_to_dict
    from ..service.journal import JOURNAL_SUFFIX, replay_journal
    from ..service.router import LocalCluster
    from .oracle import verify_schedules

    findings: List[FuzzFinding] = []
    wire = instance_to_dict(generate_instance(config))
    twin = instance_from_dict(wire)

    with tempfile.TemporaryDirectory(prefix="churn-kill-") as journal_root:
        with LocalCluster(workers=workers, journal_root=journal_root) as fleet:
            url = fleet.base_url
            try:
                status, body = _post_json(url, "/instances", {"instance": wire})
            except OSError as exc:
                return [
                    FuzzFinding(
                        "<fleet>", "churn-kill-transport",
                        f"registration: {type(exc).__name__}: {exc}",
                    )
                ]
            if status != 200:
                return [
                    FuzzFinding(
                        "<fleet>", "churn-kill-http",
                        f"registration answered {status}: {body}",
                    )
                ]
            instance_id = body["instance_id"]
            shard = instance_id.split("-inst-")[0]
            for step, mutation in enumerate(mutations):
                if step == kill_index:
                    fleet.kill_worker(shard)
                try:
                    apply_mutation(twin, mutation)
                except InvalidInstanceError:
                    continue  # the fleet will 400 it identically below
                try:
                    status, body = _post_json(
                        url, "/mutate",
                        {"instance_id": instance_id,
                         "mutations": [mutation_to_dict(mutation)]},
                    )
                except OSError as exc:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-kill-transport",
                            f"step {step} ({mutation.kind}): "
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    return findings
                if status != 200:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-kill-http",
                            f"step {step} ({mutation.kind}) answered "
                            f"{status}: {body}",
                        )
                    )
                    return findings
            try:
                status, solved = _post_json(
                    url, "/solve",
                    {"instance_id": instance_id, "algorithm": "DeDP",
                     "deadline_s": 30},
                )
            except OSError as exc:
                return findings + [
                    FuzzFinding(
                        "<fleet>", "churn-kill-transport",
                        f"final solve: {type(exc).__name__}: {exc}",
                    )
                ]
            if status != 200:
                findings.append(
                    FuzzFinding(
                        "<fleet>", "churn-kill-http",
                        f"final solve answered {status}: {solved}",
                    )
                )
            else:
                if solved.get("instance_version") != twin.version:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-kill-version",
                            f"recovered instance solved at version "
                            f"{solved.get('instance_version')}, twin is at "
                            f"{twin.version}",
                        )
                    )
                report = verify_schedules(
                    twin,
                    {int(uid): evs
                     for uid, evs in solved.get("schedules", {}).items()},
                    reported_utility=solved.get("utility"),
                )
                if not report.ok:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-kill-oracle",
                            f"recovered plan fails the oracle against the "
                            f"twin: {report.summary()}",
                        )
                    )
            journal = os.path.join(
                journal_root, shard, instance_id + JOURNAL_SUFFIX
            )
            try:
                recovered = replay_journal(journal)
            except Exception as exc:  # noqa: BLE001 - any failure is a finding
                findings.append(
                    FuzzFinding(
                        "<journal>", "churn-kill-journal",
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                return findings
            if recovered.instance.version != twin.version:
                findings.append(
                    FuzzFinding(
                        "<journal>", "churn-kill-version",
                        f"journal replays to version "
                        f"{recovered.instance.version}, twin is at "
                        f"{twin.version}",
                    )
                )
            twin_fp = build_cache.instance_fingerprint(twin)
            replay_fp = build_cache.instance_fingerprint(recovered.instance)
            if twin_fp != replay_fp:
                findings.append(
                    FuzzFinding(
                        "<journal>", "churn-kill-fingerprint",
                        f"journal replay fingerprint {replay_fp!r} != "
                        f"offline twin {twin_fp!r}",
                    )
                )
    return findings


def run_churn_kill_fuzz(
    seed: int = 0,
    streams: int = 3,
    mutations_per_stream: int = 20,
    workers: int = 2,
    time_budget_s: Optional[float] = None,
    out_path: Optional[str] = None,
    progress: bool = False,
    progress_stream=None,
) -> FuzzReport:
    """Churn fuzzing across a worker SIGKILL; stop at the first failure.

    Each stream kills the shard worker at a seeded position in the
    mutation stream and asserts full recovery (see
    :func:`check_churn_kill_stream`).  Streams are expensive — each
    boots a real fleet — so the default count is small; CI's chaos job
    runs this mode, not the tier-1 suite.  No shrinking: the failure is
    process-level, the repro JSON records the config, stream and kill
    position for manual replay.
    """
    rng = random.Random(seed)
    stream_out = progress_stream if progress_stream is not None else sys.stderr
    report = FuzzReport(
        seed=seed, algorithms=["DeDP"], mode="churn-kill"
    )
    start = time.perf_counter()
    for index in range(streams):
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        config = random_config(rng)
        try:
            mutations = generate_churn_stream(config, rng, mutations_per_stream)
        except Exception as exc:  # noqa: BLE001
            report.instances_run = index + 1
            report.findings = [
                FuzzFinding("<churn-gen>", "crash", f"{type(exc).__name__}: {exc}")
            ]
            report.failing_config = config
            break
        kill_index = rng.randrange(max(1, len(mutations)))
        findings = check_churn_kill_stream(
            config, mutations, kill_index, workers=workers
        )
        report.instances_run = index + 1
        if findings:
            report.findings = findings
            report.failing_config = config
            report.failing_mutations = list(mutations)
            break
        if progress:
            print(
                f"[churn-kill seed={seed}] stream {index + 1}/{streams} "
                f"survived a kill at step {kill_index} "
                f"({time.perf_counter() - start:.1f}s)",
                file=stream_out,
                flush=True,
            )
    if report.findings and out_path:
        dump_repro(report, out_path)
        report.repro_path = out_path
    report.elapsed_s = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# churn-disk mode: mutation streams over a fleet with a seeded disk fault
# ----------------------------------------------------------------------


def check_churn_disk_stream(
    config: SyntheticConfig,
    mutations: Sequence[Mutation],
    disk_fault,
    workers: int = 2,
) -> List[FuzzFinding]:
    """One seeded mutation stream with a seeded disk fault armed.

    The whole fleet boots with ``REPRO_DISK_FAULT`` in its environment
    (:func:`repro.service.faults.install_disk_from_env` arms it at
    worker start), so the owning shard's journal fails mid-churn.  The
    degradation contract under test (docs/serving.md):

    * every batch is still acknowledged 200 — zero transport errors,
      zero 5xx, before and after the disk "fails";
    * once the fault fires, mutation replies flip to ``durable: false``;
    * the supervisor surfaces ``journal_degraded`` for some worker and
      restarts **nobody** — a disk fault degrades, never kills;
    * the instance still solves from memory afterwards.
    """
    import tempfile
    import urllib.request

    from ..io import instance_to_dict, mutation_to_dict
    from ..service.faults import DISK_FAULT_ENV
    from ..service.router import LocalCluster

    findings: List[FuzzFinding] = []
    wire = instance_to_dict(generate_instance(config))
    fault_text = f"{disk_fault.kind}:{disk_fault.after_writes}"
    previous = os.environ.get(DISK_FAULT_ENV)
    os.environ[DISK_FAULT_ENV] = fault_text
    try:
        with tempfile.TemporaryDirectory(prefix="churn-disk-") as journal_root:
            with LocalCluster(
                workers=workers, journal_root=journal_root
            ) as fleet:
                url = fleet.base_url
                try:
                    status, body = _post_json(
                        url, "/instances", {"instance": wire}
                    )
                except OSError as exc:
                    return [
                        FuzzFinding(
                            "<fleet>", "churn-disk-transport",
                            f"registration: {type(exc).__name__}: {exc}",
                        )
                    ]
                if status != 200:
                    return [
                        FuzzFinding(
                            "<fleet>", "churn-disk-http",
                            f"registration -> {status}: {body}",
                        )
                    ]
                instance_id = body["instance_id"]
                non_durable = 0
                for index, mutation in enumerate(mutations):
                    try:
                        status, body = _post_json(
                            url, "/mutate",
                            {
                                "instance_id": instance_id,
                                "mutations": [mutation_to_dict(mutation)],
                            },
                        )
                    except OSError as exc:
                        findings.append(
                            FuzzFinding(
                                "<fleet>", "churn-disk-transport",
                                f"batch {index} [{fault_text}]: "
                                f"{type(exc).__name__}: {exc}",
                            )
                        )
                        return findings
                    if status != 200:
                        findings.append(
                            FuzzFinding(
                                "<fleet>", "churn-disk-http",
                                f"batch {index} [{fault_text}] -> "
                                f"{status}: {body}",
                            )
                        )
                        return findings
                    if body.get("durable") is False:
                        non_durable += 1
                if non_durable == 0:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-disk-silent",
                            f"fault {fault_text} never surfaced as "
                            f"durable=false over {len(mutations)} batches",
                        )
                    )
                # The supervisor needs a heartbeat to observe it.
                degraded: List[str] = []
                deadline = time.perf_counter() + 30.0
                while time.perf_counter() < deadline and not degraded:
                    with urllib.request.urlopen(
                        url + "/stats", timeout=30
                    ) as resp:
                        stats = json.loads(resp.read())
                    degraded = [
                        str(worker["worker_id"])
                        for worker in stats.get("supervisor", [])
                        if worker.get("journal_degraded")
                    ]
                    if not degraded:
                        time.sleep(0.2)
                if not degraded:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-disk-silent",
                            "supervisor never surfaced journal_degraded",
                        )
                    )
                for worker in stats.get("supervisor", []):
                    if worker.get("restarts"):
                        findings.append(
                            FuzzFinding(
                                "<fleet>", "churn-disk-restart",
                                f"worker {worker['worker_id']} restarted "
                                f"{worker['restarts']}x for a disk fault",
                            )
                        )
                try:
                    status, solved = _post_json(
                        url, "/solve",
                        {"instance_id": instance_id, "algorithm": "DeDP",
                         "deadline_s": 60},
                    )
                except OSError as exc:
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-disk-transport",
                            f"post-degradation solve: "
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    return findings
                if status != 200 or solved.get("status") != "ok":
                    findings.append(
                        FuzzFinding(
                            "<fleet>", "churn-disk-http",
                            f"post-degradation solve -> {status}: "
                            f"{solved.get('error', solved.get('status'))}",
                        )
                    )
    finally:
        if previous is None:
            os.environ.pop(DISK_FAULT_ENV, None)
        else:
            os.environ[DISK_FAULT_ENV] = previous
    return findings


def run_churn_disk_fuzz(
    seed: int = 0,
    streams: int = 3,
    mutations_per_stream: int = 20,
    workers: int = 2,
    time_budget_s: Optional[float] = None,
    out_path: Optional[str] = None,
    progress: bool = False,
    progress_stream=None,
) -> FuzzReport:
    """Churn fuzzing with a seeded disk fault instead of a SIGKILL.

    Each stream draws its own :class:`~repro.service.faults.DiskFaultSpec`
    via ``DiskFaultSpec.random`` — same master seed, same fault kinds
    and arming positions — and asserts the degradation contract (see
    :func:`check_churn_disk_stream`).  Like churn-kill, streams boot a
    real fleet, so the default count is small and CI's chaos job owns
    this mode.
    """
    from ..service.faults import DiskFaultSpec

    rng = random.Random(seed)
    stream_out = progress_stream if progress_stream is not None else sys.stderr
    report = FuzzReport(seed=seed, algorithms=["DeDP"], mode="churn-disk")
    start = time.perf_counter()
    for index in range(streams):
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        config = random_config(rng)
        try:
            mutations = generate_churn_stream(config, rng, mutations_per_stream)
        except Exception as exc:  # noqa: BLE001
            report.instances_run = index + 1
            report.findings = [
                FuzzFinding("<churn-gen>", "crash", f"{type(exc).__name__}: {exc}")
            ]
            report.failing_config = config
            break
        # after_writes < 1 header + len(mutations) records => always fires
        disk_fault = DiskFaultSpec.random(
            rng.randrange(1 << 30), max_after=max(1, len(mutations))
        )
        findings = check_churn_disk_stream(
            config, mutations, disk_fault, workers=workers
        )
        report.instances_run = index + 1
        if findings:
            report.findings = findings
            report.failing_config = config
            report.failing_mutations = list(mutations)
            break
        if progress:
            print(
                f"[churn-disk seed={seed}] stream {index + 1}/{streams} "
                f"survived {disk_fault.kind} after "
                f"{disk_fault.after_writes} writes "
                f"({time.perf_counter() - start:.1f}s)",
                file=stream_out,
                flush=True,
            )
    if report.findings and out_path:
        dump_repro(report, out_path)
        report.repro_path = out_path
    report.elapsed_s = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# partition mode: partitioned-vs-monolithic with a utility-ratio floor
# ----------------------------------------------------------------------

#: Default quality floor of the partition differential: the merged plan
#: must reach this fraction of the monolithic utility.  Matches the
#: guard in ``benchmarks/check_bench_regression.py`` and the contract
#: in ``docs/partitioning.md``.
PARTITION_UTILITY_FLOOR = 0.95

#: Cell counts the partition campaign cycles through (seeded draw per
#: instance).  1 is deliberately included: the degenerate cut must be
#: bit-identical to the monolithic solve.
PARTITION_CELL_CHOICES: Tuple[int, ...] = (1, 2, 3, 4, 6, 9)


def random_clustered_config(rng: random.Random):
    """Draw one clustered-geography config for the partition fuzz.

    Sizes are small enough that monolithic + partitioned both solve in
    well under a second, but large enough that a multi-cell cut has
    real boundary structure (replicated users, oversubscribed events).
    """
    from ..datagen.clustered import ClusteredConfig

    grid_size = rng.choice([60, 100, 160])
    return ClusteredConfig(
        num_events=rng.randint(8, 48),
        num_users=rng.randint(60, 480),
        num_clusters=rng.randint(1, 6),
        event_spread=rng.choice([3.0, 6.0, 9.0]),
        user_spread=rng.choice([6.0, 10.0, 16.0]),
        utility_radius=(
            None
            if rng.random() < 0.7
            else rng.uniform(0.08, 0.25) * grid_size
        ),
        mean_capacity=rng.randint(3, 40),
        capacity_distribution=rng.choice(["uniform", "normal"]),
        utility_distribution=rng.choice(["uniform", "normal", "power:0.5"]),
        budget_factor=rng.choice([1.0, 2.0, 3.0]),
        budget_distribution=rng.choice(["uniform", "normal"]),
        conflict_ratio=rng.choice([0.0, 0.2, 0.5]),
        grid_size=grid_size,
        seed=rng.randrange(2**31),
    )


def check_partition(
    config,
    cells: int,
    algorithm: str = "DeDPO",
    utility_floor: float = PARTITION_UTILITY_FLOOR,
) -> List[FuzzFinding]:
    """Differential-check one clustered config at one cell count.

    Three checks, in the partition layer's quality regime (see
    ``docs/partitioning.md``): the merged plan passes the independent
    oracle; its utility reaches ``utility_floor`` of the monolithic
    plan's; and when the cut degenerates to a single cell, the merged
    plan is *byte-identical* to the monolithic one (the only case where
    the old bit-identity contract still applies).
    """
    from ..algorithms.partitioned import solve_partitioned
    from ..core.partition import PartitionError
    from ..datagen.clustered import generate_clustered_instance
    from ..io import canonical_planning_bytes

    label = f"{algorithm}+grid[{cells}]"
    try:
        instance = generate_clustered_instance(config)
    except Exception as exc:  # noqa: BLE001 - the whole point of fuzzing
        return [
            FuzzFinding("<datagen>", "crash", f"{type(exc).__name__}: {exc}")
        ]
    try:
        mono = make_solver(algorithm).solve(instance)
    except Exception as exc:  # noqa: BLE001
        return [
            FuzzFinding(algorithm, "crash", f"{type(exc).__name__}: {exc}")
        ]
    try:
        solved = solve_partitioned(instance, algorithm=algorithm, cells=cells)
    except PartitionError:
        # The partitioner refused the cut (high-replication guard or a
        # degenerate instance).  That IS the contract: every production
        # caller degrades to the monolithic solve, so there is no merge
        # whose quality could violate the floor.
        return []
    except Exception as exc:  # noqa: BLE001
        return [
            FuzzFinding(
                label, "partition-crash", f"{type(exc).__name__}: {exc}"
            )
        ]
    findings: List[FuzzFinding] = []
    report = verify_planning(instance, solved.planning)
    for violation in report.violations:
        findings.append(
            FuzzFinding(
                label,
                f"partition-oracle:{violation.constraint}",
                violation.message,
            )
        )
    mono_utility = mono.total_utility()
    merged_utility = solved.planning.total_utility()
    if mono_utility > 0 and merged_utility < utility_floor * mono_utility:
        findings.append(
            FuzzFinding(
                label,
                "partition-utility",
                f"merged utility {merged_utility:.6f} is below the "
                f"{utility_floor:g} floor of monolithic "
                f"{mono_utility:.6f} (ratio "
                f"{merged_utility / mono_utility:.4f})",
            )
        )
    if len(solved.partition.cells) == 1:
        merged_bytes = canonical_planning_bytes(solved.planning)
        mono_bytes = canonical_planning_bytes(mono)
        if merged_bytes != mono_bytes:
            findings.append(
                FuzzFinding(
                    label,
                    "partition-bytes",
                    f"single-cell partition diverges from the monolithic "
                    f"solve: {merged_bytes[:160]!r} != {mono_bytes[:160]!r}",
                )
            )
    return findings


def _shrink_partition_candidates(config) -> List[object]:
    """Simpler configs to try while a partition failure reproduces."""
    candidates: List[object] = []

    def propose(**changes) -> None:
        candidates.append(config.with_overrides(**changes, name=None))

    if config.num_users > 1:
        propose(num_users=max(1, config.num_users // 2))
    if config.num_events > 1:
        propose(num_events=max(1, config.num_events // 2))
    if config.num_clusters > 1:
        propose(num_clusters=1)
    if config.conflict_ratio:
        propose(conflict_ratio=0.0)
    if config.utility_radius is not None:
        propose(utility_radius=None)
    for knob in (
        "capacity_distribution",
        "utility_distribution",
        "budget_distribution",
    ):
        if getattr(config, knob) != "uniform":
            propose(**{knob: "uniform"})
    return candidates


def shrink_partition_config(
    config,
    cells: int,
    algorithm: str = "DeDPO",
    utility_floor: float = PARTITION_UTILITY_FLOOR,
    max_rounds: int = 12,
):
    """Greedily shrink a failing clustered config to a minimal repro."""
    current = config
    findings = check_partition(current, cells, algorithm, utility_floor)
    if not findings:
        return current, findings  # flaky input; nothing to shrink
    for _ in range(max_rounds):
        for candidate in _shrink_partition_candidates(current):
            candidate_findings = check_partition(
                candidate, cells, algorithm, utility_floor
            )
            if candidate_findings:
                current, findings = candidate, candidate_findings
                break
        else:
            break
    return current, findings


def run_partition_fuzz(
    seed: int = 0,
    max_instances: int = 50,
    time_budget_s: Optional[float] = None,
    algorithm: str = "DeDPO",
    cells: Optional[int] = None,
    utility_floor: float = PARTITION_UTILITY_FLOOR,
    shrink: bool = True,
    out_path: Optional[str] = None,
    progress: bool = False,
    progress_stream=None,
) -> FuzzReport:
    """Run a partition campaign; stop at the first failing instance.

    Each instance is one seeded clustered config checked by
    :func:`check_partition` at one cell count — ``cells`` when given,
    otherwise a seeded draw from :data:`PARTITION_CELL_CHOICES` so the
    single-cell bit-identity case is exercised alongside real cuts.
    """
    rng = random.Random(seed)
    stream = progress_stream if progress_stream is not None else sys.stderr
    report = FuzzReport(
        seed=seed,
        algorithms=[algorithm],
        mode="partition",
        partition_utility_floor=utility_floor,
    )
    start = time.perf_counter()

    for index in range(max_instances):
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        config = random_clustered_config(rng)
        instance_cells = (
            cells if cells is not None else rng.choice(PARTITION_CELL_CHOICES)
        )
        findings = check_partition(
            config, instance_cells, algorithm, utility_floor
        )
        report.instances_run = index + 1
        if findings:
            report.findings = findings
            report.failing_config = config
            report.partition_cells = instance_cells
            if shrink:
                shrunk, shrunk_findings = shrink_partition_config(
                    config, instance_cells, algorithm, utility_floor
                )
                report.shrunk_config = shrunk
                report.findings = shrunk_findings
            if out_path:
                dump_repro(report, out_path)
                report.repro_path = out_path
            break
        if progress and (index + 1) % 10 == 0:
            print(
                f"[partition seed={seed}] {index + 1}/{max_instances} "
                f"instances clean ({time.perf_counter() - start:.1f}s)",
                file=stream,
                flush=True,
            )

    report.elapsed_s = time.perf_counter() - start
    return report


def _config_to_dict(config: SyntheticConfig) -> Dict[str, object]:
    return dataclasses.asdict(config)


def config_from_dict(data: Mapping[str, object]) -> SyntheticConfig:
    """Rebuild a :class:`SyntheticConfig` from its JSON form."""
    fields = {f.name for f in dataclasses.fields(SyntheticConfig)}
    return SyntheticConfig(**{k: v for k, v in data.items() if k in fields})


def dump_repro(report: FuzzReport, path: str) -> None:
    """Write the failing-seed JSON artifact for a failed campaign.

    Churn campaigns additionally record the failing mutation stream
    (and its shrunk minimum) in op-tagged wire form under
    ``mutations`` / ``shrunk_mutations``; :func:`replay` prefers the
    shrunk list.
    """
    from ..io import mutation_to_dict

    payload: Dict[str, object] = {
        "description": (
            "repro.verify.fuzz failure artifact — rebuild the instance "
            "with repro.verify.fuzz.replay(path) or from shrunk_config "
            "via repro.datagen.generate_instance."
        ),
        "mode": report.mode,
        "master_seed": report.seed,
        "instances_run": report.instances_run,
        "algorithms": report.algorithms,
        "config": _config_to_dict(report.failing_config)
        if report.failing_config
        else None,
        "shrunk_config": _config_to_dict(report.shrunk_config)
        if report.shrunk_config
        else None,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if report.failing_mutations is not None:
        payload["mutations"] = [
            mutation_to_dict(m) for m in report.failing_mutations
        ]
    if report.shrunk_mutations is not None:
        payload["shrunk_mutations"] = [
            mutation_to_dict(m) for m in report.shrunk_mutations
        ]
    if report.mode == "partition":
        payload["cells"] = report.partition_cells
        payload["utility_floor"] = report.partition_utility_floor
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def replay(
    path: str,
    algorithms: Optional[Sequence[str]] = None,
    extra_solvers: Optional[Mapping[str, Callable[[], Solver]]] = None,
    certify: bool = True,
) -> List[FuzzFinding]:
    """Re-run the checks recorded in a repro JSON; returns the findings.

    Prefers the shrunk config (the minimal repro) and falls back to the
    original failing config.  A churn artifact (one with a
    ``mutations`` / ``shrunk_mutations`` key) replays the recorded
    mutation stream through :func:`fuzz_churn` instead.  Solvers that
    were injected through ``extra_solvers`` at fuzz time are not in the
    registry and must be re-supplied here to reproduce their findings.
    """
    from ..io import mutations_from_list

    with open(path) as handle:
        payload = json.load(handle)
    config_data = payload.get("shrunk_config") or payload.get("config")
    if config_data is None:
        raise ValueError(f"{path}: no config recorded")
    if payload.get("mode") == "partition":
        from ..datagen.clustered import ClusteredConfig

        fields = {f.name for f in dataclasses.fields(ClusteredConfig)}
        clustered = ClusteredConfig(
            **{k: v for k, v in config_data.items() if k in fields}
        )
        recorded = payload.get("algorithms") or ["DeDPO"]
        return check_partition(
            clustered,
            cells=int(payload.get("cells") or 4),
            algorithm=recorded[0],
            utility_floor=float(
                payload.get("utility_floor") or PARTITION_UTILITY_FLOOR
            ),
        )
    config = config_from_dict(config_data)
    if algorithms is None:
        algorithms = payload.get("algorithms") or default_algorithms()
    mutation_data = payload.get("shrunk_mutations", payload.get("mutations"))
    if mutation_data is not None:
        return fuzz_churn(config, mutations_from_list(mutation_data), algorithms)
    return fuzz_config(
        config, algorithms, extra_solvers=extra_solvers, certify=certify
    )


def run_fuzz(
    seed: int = 0,
    max_instances: int = 200,
    time_budget_s: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
    extra_solvers: Optional[Mapping[str, Callable[[], Solver]]] = None,
    certify: bool = True,
    shrink: bool = True,
    out_path: Optional[str] = None,
    progress: bool = False,
    progress_stream=None,
) -> FuzzReport:
    """Run a fuzz campaign; stop at the first failing instance.

    Args:
        seed: Master seed; drives every random draw, so a campaign is
            exactly reproducible.
        max_instances: Upper bound on instances generated.
        time_budget_s: Optional wall-clock box; the loop stops opening
            new instances once exceeded (a started instance finishes).
        algorithms: Registry names to fuzz; defaults to every registered
            solver except ``Exact``.
        extra_solvers: Extra ``{name: factory}`` solvers run alongside.
        certify: Run the exact-solver certification pass on instances
            within its size limits.
        shrink: Shrink the failing config to a minimal repro.
        out_path: Where to dump the JSON repro when a failure is found
            (nothing is written on success).
        progress: Emit a line every 25 instances to ``progress_stream``
            (default stderr).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is the campaign verdict.
    """
    rng = random.Random(seed)
    algorithms = list(algorithms) if algorithms is not None else default_algorithms()
    stream = progress_stream if progress_stream is not None else sys.stderr
    report = FuzzReport(seed=seed, algorithms=algorithms)
    start = time.perf_counter()

    for index in range(max_instances):
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        config = random_config(rng)
        findings = fuzz_config(
            config, algorithms, extra_solvers=extra_solvers, certify=certify
        )
        report.instances_run = index + 1
        if findings:
            report.findings = findings
            report.failing_config = config
            if shrink:
                shrunk, shrunk_findings = shrink_config(
                    config,
                    algorithms,
                    extra_solvers=extra_solvers,
                    certify=certify,
                )
                report.shrunk_config = shrunk
                report.findings = shrunk_findings
            if out_path:
                dump_repro(report, out_path)
                report.repro_path = out_path
            break
        if progress and (index + 1) % 25 == 0:
            print(
                f"[fuzz seed={seed}] {index + 1}/{max_instances} instances "
                f"clean ({time.perf_counter() - start:.1f}s)",
                file=stream,
                flush=True,
            )

    report.elapsed_s = time.perf_counter() - start
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Differential fuzzing of every registry USEP solver.",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--max-instances",
        type=int,
        default=200,
        help="stop after this many instances (default: 200)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock box; stop opening new instances once exceeded",
    )
    parser.add_argument(
        "--algorithms",
        help="comma-separated registry names (default: all except Exact; "
        "churn mode defaults to the DeDP/DeDPO/DeGreedy kernel trio)",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="fuzz the dynamic mutation layer (repro.core.deltas): "
        "seeded mutation streams, delta-solve after each mutation, "
        "bit-compare against a cold solve of the mutated content",
    )
    parser.add_argument(
        "--churn-kill",
        action="store_true",
        help="churn mode pointed at a real multi-worker fleet: each "
        "stream runs over HTTP through a supervised LocalCluster, the "
        "owning worker is SIGKILLed mid-stream, and the recovered "
        "instance must match an offline uninterrupted twin bit for bit",
    )
    parser.add_argument(
        "--churn-disk",
        action="store_true",
        help="churn mode with a seeded disk fault instead of a SIGKILL: "
        "each stream boots a fleet with REPRO_DISK_FAULT armed and "
        "asserts the degradation contract — every batch 200, replies "
        "flip to durable=false, journal_degraded surfaces, zero "
        "restarts, and the instance still solves from memory",
    )
    parser.add_argument(
        "--partition",
        action="store_true",
        help="fuzz the spatial-partition layer: clustered instances "
        "solved monolithically and through solve_partitioned; the merge "
        "must be oracle-clean with utility >= --utility-floor of the "
        "monolithic plan (single-cell cuts must be bit-identical)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=None,
        help="partition mode: fixed cell count (default: seeded draw "
        f"from {PARTITION_CELL_CHOICES})",
    )
    parser.add_argument(
        "--utility-floor",
        type=float,
        default=PARTITION_UTILITY_FLOOR,
        help="partition mode: minimum merged/monolithic utility ratio "
        f"(default: {PARTITION_UTILITY_FLOOR})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="churn-kill / churn-disk modes: fleet size (default: 2)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=None,
        help="churn mode: number of mutation streams (default: 20; "
        "churn-kill mode defaults to 3 — each stream boots a fleet)",
    )
    parser.add_argument(
        "--mutations-per-stream",
        type=int,
        default=30,
        help="churn mode: mutations per stream (default: 30)",
    )
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip the exact-solver certification pass",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="dump the original failing config without minimising it",
    )
    parser.add_argument(
        "--out",
        default="fuzz_failure.json",
        help="JSON repro path, written only on failure",
    )
    parser.add_argument("--quiet", action="store_true", help="no progress lines")
    args = parser.parse_args(argv)

    if args.churn_disk:
        report = run_churn_disk_fuzz(
            seed=args.seed,
            streams=args.streams if args.streams is not None else 3,
            mutations_per_stream=args.mutations_per_stream,
            workers=args.workers,
            time_budget_s=args.time_budget,
            out_path=args.out,
            progress=not args.quiet,
        )
    elif args.churn_kill:
        report = run_churn_kill_fuzz(
            seed=args.seed,
            streams=args.streams if args.streams is not None else 3,
            mutations_per_stream=args.mutations_per_stream,
            workers=args.workers,
            time_budget_s=args.time_budget,
            out_path=args.out,
            progress=not args.quiet,
        )
    elif args.partition:
        report = run_partition_fuzz(
            seed=args.seed,
            max_instances=args.max_instances,
            time_budget_s=args.time_budget,
            algorithm=(
                args.algorithms.split(",")[0] if args.algorithms else "DeDPO"
            ),
            cells=args.cells,
            utility_floor=args.utility_floor,
            shrink=not args.no_shrink,
            out_path=args.out,
            progress=not args.quiet,
        )
    elif args.churn:
        report = run_churn_fuzz(
            seed=args.seed,
            streams=args.streams if args.streams is not None else 20,
            mutations_per_stream=args.mutations_per_stream,
            time_budget_s=args.time_budget,
            algorithms=args.algorithms.split(",") if args.algorithms else None,
            shrink=not args.no_shrink,
            out_path=args.out,
            progress=not args.quiet,
        )
    else:
        report = run_fuzz(
            seed=args.seed,
            max_instances=args.max_instances,
            time_budget_s=args.time_budget,
            algorithms=args.algorithms.split(",") if args.algorithms else None,
            certify=not args.no_certify,
            shrink=not args.no_shrink,
            out_path=args.out,
            progress=not args.quiet,
        )
    print(report.summary())
    if not report.ok:
        if report.shrunk_config is not None:
            print(f"shrunk config: {report.shrunk_config}")
        if report.shrunk_mutations is not None:
            print(
                f"shrunk stream: {len(report.shrunk_mutations)} mutations "
                f"(from {len(report.failing_mutations or [])})"
            )
        if report.repro_path:
            print(f"repro written to {report.repro_path}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
