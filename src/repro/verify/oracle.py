"""The feasibility oracle: Definition 2 rechecked from raw instance data.

:func:`verify_schedules` takes nothing but an instance and a mapping
``{user_id: [event ids]}`` and re-derives every constraint of the USEP
problem from first principles:

1. **capacity** — attendee counts per event, recounted from the raw
   pair list, must not exceed ``c_v``;
2. **budget** — each user's round trip
   ``cost(u, v_1) + cost(v_1, v_2) + ... + cost(v_k, u)``, re-chained
   through direct :class:`~repro.core.costs.CostModel` calls in
   end-time order, must not exceed ``b_u``;
3. **temporal feasibility** — events of one user, ordered by
   ``(end, start, id)``, must satisfy ``t2_i <= t1_{i+1}`` for every
   consecutive pair, with no duplicates and every travel leg finite;
4. **utility** — ``mu(v, u) > 0`` for every arranged pair.

The implementation intentionally shares *no* logic with the solver
stack: no :class:`~repro.core.schedule.Schedule`, no incremental-cost
caches, no ``validate_planning``.  Costs come straight from the cost
model, intervals straight from the events, utilities straight from the
matrix — so the oracle stays trustworthy across any solver or
``core``-layer rewrite.

Every violation carries the offending ``(user_id, event_id)`` pairs so
a fuzz failure pinpoints the exact schedule entries that broke a
constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.instance import USEPInstance
from ..core.planning import Planning

#: Slack applied to the budget comparison, matching the tolerance the
#: repo-wide ``validate_planning`` uses for float travel chains.
BUDGET_TOLERANCE = 1e-9

#: Tolerance for cross-checking a solver-reported ``Omega(A)`` against
#: the oracle's independent recomputation.
UTILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One violated constraint with the pairs that break it.

    Attributes:
        constraint: ``"capacity" | "budget" | "feasibility" | "utility"``
            (plus ``"omega"`` when a reported utility fails to match the
            recomputed one).
        message: Human-readable description with the recomputed numbers.
        pairs: The offending ``(user_id, event_id)`` pairs.
    """

    constraint: str
    message: str
    pairs: Tuple[Tuple[int, int], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by fuzz repro dumps)."""
        return {
            "constraint": self.constraint,
            "message": self.message,
            "pairs": [list(pair) for pair in self.pairs],
        }


@dataclass
class VerificationReport:
    """Outcome of one oracle pass over one planning.

    Attributes:
        instance_name: Label of the instance (for logs and repro dumps).
        num_pairs: Number of arranged ``(user, event)`` pairs checked.
        recomputed_utility: ``Omega(A)`` summed independently from the
            utility matrix.
        violations: Every violated constraint, in check order.
    """

    instance_name: str
    num_pairs: int
    recomputed_utility: float
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the planning satisfies all of Definition 2."""
        return not self.violations

    @property
    def constraints_violated(self) -> List[str]:
        """Distinct violated constraint names, in first-seen order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.constraint not in seen:
                seen.append(violation.constraint)
        return seen

    def summary(self) -> str:
        """One line for progress logs: verdict + violation breakdown."""
        if self.ok:
            return (
                f"{self.instance_name}: OK ({self.num_pairs} pairs, "
                f"Omega={self.recomputed_utility:.6g})"
            )
        parts = ", ".join(
            f"{v.constraint}: {v.message}" for v in self.violations[:4]
        )
        more = (
            f" (+{len(self.violations) - 4} more)"
            if len(self.violations) > 4
            else ""
        )
        return f"{self.instance_name}: {len(self.violations)} violation(s) — {parts}{more}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by fuzz repro dumps)."""
        return {
            "instance": self.instance_name,
            "ok": self.ok,
            "num_pairs": self.num_pairs,
            "recomputed_utility": self.recomputed_utility,
            "violations": [v.to_dict() for v in self.violations],
        }


def _ordered(instance: USEPInstance, event_ids: Sequence[int]) -> List[int]:
    """Attendance order: sort by ``(end, start, id)`` from raw events.

    For a pairwise non-overlapping event set this is the unique
    attendance order; for an overlapping set any order fails the
    consecutive ``t2 <= t1`` check below, so the choice cannot mask a
    violation.
    """
    events = instance.events
    return sorted(
        event_ids, key=lambda v: (events[v].end, events[v].start, v)
    )


def verify_schedules(
    instance: USEPInstance,
    schedules: Mapping[int, Sequence[int]],
    reported_utility: Optional[float] = None,
) -> VerificationReport:
    """Oracle-check raw schedules against all four USEP constraints.

    Args:
        instance: The problem instance the schedules claim to solve.
        schedules: ``{user_id: [event ids]}``; order is irrelevant, the
            oracle re-derives the attendance order itself.  Users absent
            from the mapping have empty schedules.
        reported_utility: Optional solver-reported ``Omega(A)``; when
            given, a mismatch with the recomputed value (beyond
            :data:`UTILITY_TOLERANCE`) is reported as an ``"omega"``
            violation.

    Returns:
        A :class:`VerificationReport`; ``report.ok`` is the verdict.
    """
    model = instance.cost_model
    events = instance.events
    users = instance.users
    violations: List[Violation] = []
    occupancy: Dict[int, List[int]] = {}  # event -> attending users
    omega = 0.0
    num_pairs = 0

    for user_id, raw_ids in sorted(schedules.items()):
        if not raw_ids:
            continue
        if not 0 <= user_id < len(users):
            violations.append(
                Violation(
                    "feasibility",
                    f"unknown user id {user_id}",
                    tuple((user_id, ev) for ev in raw_ids),
                )
            )
            continue
        user = users[user_id]
        bogus = [ev for ev in raw_ids if not 0 <= ev < len(events)]
        if bogus:
            violations.append(
                Violation(
                    "feasibility",
                    f"user {user_id}: unknown event ids {bogus}",
                    tuple((user_id, ev) for ev in bogus),
                )
            )
            continue
        num_pairs += len(raw_ids)

        # -- duplicates -------------------------------------------------
        seen: Dict[int, int] = {}
        for ev in raw_ids:
            seen[ev] = seen.get(ev, 0) + 1
        dupes = sorted(ev for ev, count in seen.items() if count > 1)
        if dupes:
            violations.append(
                Violation(
                    "feasibility",
                    f"user {user_id}: events arranged more than once: {dupes}",
                    tuple((user_id, ev) for ev in dupes),
                )
            )

        ordered = _ordered(instance, seen)

        # -- temporal chaining (Definition 1) ---------------------------
        for a, b in zip(ordered, ordered[1:]):
            if events[a].end > events[b].start:
                violations.append(
                    Violation(
                        "feasibility",
                        f"user {user_id}: events {a} [{events[a].start}, "
                        f"{events[a].end}] and {b} [{events[b].start}, "
                        f"{events[b].end}] overlap in time",
                        ((user_id, a), (user_id, b)),
                    )
                )

        # -- travel chain vs budget (Constraint 2) ----------------------
        legs: List[Tuple[float, Tuple[Tuple[int, int], ...]]] = []
        legs.append(
            (
                model.user_to_event(user, events[ordered[0]]),
                ((user_id, ordered[0]),),
            )
        )
        for a, b in zip(ordered, ordered[1:]):
            legs.append(
                (
                    model.event_to_event(events[a], events[b]),
                    ((user_id, a), (user_id, b)),
                )
            )
        legs.append(
            (
                model.event_to_user(events[ordered[-1]], user),
                ((user_id, ordered[-1]),),
            )
        )
        unreachable = [entry for entry in legs if not math.isfinite(entry[0])]
        if unreachable:
            pairs = tuple(
                pair for _, leg_pairs in unreachable for pair in leg_pairs
            )
            violations.append(
                Violation(
                    "feasibility",
                    f"user {user_id}: schedule {ordered} contains "
                    f"{len(unreachable)} unreachable travel leg(s)",
                    pairs,
                )
            )
        else:
            total_cost = math.fsum(cost for cost, _ in legs)
            if total_cost > user.budget + BUDGET_TOLERANCE:
                violations.append(
                    Violation(
                        "budget",
                        f"user {user_id}: travel cost {total_cost} exceeds "
                        f"budget {user.budget}",
                        tuple((user_id, ev) for ev in ordered),
                    )
                )

        # -- utility constraint + Omega accumulation --------------------
        for ev in ordered:
            mu = instance.utility(ev, user_id)
            if mu <= 0.0:
                violations.append(
                    Violation(
                        "utility",
                        f"user {user_id} arranged event {ev} with "
                        f"mu(v, u) = {mu}",
                        ((user_id, ev),),
                    )
                )
            omega += mu
            occupancy.setdefault(ev, []).append(user_id)

    # -- capacity (Constraint 1) ----------------------------------------
    for ev in sorted(occupancy):
        attendees = occupancy[ev]
        if len(attendees) > events[ev].capacity:
            violations.append(
                Violation(
                    "capacity",
                    f"event {ev}: {len(attendees)} attendees exceed "
                    f"capacity {events[ev].capacity}",
                    tuple((user_id, ev) for user_id in attendees),
                )
            )

    if (
        reported_utility is not None
        and abs(reported_utility - omega) > UTILITY_TOLERANCE
    ):
        violations.append(
            Violation(
                "omega",
                f"reported Omega(A) {reported_utility} != recomputed {omega}",
            )
        )

    return VerificationReport(
        instance_name=instance.name or "<unnamed>",
        num_pairs=num_pairs,
        recomputed_utility=omega,
        violations=violations,
    )


def verify_planning(
    instance: USEPInstance,
    planning: Planning,
    check_reported_utility: bool = True,
) -> VerificationReport:
    """Oracle-check a :class:`~repro.core.planning.Planning`.

    Only the raw pair data is extracted from the planning (which user
    attends which events); every check runs on that data alone, so none
    of the planning's internal caches can vouch for themselves.  With
    ``check_reported_utility`` the planning's own ``total_utility()`` is
    additionally cross-checked against the independent recomputation.
    """
    schedules = {
        schedule.user_id: list(schedule.event_ids)
        for schedule in planning.schedules
        if len(schedule)
    }
    reported = planning.total_utility() if check_reported_utility else None
    return verify_schedules(instance, schedules, reported_utility=reported)
