"""Independent solution verification for USEP plannings.

This package is the repo's safety net for solver rewrites: it checks
solver *outputs* against the paper's Definition 2 without sharing any
code with the solver stack.

* :mod:`repro.verify.oracle` — recomputes feasibility of a planning
  from raw instance data (capacities, travel legs, intervals, the
  utility matrix) and reports every violated constraint with the
  offending ``(user, event)`` pairs.
* :mod:`repro.verify.certify` — mechanical certificates beyond plain
  feasibility: ``Omega(A)`` recomputation, the DeDP family's
  1/2-approximation bound against the exact solver on small instances,
  and capacity-monotonicity of the verified optimum.
* :mod:`repro.verify.fuzz` — seeded differential fuzzing: random
  instances across the datagen distributions, every registry algorithm
  oracle-checked, kernels compared bit-for-bit against their ``*-seed``
  twins, failures shrunk to a minimal JSON repro.

The oracle deliberately reimplements the constraint arithmetic (cost
chaining, interval ordering, occupancy counting) instead of calling
``Schedule``/``Planning`` helpers, so a bug in the shared primitives
cannot hide itself from its own verification.
"""

from .certify import (
    Certificate,
    certify_capacity_monotonicity,
    certify_half_approximation,
    certify_omega,
    recompute_utility,
    with_increased_capacity,
)
from .oracle import (
    VerificationReport,
    Violation,
    verify_planning,
    verify_schedules,
)

__all__ = [
    "Certificate",
    "VerificationReport",
    "Violation",
    "certify_capacity_monotonicity",
    "certify_half_approximation",
    "certify_omega",
    "recompute_utility",
    "verify_planning",
    "verify_schedules",
    "with_increased_capacity",
]
