"""RatioGreedy — Algorithm 1 of the paper.

The heuristic repeatedly adds the unarranged ``(event, user)`` pair with
the largest utility-cost ratio (Equation 2) whose addition keeps the
planning feasible.  The paper maintains a heap ``H`` holding, for every
event, its best valid user, and for every user, its best valid event;
after each addition the entries whose ``inc_cost`` changed (exactly the
pairs incident to the updated user) are recomputed (lines 12-20).

This implementation realises the same invariant with generation-stamped
heap entries and lazy invalidation:

* one ``'E'`` entry per event (its current best valid user) and one
  ``'U'`` entry per user (its current best valid event);
* a watcher index ``events_watching_user`` records which events' best
  entries reference which user, so that when ``S_u`` changes we refresh
  precisely the entries the paper's lines 15-18 refresh;
* every pop is re-validated against the live planning, so stale entries
  (event filled up, budget consumed) are replaced rather than applied.

The engine can be *seeded* with an existing planning and restricted to a
subset of events — that is how Section 4.3.2's ``+RG`` augmentation runs
RatioGreedy over the not-yet-full events of a DeDPO/DeGreedy planning.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver, ratio_sort_key

_Key = Tuple[float, float, float, int, int]


class _RatioGreedyEngine:
    """One run of the greedy loop over a (possibly pre-filled) planning."""

    def __init__(
        self,
        instance: USEPInstance,
        planning: Planning,
        allowed_events: Optional[Iterable[int]] = None,
    ):
        self.instance = instance
        self.planning = planning
        if allowed_events is None:
            self.allowed: Set[int] = set(range(instance.num_events))
        else:
            self.allowed = set(allowed_events)
        self.heap: list = []
        self.event_gen = [0] * instance.num_events
        self.user_gen = [0] * instance.num_users
        self.events_watching_user: Dict[int, Set[int]] = {}
        self.event_watches: Dict[int, int] = {}  # event -> user it references
        self.counters = {"pairs_added": 0, "heap_pushes": 0, "stale_pops": 0}

    # ------------------------------------------------------------------
    # best-pair searches
    # ------------------------------------------------------------------
    def _pair_key(self, event_id: int, user_id: int) -> Optional[_Key]:
        insertion = self.planning.plan_valid_insertion(event_id, user_id)
        if insertion is None:
            return None
        mu = self.instance.utility(event_id, user_id)
        return ratio_sort_key(mu, insertion.inc_cost, event_id, user_id)

    def _best_user_for_event(self, event_id: int) -> Optional[Tuple[int, _Key]]:
        if event_id not in self.allowed or self.planning.is_full(event_id):
            return None
        utilities = self.instance.utilities_for_event(event_id)
        best: Optional[Tuple[int, _Key]] = None
        for user_id, mu in enumerate(utilities):
            if mu <= 0.0:
                continue
            key = self._pair_key(event_id, user_id)
            if key is not None and (best is None or key < best[1]):
                best = (user_id, key)
        return best

    def _best_event_for_user(self, user_id: int) -> Optional[Tuple[int, _Key]]:
        utilities = self.instance.utilities_for_user(user_id)
        best: Optional[Tuple[int, _Key]] = None
        for event_id in self.allowed:
            if utilities[event_id] <= 0.0 or self.planning.is_full(event_id):
                continue
            key = self._pair_key(event_id, user_id)
            if key is not None and (best is None or key < best[1]):
                best = (event_id, key)
        return best

    # ------------------------------------------------------------------
    # heap maintenance
    # ------------------------------------------------------------------
    def _unwatch(self, event_id: int) -> None:
        watched = self.event_watches.pop(event_id, None)
        if watched is not None:
            self.events_watching_user.get(watched, set()).discard(event_id)

    def _push_event_entry(self, event_id: int) -> None:
        self.event_gen[event_id] += 1
        self._unwatch(event_id)
        best = self._best_user_for_event(event_id)
        if best is None:
            return
        user_id, key = best
        self.event_watches[event_id] = user_id
        self.events_watching_user.setdefault(user_id, set()).add(event_id)
        heapq.heappush(
            self.heap, (key, "E", event_id, user_id, self.event_gen[event_id])
        )
        self.counters["heap_pushes"] += 1

    def _push_user_entry(self, user_id: int) -> None:
        self.user_gen[user_id] += 1
        best = self._best_event_for_user(user_id)
        if best is None:
            return
        event_id, key = best
        heapq.heappush(
            self.heap, (key, "U", user_id, event_id, self.user_gen[user_id])
        )
        self.counters["heap_pushes"] += 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> Planning:
        for event_id in sorted(self.allowed):
            self._push_event_entry(event_id)
        for user_id in range(self.instance.num_users):
            self._push_user_entry(user_id)

        while self.heap:
            key, kind, owner, partner, gen = heapq.heappop(self.heap)
            current_gen = (
                self.event_gen[owner] if kind == "E" else self.user_gen[owner]
            )
            if gen != current_gen:
                self.counters["stale_pops"] += 1
                continue
            event_id, user_id = (owner, partner) if kind == "E" else (partner, owner)

            live_key = self._pair_key(event_id, user_id)
            if live_key is None:
                # The referenced pair died (capacity/budget consumed
                # elsewhere); recompute the owner's best and move on.
                self.counters["stale_pops"] += 1
                if kind == "E":
                    self._push_event_entry(owner)
                else:
                    self._push_user_entry(owner)
                continue
            if live_key != key:
                # inc_cost drifted; re-queue at the correct priority.
                entry_gen = self.event_gen[owner] if kind == "E" else gen
                heapq.heappush(self.heap, (live_key, kind, owner, partner, entry_gen))
                self.counters["heap_pushes"] += 1
                continue

            insertion = self.planning.plan_valid_insertion(event_id, user_id)
            assert insertion is not None  # live_key proved validity just above
            self.planning.apply_insertion(user_id, insertion)
            self.counters["pairs_added"] += 1

            # Lines 12-14: next best user for the event (if seats remain).
            self._push_event_entry(event_id)
            # Lines 15-18: refresh every heap entry incident to this user,
            # whose inc_cost may have changed with the new schedule.
            for watcher in list(self.events_watching_user.get(user_id, ())):
                if watcher != event_id:
                    self._push_event_entry(watcher)
            # Lines 19-20: next best event for the user.
            self._push_user_entry(user_id)
        return self.planning


class RatioGreedy(Solver):
    """The stand-alone RatioGreedy heuristic (Algorithm 1)."""

    name = "RatioGreedy"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        engine = _RatioGreedyEngine(instance, Planning(instance))
        planning = engine.run()
        self.counters = engine.counters
        return planning


def greedy_augment(
    planning: Planning, allowed_events: Optional[Iterable[int]] = None
) -> Dict[str, int]:
    """Run the RatioGreedy loop on top of an existing planning (in place).

    This is the ``+RG`` post-pass of Section 4.3.2: ``allowed_events``
    defaults to the events that still have spare capacity; incremental
    costs are computed against the already-arranged schedules.  Returns
    the engine counters (``pairs_added`` etc.).
    """
    instance = planning.instance
    if allowed_events is None:
        allowed_events = [
            v for v in range(instance.num_events) if not planning.is_full(v)
        ]
    engine = _RatioGreedyEngine(instance, planning, allowed_events)
    engine.run()
    return engine.counters
