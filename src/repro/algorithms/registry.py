"""Name-based solver registry used by the experiment harness and CLI.

The names match the paper's figure legends exactly: ``RatioGreedy``,
``DeDP``, ``DeDPO``, ``DeDPO+RG``, ``DeGreedy``, ``DeGreedy+RG`` (plus
``DeDP+RG`` and ``Exact`` for tests/ablations).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .augment import DeDPOPlusRG, DeDPPlusRG, DeGreedyPlusRG
from .base import Solver
from .decomposed import DeDPO, DeGreedy
from .dedp import DeDP
from .dp_single_dense import DeDPODense
from .exact import ExactSolver
from .local_search import LocalSearchSolver
from .ratio_greedy import RatioGreedy
from .seed_baseline import DeDPOSeed, DeDPSeed, DeGreedySeed
from .single_event import GreedySingleEventAssignment, SingleEventAssignment

_FACTORIES: Dict[str, Callable[[], Solver]] = {
    "RatioGreedy": RatioGreedy,
    "DeDP": DeDP,
    "DeDP-seed": DeDPSeed,
    "DeDPO-seed": DeDPOSeed,
    "DeGreedy-seed": DeGreedySeed,
    "DeDP+RG": DeDPPlusRG,
    "DeDPO": DeDPO,
    "DeDPO+RG": DeDPOPlusRG,
    "DeDPO-dense": DeDPODense,
    "DeGreedy": DeGreedy,
    "DeGreedy+RG": DeGreedyPlusRG,
    "Exact": ExactSolver,
    "DeDPO+LS": lambda: LocalSearchSolver(DeDPO()),
    "DeGreedy+LS": lambda: LocalSearchSolver(DeGreedy()),
    "RatioGreedy+LS": lambda: LocalSearchSolver(RatioGreedy()),
    "SingleEvent": SingleEventAssignment,
    "SingleEvent-greedy": GreedySingleEventAssignment,
}

#: The six algorithms the paper's figures compare.
PAPER_ALGORITHMS: List[str] = [
    "RatioGreedy",
    "DeDP",
    "DeDPO",
    "DeDPO+RG",
    "DeGreedy",
    "DeGreedy+RG",
]

#: The scalable subset used in Figure 4 (DeDP excluded, as in the paper).
SCALABLE_ALGORITHMS: List[str] = [
    "RatioGreedy",
    "DeDPO",
    "DeDPO+RG",
    "DeGreedy",
    "DeGreedy+RG",
]


def make_solver(name: str) -> Solver:
    """Instantiate a solver by its registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_solvers() -> List[str]:
    """All registered solver names."""
    return sorted(_FACTORIES)
