"""Exact USEP solver for small instances (test oracle).

USEP is NP-hard (Theorem 1), so this solver is exponential and guarded
by size limits; it exists to (a) verify solver outputs on toy instances,
and (b) empirically confirm Theorem 3's 1/2-approximation bound in the
property-based tests.

It enumerates every feasible schedule per user (a DFS over events in
time order, pruning on outbound cost), then branch-and-bounds over users
with an optimistic bound that ignores capacities.  Prefix schedules are
*not* pruned on the return leg: with a metric cost model the triangle
inequality would justify it, but matrix models need not be metric, so
only provably-safe pruning is applied.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import SolverError
from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver

_ScheduleOption = Tuple[Tuple[int, ...], float]  # (event ids in time order, utility)


def enumerate_feasible_schedules(
    instance: USEPInstance, user_id: int
) -> List[_ScheduleOption]:
    """All feasible schedules for one user, including the empty one.

    Events are explored in end-time order, so every generated tuple is a
    valid attendance order; budget (including the return leg) and the
    utility constraint are enforced per Definition 2.
    """
    budget = instance.users[user_id].budget
    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)
    events = instance.events
    candidates = [
        ev_id
        for ev_id in instance.sorted_event_ids
        if instance.utility(ev_id, user_id) > 0.0
    ]
    options: List[_ScheduleOption] = [((), 0.0)]

    def extend(prefix: Tuple[int, ...], outbound: float, utility: float, from_pos: int):
        for pos in range(from_pos, len(candidates)):
            ev_id = candidates[pos]
            if prefix:
                last = prefix[-1]
                if not events[last].interval.precedes(events[ev_id].interval):
                    continue
                leg = instance.cost_vv(last, ev_id)
            else:
                leg = to_event[ev_id]
            if math.isinf(leg) or outbound + leg > budget:
                continue
            new_outbound = outbound + leg
            new_prefix = prefix + (ev_id,)
            new_utility = utility + instance.utility(ev_id, user_id)
            if new_outbound + from_event[ev_id] <= budget:
                options.append((new_prefix, new_utility))
            # Keep extending even if the return leg from ev_id busts the
            # budget: a later event may have a cheaper way home.
            extend(new_prefix, new_outbound, new_utility, pos + 1)

    extend((), 0.0, 0.0, 0)
    return options


class ExactSolver(Solver):
    """Branch-and-bound optimal planner (exponential; small inputs only)."""

    name = "Exact"

    def __init__(self, max_events: int = 10, max_users: int = 8):
        self.max_events = max_events
        self.max_users = max_users
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        if instance.num_events > self.max_events or instance.num_users > self.max_users:
            raise SolverError(
                f"ExactSolver is limited to |V| <= {self.max_events}, "
                f"|U| <= {self.max_users}; got |V| = {instance.num_events}, "
                f"|U| = {instance.num_users}"
            )
        per_user: List[List[_ScheduleOption]] = []
        for user_id in range(instance.num_users):
            options = enumerate_feasible_schedules(instance, user_id)
            options.sort(key=lambda opt: -opt[1])  # best-first for tight bounds
            per_user.append(options)

        # Optimistic completion bound: best schedule per remaining user,
        # capacities ignored.
        best_per_user = [opts[0][1] if opts else 0.0 for opts in per_user]
        suffix_bound = [0.0] * (instance.num_users + 1)
        for u in range(instance.num_users - 1, -1, -1):
            suffix_bound[u] = suffix_bound[u + 1] + best_per_user[u]

        capacities = [ev.capacity for ev in instance.events]
        best_utility = -1.0
        best_choice: List[Tuple[int, ...]] = [()] * instance.num_users
        choice: List[Tuple[int, ...]] = [()] * instance.num_users
        nodes = 0

        def search(user_idx: int, utility: float) -> None:
            nonlocal best_utility, best_choice, nodes
            nodes += 1
            if utility + suffix_bound[user_idx] <= best_utility:
                return
            if user_idx == instance.num_users:
                if utility > best_utility:
                    best_utility = utility
                    best_choice = list(choice)
                return
            for schedule, sched_utility in per_user[user_idx]:
                if any(capacities[ev_id] == 0 for ev_id in schedule):
                    continue
                for ev_id in schedule:
                    capacities[ev_id] -= 1
                choice[user_idx] = schedule
                search(user_idx + 1, utility + sched_utility)
                for ev_id in schedule:
                    capacities[ev_id] += 1

        search(0, 0.0)

        planning = Planning(instance)
        for user_id, schedule in enumerate(best_choice):
            if schedule:
                planning.set_schedule(user_id, list(schedule))
        self.counters = {
            "nodes": nodes,
            "schedule_options": sum(len(opts) for opts in per_user),
        }
        return planning


def optimal_utility(instance: USEPInstance, **limits) -> float:
    """Convenience: the optimal ``Omega(A*)`` of a small instance."""
    solver = ExactSolver(**limits) if limits else ExactSolver()
    return solver.solve(instance).total_utility()
