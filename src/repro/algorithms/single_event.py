"""Single-event-per-user assignment — the prior-work baseline.

The paper's introduction motivates USEP against prior event-arrangement
work (SEO, KDD'14 [19]; CAEA, ICDE'15 [26]) that assigns **at most one
event to each user**, observing that "the overall utility of such
strategy is limited in real world" because users can attend several
non-conflicting events.  This module implements that restricted model
*optimally*, so the gap the intro claims can be measured:

* :class:`SingleEventAssignment` solves the capacitated one-event-per-
  user assignment exactly as a min-cost flow (users -> events -> sink,
  unit user supply, ``c_v`` event capacity, cost ``-mu``), using
  ``networkx.network_simplex`` on integer-scaled utilities.  The user's
  travel budget must still cover the event's round trip (a user who
  cannot reach an event cannot be assigned to it).
* :class:`GreedySingleEventAssignment` is the obvious utility-sorted
  greedy over pairs — a cheap approximation of the same model, useful
  when networkx-scale flow is overkill.

Both return ordinary :class:`~repro.core.planning.Planning` objects (a
single-event planning is trivially feasible in time), so every USEP
validator, metric and report works on them unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver

#: Utilities are floats in [0, 1]; network_simplex needs integer costs.
_SCALE = 10**6


def _reachable(instance: USEPInstance, user_id: int, event_id: int) -> bool:
    """Can the user afford the event's round trip (and wants it)?"""
    if instance.utility(event_id, user_id) <= 0.0:
        return False
    return (
        instance.round_trip_cost(user_id, event_id)
        <= instance.users[user_id].budget
    )


class SingleEventAssignment(Solver):
    """Optimal one-event-per-user planning via min-cost flow.

    Maximises ``sum mu(v, u)`` subject to: each user at most one event,
    each event at most ``c_v`` users, assigned pairs affordable within
    the user's budget.  This is exactly the assignment polytope, so the
    LP/network-simplex optimum is integral and optimal.
    """

    name = "SingleEvent"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        graph = nx.DiGraph()
        demand = 0
        usable_pairs = 0
        for user in instance.users:
            # users are transshipment-free sources via a super source so
            # that assignment stays *optional* (a user may stay home).
            graph.add_edge("S", f"u{user.id}", capacity=1, weight=0)
        for event in instance.events:
            cap = instance.clamped_capacity(event.id)
            graph.add_edge(f"v{event.id}", "T", capacity=cap, weight=0)
        for event in instance.events:
            utilities = instance.utilities_for_event(event.id)
            for user_id, mu in enumerate(utilities):
                if mu > 0.0 and _reachable(instance, user_id, event.id):
                    graph.add_edge(
                        f"u{user_id}",
                        f"v{event.id}",
                        capacity=1,
                        weight=-int(round(mu * _SCALE)),
                    )
                    usable_pairs += 1
        # allow unassigned flow to bypass events at zero reward
        graph.add_edge("S", "T", capacity=instance.num_users, weight=0)
        graph.nodes["S"]["demand"] = -instance.num_users
        graph.nodes["T"]["demand"] = instance.num_users

        planning = Planning(instance)
        if usable_pairs:
            _, flow = nx.network_simplex(graph)
            assigned = 0
            for user in instance.users:
                for target, units in flow.get(f"u{user.id}", {}).items():
                    if units > 0 and target.startswith("v"):
                        planning.add_pair(int(target[1:]), user.id)
                        assigned += 1
            self.counters = {"usable_pairs": usable_pairs, "assigned": assigned}
        else:
            self.counters = {"usable_pairs": 0, "assigned": 0}
        return planning


class GreedySingleEventAssignment(Solver):
    """Utility-sorted greedy for the one-event-per-user model."""

    name = "SingleEvent-greedy"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        pairs: List[Tuple[float, int, int]] = []
        for event in instance.events:
            utilities = instance.utilities_for_event(event.id)
            for user_id, mu in enumerate(utilities):
                if mu > 0.0 and _reachable(instance, user_id, event.id):
                    pairs.append((mu, event.id, user_id))
        pairs.sort(key=lambda p: (-p[0], p[1], p[2]))

        planning = Planning(instance)
        taken_users = set()
        for mu, event_id, user_id in pairs:
            if user_id in taken_users or planning.is_full(event_id):
                continue
            planning.add_pair(event_id, user_id)
            taken_users.add(user_id)
        self.counters = {"assigned": len(taken_users), "candidate_pairs": len(pairs)}
        return planning
