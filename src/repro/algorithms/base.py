"""Solver interface and result records shared by all USEP algorithms.

Every algorithm in this package implements :class:`Solver`:
``solve(instance)`` returns a feasible :class:`~repro.core.planning.Planning`,
while :meth:`Solver.run` wraps it with wall-clock timing, optional
peak-memory tracking (``tracemalloc``) and optional full constraint
validation, producing a :class:`SolverResult` the experiment harness can
log directly.

Memory semantics match the paper's reporting: the paper plots memory
consumed *in addition to the input data*, so :meth:`Solver.run` starts
``tracemalloc`` after the instance exists and reports the solver's own
allocation peak.  Cost caches inside the instance are warmed first (see
``warm_instance``) so lazily built cost matrices are attributed to the
input, not to whichever solver happens to run first.
"""

from __future__ import annotations

import time
import tracemalloc
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core import instrument
from ..core.instance import USEPInstance
from ..core.planning import Planning, validate_planning


@dataclass
class SolverResult:
    """Outcome of one solver run on one instance.

    Attributes:
        solver: Registry name of the algorithm.
        planning: The planning it produced.
        utility: ``Omega(A)`` of that planning.
        wall_time_s: Wall-clock seconds spent inside ``solve``.
        peak_memory_bytes: Peak solver allocations (None if not measured).
        counters: Algorithm-specific counters (iterations, heap pushes,
            DP states, ...) for ablation reporting.
    """

    solver: str
    planning: Planning
    utility: float
    wall_time_s: float
    peak_memory_bytes: Optional[int] = None
    counters: Dict[str, int] = field(default_factory=dict)

    def summary_row(self) -> Dict[str, object]:
        """Flat dict for CSV/table output."""
        row: Dict[str, object] = {
            "solver": self.solver,
            "utility": round(self.utility, 6),
            "time_s": round(self.wall_time_s, 6),
        }
        if self.peak_memory_bytes is not None:
            row["peak_mem_kb"] = self.peak_memory_bytes // 1024
        row.update(self.counters)
        return row


def warm_instance(instance: USEPInstance) -> None:
    """Materialise the instance's lazy cost caches and array layer.

    Called before memory measurement so the |V| x |V| cost matrix,
    per-user cost rows and the precomputed
    :class:`~repro.core.arrays.InstanceArrays` count as input data (as
    in the paper's memory plots), not as solver working set.  User rows
    are only warmed when the instance caches them.
    """
    if instance.num_events:
        instance.cost_vv(0, 0)
    if instance._cache_user_costs:  # noqa: SLF001 - deliberate internal knob
        for user_id in range(instance.num_users):
            instance.costs_to_events(user_id)
            instance.costs_from_events(user_id)
    instance.arrays()


class Solver(ABC):
    """Base class for USEP planning algorithms."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def solve(self, instance: USEPInstance) -> Planning:
        """Compute a feasible planning for the instance."""

    def run(
        self,
        instance: USEPInstance,
        measure_memory: bool = False,
        validate: bool = False,
        profile: bool = False,
    ) -> SolverResult:
        """Solve with instrumentation.

        Args:
            instance: The problem instance.
            measure_memory: Track the solver's own peak allocations with
                ``tracemalloc`` (slows the run down; off by default).
            validate: Re-verify all four USEP constraints on the result
                (tests always do; benchmarks usually skip).
            profile: Collect the incremental engine's diagnostic
                counters (DP states expanded, candidates pruned, memo
                hits/misses — see :mod:`repro.core.instrument`) and
                merge them into :attr:`SolverResult.counters`.  Off by
                default: the counters depend on cache warmth, so they
                are kept out of rows whose byte-identity matters
                (journals, parallel-vs-sequential sweeps).
        """
        profile_counters: Dict[str, int] = {}
        peak: Optional[int] = None
        with instrument.profiled(enabled=profile) as prof:
            if measure_memory:
                warm_instance(instance)
                tracemalloc.start()
                try:
                    start = time.perf_counter()
                    planning = self.solve(instance)
                    elapsed = time.perf_counter() - start
                    _, peak = tracemalloc.get_traced_memory()
                finally:
                    tracemalloc.stop()
            else:
                start = time.perf_counter()
                planning = self.solve(instance)
                elapsed = time.perf_counter() - start
            if prof is not None:
                profile_counters = dict(prof)
        if validate:
            validate_planning(planning)
        counters = dict(getattr(self, "counters", {}))
        counters.update(profile_counters)
        return SolverResult(
            solver=self.name,
            planning=planning,
            utility=planning.total_utility(),
            wall_time_s=elapsed,
            peak_memory_bytes=peak,
            counters=counters,
        )


def ratio_sort_key(mu: float, inc_cost: float, event_id: int, user_id: int):
    """Deterministic min-heap key implementing the paper's ratio order.

    Equation (2): larger ``ratio = mu / inc_cost`` first; the paper
    breaks ratio ties by smaller ``inc_cost``.  A zero (or, with
    non-metric matrices, negative) incremental cost makes the pair
    free — those rank above everything, ordered by larger ``mu``.
    Remaining ties fall back to event id then user id so runs are
    reproducible.
    """
    if inc_cost <= 0.0:
        ratio = float("inf")
    else:
        ratio = mu / inc_cost
    return (-ratio, inc_cost, -mu, event_id, user_id)
