"""The literal dense tabulation of DPSingle (Algorithm 2), vectorised.

The paper's Algorithm 2 tabulates ``Omega(i, T)`` densely over
``T in [0, b_u]`` — ``O(|V|^2 * b_u)`` work regardless of how many
states are actually reachable.  This module implements that *literal*
table with numpy (each (l -> i) transition is one shifted elementwise
``max`` over the budget axis), while the package's default
:func:`repro.algorithms.dp_single.dp_single` keeps sparse per-candidate
Pareto frontiers instead.

Both are exact, so the optimal *utility* always matches; optimal
*schedules* may differ on exact ties.  Empirically the sparse-frontier
version is several times faster (see
``benchmarks/test_bench_dense_dp.py``): real instances reach only a few
Pareto-optimal states per candidate, so pruning beats vectorisation —
a finding worth the ablation.  :class:`DeDPODense` plugs the dense DP
into the Algorithm 4 skeleton (same 1/2 guarantee).

Requires integer costs and budgets (the paper's standing assumption);
raises :class:`~repro.core.exceptions.SolverError` otherwise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.exceptions import SolverError
from ..core.instance import USEPInstance
from .decomposed import DecomposedSolver

_NEG = -1.0  # "unreachable" utility sentinel (valid states are > 0)


def _as_int(value: float, what: str) -> int:
    if math.isinf(value):
        raise SolverError(f"{what} is infinite")
    if float(value) != int(value):
        raise SolverError(
            f"dp_single_dense requires integer costs/budgets; {what} = {value}"
        )
    return int(value)


def dp_single_dense(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> List[int]:
    """Optimal schedule for one user; dense-table Equation (4).

    Same contract as :func:`~repro.algorithms.dp_single.dp_single`.
    """
    if budget is None:
        budget = instance.users[user_id].budget
    b = _as_int(budget, "budget")
    if b < 0:
        return []

    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)
    events = instance.events
    candidates = [
        ev_id
        for ev_id in candidate_event_ids
        if utilities.get(ev_id, 0.0) > 0.0
        and to_event[ev_id] + from_event[ev_id] <= b
    ]
    if not candidates:
        return []
    candidates.sort(key=lambda ev_id: (events[ev_id].end, events[ev_id].start, ev_id))
    n = len(candidates)
    ends = [events[ev_id].end for ev_id in candidates]

    util = np.array([utilities[ev_id] for ev_id in candidates])
    outbound = [_as_int(to_event[ev_id], f"cost(u, {ev_id})") for ev_id in candidates]
    back = [_as_int(from_event[ev_id], f"cost({ev_id}, u)") for ev_id in candidates]

    # omega[i, T]: best utility ending at candidate i with outbound cost
    # exactly T.  parent[i, T]: predecessor candidate index (-1 = first
    # event); parent cost is recovered as T - leg(parent, i).
    omega = np.full((n, b + 1), _NEG)
    parent = np.full((n, b + 1), -2, dtype=np.int32)  # -2 = unreachable

    import bisect

    for i in range(n):
        cap = b - back[i]  # largest affordable outbound cost at i
        if cap < 0:
            continue
        row = omega[i]
        # Base case: i is the first event.
        t0 = outbound[i]
        if t0 <= cap:
            row[t0] = util[i]
            parent[i, t0] = -1
        l_i = bisect.bisect_right(ends, events[candidates[i]].start, hi=i)
        for l in range(l_i):
            leg = instance.cost_vv(candidates[l], candidates[i])
            if math.isinf(leg):
                continue
            leg = _as_int(leg, f"cost({candidates[l]}, {candidates[i]})")
            if leg > cap:
                continue
            # shift omega[l] right by `leg`, add util_i, keep the max
            source = omega[l, : cap - leg + 1]
            target = row[leg : cap + 1]
            shifted = source + util[i]
            better = (source > 0.0) & (shifted > target)
            if better.any():
                target[better] = shifted[better]
                parent[i, leg : cap + 1][better] = l

    best_flat = int(np.argmax(omega))
    best_i, best_t = divmod(best_flat, b + 1)
    if omega[best_i, best_t] <= 0.0:
        return []
    # prefer the cheapest T among utility ties at the winning candidate
    # and the earliest candidate among global ties, matching dp_single.
    best_val = omega.max()
    for i in range(n):
        ties = np.flatnonzero(omega[i] == best_val)
        if ties.size:
            best_i, best_t = i, int(ties[0])
            break

    schedule: List[int] = []
    i, t = best_i, best_t
    while True:
        schedule.append(candidates[i])
        prev = int(parent[i, t])
        if prev == -1:
            break
        if prev < 0:  # pragma: no cover - table invariant
            raise AssertionError("broken DP parent chain")
        leg = _as_int(
            instance.cost_vv(candidates[prev], candidates[i]), "reconstruction leg"
        )
        i, t = prev, t - leg
    schedule.reverse()
    schedule.sort(key=lambda ev_id: events[ev_id].start)
    return schedule


class DeDPODense(DecomposedSolver):
    """DeDPO with the literal dense DP table (ablation solver)."""

    name = "DeDPO-dense"

    def __init__(self) -> None:
        super().__init__(dp_single_dense)
