"""Verbatim seed implementations of the decomposition solvers.

This PR rewired DeDP/DeDPO/DeGreedy onto the array-backed compute layer
(:mod:`repro.core.arrays`).  The pure-Python originals are preserved
here, bit-for-bit in behaviour, for two purposes:

* **golden-equivalence tests** — the optimised solvers must produce
  identical plannings (same schedules, same total utility) on randomized
  instances;
* **benchmark trajectory** — ``benchmarks/record_bench.py`` times each
  ``X`` against ``X-seed`` and records the before/after speedup in
  ``BENCH_solvers.json``.

They are registered as ``DeDP-seed`` / ``DeDPO-seed`` / ``DeGreedy-seed``
and are not part of the paper's figure legends.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver
from .decomposed import SingleScheduler, _PseudoEventPool
from .dp_single import dp_single_reference
from .greedy_single import greedy_single


class DeDPSeed(Solver):
    """The seed DeDP: per-event utility arrays, per-column ``argmax``,
    pure-Python DPSingle."""

    name = "DeDP-seed"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        num_users = instance.num_users
        num_events = instance.num_events
        capacities = [instance.clamped_capacity(i) for i in range(num_events)]

        mu_r: List[np.ndarray] = [
            np.tile(instance.utilities_for_event(i), (capacities[i], 1))
            for i in range(num_events)
        ]

        hat_schedules: List[List[Tuple[int, int]]] = []
        dp_calls = 0
        for r in range(num_users):
            chosen_k: Dict[int, int] = {}
            utilities: Dict[int, float] = {}
            candidates: List[int] = []
            for i in range(num_events):
                column = mu_r[i][:, r]
                k = int(np.argmax(column))  # ties -> smallest k
                value = float(column[k])
                if value > 0.0:
                    chosen_k[i] = k
                    utilities[i] = value
                    candidates.append(i)
            schedule = dp_single_reference(instance, r, candidates, utilities)
            dp_calls += 1
            hat: List[Tuple[int, int]] = []
            for event_id in schedule:
                k = chosen_k[event_id]
                hat.append((event_id, k))
                mu_r[event_id][k, r + 1 :] -= mu_r[event_id][k, r]
            hat_schedules.append(hat)

        planning = Planning(instance)
        taken: Set[Tuple[int, int]] = set()
        removed_pairs = 0
        for r in range(num_users - 1, -1, -1):
            final_events: List[int] = []
            for event_id, k in hat_schedules[r]:
                if (event_id, k) in taken:
                    removed_pairs += 1
                    continue
                taken.add((event_id, k))
                final_events.append(event_id)
            if final_events:
                final_events.sort(key=lambda ev: instance.events[ev].start)
                planning.set_schedule(r, final_events)

        self.counters = {
            "dp_calls": dp_calls,
            "hat_pairs": sum(len(h) for h in hat_schedules),
            "removed_pairs": removed_pairs,
        }
        return planning


class DecomposedSolverSeed(Solver):
    """The seed Algorithm 4 skeleton: per-event Python candidate loop."""

    name = "Decomposed-seed"

    def __init__(self, single_scheduler: SingleScheduler):
        self._single_scheduler = single_scheduler
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        num_events = instance.num_events
        num_users = instance.num_users
        pools = [
            _PseudoEventPool(instance.clamped_capacity(i)) for i in range(num_events)
        ]
        event_utils = [instance.utilities_for_event(i) for i in range(num_events)]

        scheduler_calls = 0
        reassignments = 0
        for r in range(num_users):
            candidates: List[int] = []
            utilities: Dict[int, float] = {}
            chosen_k: Dict[int, int] = {}
            for i in range(num_events):
                mu_vr = event_utils[i][r]
                if mu_vr <= 0.0:
                    continue
                k, mu_prime = pools[i].pick(mu_vr, event_utils[i])
                if mu_prime > 0.0:
                    candidates.append(i)
                    utilities[i] = mu_prime
                    chosen_k[i] = k
            schedule = self._single_scheduler(instance, r, candidates, utilities)
            scheduler_calls += 1
            for event_id in schedule:
                k = chosen_k[event_id]
                if pools[event_id].owners[k] is not None:
                    reassignments += 1
                pools[event_id].assign(k, r, event_utils[event_id][r])

        planning = Planning(instance)
        per_user_events: Dict[int, List[int]] = {}
        for event_id, pool in enumerate(pools):
            for owner in pool.owners:
                if owner is not None:
                    per_user_events.setdefault(owner, []).append(event_id)
        for user_id, event_ids in per_user_events.items():
            event_ids.sort(key=lambda ev: instance.events[ev].start)
            planning.set_schedule(user_id, event_ids)

        self.counters = {
            "scheduler_calls": scheduler_calls,
            "reassignments": reassignments,
            "selected_copies": sum(
                sum(owner is not None for owner in pool.owners) for pool in pools
            ),
        }
        return planning


class DeDPOSeed(DecomposedSolverSeed):
    """Seed DeDPO: Algorithm 4 with the pure-Python DPSingle."""

    name = "DeDPO-seed"

    def __init__(self) -> None:
        super().__init__(dp_single_reference)


class DeGreedySeed(DecomposedSolverSeed):
    """Seed DeGreedy: Algorithm 4 with GreedySingle (the single-user
    greedy is shared with the optimised variant)."""

    name = "DeGreedy-seed"

    def __init__(self) -> None:
        super().__init__(greedy_single)
