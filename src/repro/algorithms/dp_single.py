"""DPSingle — Algorithm 2: optimal single-user schedule by dynamic programming.

Given one user and a candidate event set (one pseudo-event per original
event, each with a decomposed utility), DPSingle finds the feasible
schedule maximising total utility within the user's travel budget.

The recurrence is Equation (4): ``Omega(i, T)`` is the best utility of a
schedule that ends at candidate ``i`` with accumulated outbound travel
cost ``T`` (home -> ... -> v_i), subject to ``T + cost(v_i, u) <= b_u``.
Candidates are sorted by non-descending end time; predecessors of ``i``
are exactly the candidates ``l`` with ``t2_l <= t1_i`` (indices below
``l_i``), as in the paper.

Implementation notes:

* The paper assumes integer costs and tabulates ``T in [0, b_u]``; we
  key states by exact cost values in per-candidate dictionaries instead,
  which is equivalent (at most ``b_u + 1`` distinct T values for integer
  costs) and also tolerates non-integer costs.
* States are pruned to the Pareto frontier — a state ``(T, omega)``
  dominated by ``(T' <= T, omega' >= omega)`` can never be part of a
  better completion, because both the budget constraint and the
  objective are monotone.  This preserves exact optimality while
  shrinking the tables dramatically; the worst case stays the paper's
  ``O(|V|^2 * b_u)``.
* Lemma 1 pruning (drop candidates whose round trip alone exceeds the
  budget) is applied first, exactly as Algorithm 2 line 1 does.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.instance import USEPInstance


@dataclass
class _State:
    """One Pareto-kept DP state: reach candidate ``idx`` at cost ``T``."""

    cost: float
    utility: float
    prev_idx: int  # candidate index of the predecessor, -1 for "first event"
    prev_state: Optional["_State"]


def dp_single(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> List[int]:
    """Optimal schedule for one user from the given candidates.

    Args:
        instance: The USEP instance (provides costs and intervals).
        user_id: The user ``u_r`` being scheduled.
        candidate_event_ids: The set ``V_r`` — at most one pseudo-event
            per original event; callers must already have dropped
            non-positive-utility candidates.
        utilities: Decomposed utility ``mu'`` per candidate event id
            (``mu^r(v_hat_i, u_r)`` in DeDP's notation).
        budget: Travel budget override; defaults to the user's ``b_u``.

    Returns:
        Event ids of the best schedule in attendance (time) order;
        empty list when no positive-utility schedule fits the budget.
    """
    if budget is None:
        budget = instance.users[user_id].budget

    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)

    # Line 1 (Lemma 1): prune candidates whose round trip busts the budget.
    events = instance.events
    candidates = [
        ev_id
        for ev_id in candidate_event_ids
        if to_event[ev_id] + from_event[ev_id] <= budget
        and utilities.get(ev_id, 0.0) > 0.0
    ]
    if not candidates:
        return []
    # Sort by non-descending end time (ties by start then id, matching
    # the instance's global deterministic order).
    candidates.sort(key=lambda ev_id: (events[ev_id].end, events[ev_id].start, ev_id))
    n = len(candidates)
    ends = [events[ev_id].end for ev_id in candidates]

    # frontiers[i]: Pareto states sorted by increasing cost and strictly
    # increasing utility.
    frontiers: List[List[_State]] = [[] for _ in range(n)]
    best_state: Optional[_State] = None
    best_idx = -1

    for i in range(n):
        ev_i = candidates[i]
        util_i = utilities[ev_i]
        back_i = from_event[ev_i]
        raw: Dict[float, _State] = {}

        # Base case: v_i is the first (and so far only) event.
        t0 = to_event[ev_i]
        if t0 + back_i <= budget:
            raw[t0] = _State(t0, util_i, -1, None)

        # Transitions from every compatible earlier candidate.
        l_i = bisect.bisect_right(ends, events[ev_i].start, hi=i)
        for l in range(l_i):
            ev_l = candidates[l]
            leg = instance.cost_vv(ev_l, ev_i)
            if math.isinf(leg):
                continue
            for state in frontiers[l]:
                t_new = state.cost + leg
                if t_new + back_i > budget:
                    continue
                omega_new = state.utility + util_i
                existing = raw.get(t_new)
                if existing is None or omega_new > existing.utility:
                    raw[t_new] = _State(t_new, omega_new, l, state)

        # Pareto-prune: keep strictly better utility as cost increases.
        frontier: List[_State] = []
        for cost in sorted(raw):
            state = raw[cost]
            if not frontier or state.utility > frontier[-1].utility:
                frontier.append(state)
        frontiers[i] = frontier

        for state in frontier:
            if (
                best_state is None
                or state.utility > best_state.utility
                or (
                    state.utility == best_state.utility
                    and state.cost < best_state.cost
                )
            ):
                best_state = state
                best_idx = i

    if best_state is None or best_state.utility <= 0.0:
        return []

    # Reconstruct the schedule by walking predecessor pointers.
    schedule: List[int] = []
    idx, state = best_idx, best_state
    while state is not None:
        schedule.append(candidates[idx])
        idx, state = state.prev_idx, state.prev_state
    schedule.reverse()
    # DP order (by end time) equals attendance order because consecutive
    # events satisfy t2 <= t1; sort by start for explicitness.
    schedule.sort(key=lambda ev_id: events[ev_id].start)
    return schedule


def dp_single_best_utility(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> float:
    """Utility of the DP-optimal schedule (convenience for tests)."""
    schedule = dp_single(instance, user_id, candidate_event_ids, utilities, budget)
    return sum(utilities[ev_id] for ev_id in schedule)
