"""DPSingle — Algorithm 2: optimal single-user schedule by dynamic programming.

Given one user and a candidate event set (one pseudo-event per original
event, each with a decomposed utility), DPSingle finds the feasible
schedule maximising total utility within the user's travel budget.

The recurrence is Equation (4): ``Omega(i, T)`` is the best utility of a
schedule that ends at candidate ``i`` with accumulated outbound travel
cost ``T`` (home -> ... -> v_i), subject to ``T + cost(v_i, u) <= b_u``.
Candidates are sorted by non-descending end time; predecessors of ``i``
are exactly the candidates ``l`` with ``t2_l <= t1_i`` (indices below
``l_i``), as in the paper.

Implementation notes:

* The paper assumes integer costs and tabulates ``T in [0, b_u]``; we
  key states by exact cost values instead, which is equivalent (at most
  ``b_u + 1`` distinct T values for integer costs) and also tolerates
  non-integer costs.
* States are pruned to the Pareto frontier — a state ``(T, omega)``
  dominated by ``(T' <= T, omega' >= omega)`` can never be part of a
  better completion, because both the budget constraint and the
  objective are monotone.  This preserves exact optimality while
  shrinking the tables dramatically; the worst case stays the paper's
  ``O(|V|^2 * b_u)``.
* Lemma 1 pruning (drop candidates whose round trip alone exceeds the
  budget) is applied first, exactly as Algorithm 2 line 1 does.

:func:`dp_single` is the array-backed kernel: it reads the instance's
precomputed :class:`~repro.core.arrays.InstanceArrays` (cost matrices,
global end-time order) instead of re-sorting and re-deriving costs per
call.  States are plain tuples ``(T, -omega, pred_index, prev_state)``
linked into predecessor chains; storing *negated* utilities makes a
single ascending tuple sort order duplicate-cost groups exactly like the
seed's dict (first writer wins: highest utility first, then earliest
predecessor — each predecessor's shifted frontier has strictly
increasing costs, so the sort never ties past the predecessor index).
The strict Pareto pass over the sorted buffer then both prunes dominated
states and discards duplicate-cost losers in one comparison per state,
so the scalar merge needs no per-transition dict lookups at all.  The
per-candidate budget cut ``T + cost(v_i, u) <= b_u`` is precomputed as
the largest representable ``T`` satisfying it (a couple of
``math.nextafter`` steps), saving one float add per transition while
keeping float decisions bit-identical.  The merge itself stays scalar
on purpose: a numpy variant that batched the ``t_new``/budget/Pareto
updates over each predecessor's whole frontier was measured 2-5x
*slower* at every realistic frontier size (per-candidate dispatch
overhead dominates; see EXPERIMENTS.md), so the vectorisation lives in
the per-call setup (predecessor table, leg submatrix) and in the Step-1
selection kernels of the callers.  The kernel implements exactly the
seed's tie-breaking (first writer wins on equal utility at equal cost;
earlier candidates win global ties), so plannings are bit-identical to
:func:`dp_single_reference`, the retained seed implementation the
golden-equivalence tests compare against.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import instrument
from ..core.instance import USEPInstance


def dp_single(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
    presorted: bool = False,
) -> List[int]:
    """Optimal schedule for one user from the given candidates.

    Args:
        instance: The USEP instance (provides costs and intervals).
        user_id: The user ``u_r`` being scheduled.
        candidate_event_ids: The set ``V_r`` — at most one pseudo-event
            per original event; callers must already have dropped
            non-positive-utility candidates.
        utilities: Decomposed utility ``mu'`` per candidate event id
            (``mu^r(v_hat_i, u_r)`` in DeDP's notation).
        budget: Travel budget override; defaults to the user's ``b_u``.
        presorted: The caller guarantees the candidates are already
            Lemma 1-pruned against ``budget``, positive-utility
            filtered, and sorted in the global end-time order (the
            :class:`~repro.core.candidates.CandidateIndex` contract) —
            the per-call filter and sort are skipped.

    Returns:
        Event ids of the best schedule in attendance (time) order;
        empty list when no positive-utility schedule fits the budget.
    """
    if budget is None:
        budget = instance.users[user_id].budget
    arrays = instance.arrays()
    to_event, from_event = arrays.user_cost_rows(user_id)

    if presorted:
        kept = list(candidate_event_ids)
    else:
        # Lemma 1 prune + positive-utility filter (Algorithm 2 line 1).
        utils_get = utilities.get
        kept = [
            ev_id
            for ev_id in candidate_event_ids
            if utils_get(ev_id, 0.0) > 0.0
            and to_event[ev_id] + from_event[ev_id] <= budget
        ]
        # Sorting by the precomputed global slot is equivalent to the
        # seed's (end, start, id) comparator sort, without key tuples.
        kept.sort(key=arrays.pos_list.__getitem__)
    if not kept:
        return []
    n = len(kept)
    prof = instrument.active()

    # Per-candidate predecessor bound, from the precomputed global
    # tables: global slots < l_index[pos] are exactly the events ending
    # no later than start_i, so counting kept slots below that threshold
    # equals the seed's bisect over the kept end times.  The min(·, i)
    # cap reproduces the seed's ``hi=i`` bound verbatim.
    kept_np = np.fromiter(kept, dtype=np.intp, count=n)
    kept_pos = arrays.pos[kept_np]
    l_list = np.minimum(
        np.searchsorted(kept_pos, arrays.l_index[kept_pos], side="left"),
        np.arange(n),
    ).tolist()
    # Leg submatrix restricted to the kept candidates, as row lists:
    # legs_rows[i][l] is the travel cost from candidate l to candidate i
    # — note the transpose: the first vv axis is the *source* event
    # (float64 -> Python float round-trips exactly, inf included).
    legs_rows = arrays.vv[kept_np[None, :], kept_np[:, None]].tolist()

    inf = math.inf
    nextafter = math.nextafter
    finite_budget = not math.isinf(budget)
    # Per-candidate scalars for the shared merge: starting cost, negated
    # utility and the largest representable cost satisfying the budget
    # check, so the inner loop compares ``T <= thresh`` instead of
    # re-evaluating the seed's ``T + back_i <= budget``.  The
    # subtraction lands within an ulp or two of the exact boundary; the
    # nextafter walks pin it so both comparisons agree on every float.
    bases = [to_event[ev_id] for ev_id in kept]
    nutils = [-utilities[ev_id] for ev_id in kept]
    threshs: List[float] = []
    for ev_id in kept:
        if finite_budget:
            back_i = from_event[ev_id]
            thresh = budget - back_i
            while thresh + back_i > budget:
                thresh = nextafter(thresh, -inf)
            nxt = nextafter(thresh, inf)
            while nxt + back_i <= budget:
                thresh = nxt
                nxt = nextafter(nxt, inf)
        else:
            thresh = inf
        threshs.append(thresh)

    stats = [0, 0] if prof is not None else None
    schedule = run_frontier_merge(
        instance, kept, l_list, legs_rows, bases, nutils, threshs, stats
    )

    if prof is not None:
        prof.add("dp_calls_executed")
        prof.add("dp_candidates", n)
        prof.add("dp_states_expanded", stats[0])
        prof.add("dp_states_kept", stats[1])
    return schedule


def run_frontier_merge(
    instance: USEPInstance,
    kept: Sequence[int],
    l_list: Sequence[int],
    legs_rows: Sequence[Sequence[float]],
    bases: Sequence[float],
    nutils: Sequence[float],
    threshs: Sequence[float],
    stats: Optional[List[int]] = None,
) -> List[int]:
    """The scalar Pareto frontier chase shared by all DP entry points.

    One frontier walk over pre-resolved per-candidate scalars:
    ``bases[i]`` is the home->v_i cost, ``nutils[i]`` the negated
    decomposed utility, ``threshs[i]`` the largest cost passing the
    budget cut (see :func:`dp_single` for how it is pinned with
    nextafter).  :func:`dp_single` resolves them per call; the batch
    kernel (:mod:`repro.algorithms.dp_batch`) resolves them vectorised
    across a whole shape group — both paths then execute *this* loop,
    so batched and per-user execution are bit-identical by
    construction, not by parallel maintenance.  The merge stays scalar
    on purpose (see the module docs: a vectorised variant measured
    2-5x slower at realistic frontier sizes).

    ``stats`` (optional two-element list) accumulates
    ``[states_expanded, states_kept]`` for the profile counters.

    Returns the best schedule's event ids in attendance order.
    """
    n = len(kept)
    inf = math.inf
    # fronts[i]: Pareto frontier of candidate i as a cost-ascending list
    # of state tuples ``(T, -omega, pred_index, prev_state)``; utilities
    # strictly increase (negated values strictly decrease) with cost,
    # pred_index is the kept-candidate index the chain came from (-1 for
    # a schedule starting at candidate i), prev_state the predecessor's
    # tuple.
    fronts: List[List[tuple]] = [None] * n  # type: ignore[list-item]

    buf: List[tuple] = []
    buf_append = buf.append
    best: Optional[tuple] = None
    best_i = -1
    best_nw = inf
    best_cost = inf

    for i in range(n):
        nutil = nutils[i]
        thresh = threshs[i]
        # Base case: v_i is the first (and so far only) event.  Lemma 1
        # pruning already guaranteed t0 + back_i <= budget, so every
        # candidate's frontier is non-empty.
        base = (bases[i], nutil, -1, None)
        l_i = l_list[i]

        if l_i == 0:
            front = [base]
        else:
            # Scalar merge: append every feasible transition, then let
            # one ascending sort line up duplicate-cost groups in the
            # seed dict's winner order (utility descending via the
            # negated value, then generation order via the predecessor
            # index — costs within one predecessor's shifted frontier
            # are strictly increasing, so ties never reach the
            # unorderable prev_state element).
            buf.clear()
            buf_append(base)
            row_i = legs_rows[i]
            for l in range(l_i):
                leg = row_i[l]
                if leg == inf:
                    continue
                for st in fronts[l]:
                    t_new = st[0] + leg
                    if t_new > thresh:
                        # Frontier costs increase strictly; later
                        # states only get more expensive.
                        break
                    buf_append((t_new, st[1] + nutil, l, st))
            if len(buf) == 1:
                front = [base]
            else:
                buf.sort()
                # Strict Pareto pass: keep states whose utility beats
                # every cheaper-or-equal state.  Duplicate-cost losers
                # sort after their group's winner with utility no
                # better, so the same comparison drops them — this is
                # exactly the seed's dict overwrite + prune.
                front = []
                front_append = front.append
                last = inf
                for st in buf:
                    nw = st[1]
                    if nw < last:
                        front_append(st)
                        last = nw

        fronts[i] = front
        if stats is not None:
            stats[0] += len(buf) if l_i else 1
            stats[1] += len(front)

        # Global best: max utility (min negated utility), then min cost,
        # then earliest state in generation order.  Within a frontier
        # utilities increase strictly, so only the last state can raise
        # the global best and only it can tie the utility at a lower
        # cost.
        top = front[-1]
        nw = top[1]
        if nw < best_nw:
            best_nw = nw
            best_cost = top[0]
            best = top
            best_i = i
        elif nw == best_nw and top[0] < best_cost:
            best_cost = top[0]
            best = top
            best_i = i

    if best is None or best_nw >= 0.0:
        return []

    # Reconstruct the schedule by walking predecessor references; each
    # state stores its predecessor's candidate index, so the walk tracks
    # the current index alongside the chain.
    schedule: List[int] = []
    idx = best_i
    st = best
    while st is not None:
        schedule.append(kept[idx])
        idx = st[2]
        st = st[3]
    schedule.reverse()
    # DP order (by end time) equals attendance order because consecutive
    # events satisfy t2 <= t1; sort by start for explicitness.
    events = instance.events
    schedule.sort(key=lambda ev_id: events[ev_id].start)
    return schedule


def dp_single_best_utility(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> float:
    """Utility of the DP-optimal schedule (convenience for tests)."""
    schedule = dp_single(instance, user_id, candidate_event_ids, utilities, budget)
    return sum(utilities[ev_id] for ev_id in schedule)


# ----------------------------------------------------------------------
# Seed implementation, kept verbatim as the golden reference
# ----------------------------------------------------------------------


@dataclass
class _State:
    """One Pareto-kept DP state: reach candidate ``idx`` at cost ``T``."""

    cost: float
    utility: float
    prev_idx: int  # candidate index of the predecessor, -1 for "first event"
    prev_state: Optional["_State"]


def dp_single_reference(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> List[int]:
    """The seed's pure-Python DPSingle (used by golden tests and the
    ``*-seed`` baseline solvers; same contract as :func:`dp_single`)."""
    if budget is None:
        budget = instance.users[user_id].budget

    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)

    # Line 1 (Lemma 1): prune candidates whose round trip busts the budget.
    events = instance.events
    candidates = [
        ev_id
        for ev_id in candidate_event_ids
        if to_event[ev_id] + from_event[ev_id] <= budget
        and utilities.get(ev_id, 0.0) > 0.0
    ]
    if not candidates:
        return []
    # Sort by non-descending end time (ties by start then id, matching
    # the instance's global deterministic order).
    candidates.sort(key=lambda ev_id: (events[ev_id].end, events[ev_id].start, ev_id))
    n = len(candidates)
    ends = [events[ev_id].end for ev_id in candidates]

    # frontiers[i]: Pareto states sorted by increasing cost and strictly
    # increasing utility.
    frontiers: List[List[_State]] = [[] for _ in range(n)]
    best_state: Optional[_State] = None
    best_idx = -1

    for i in range(n):
        ev_i = candidates[i]
        util_i = utilities[ev_i]
        back_i = from_event[ev_i]
        raw: Dict[float, _State] = {}

        # Base case: v_i is the first (and so far only) event.
        t0 = to_event[ev_i]
        if t0 + back_i <= budget:
            raw[t0] = _State(t0, util_i, -1, None)

        # Transitions from every compatible earlier candidate.
        l_i = bisect.bisect_right(ends, events[ev_i].start, hi=i)
        for l in range(l_i):
            ev_l = candidates[l]
            leg = instance.cost_vv(ev_l, ev_i)
            if math.isinf(leg):
                continue
            for state in frontiers[l]:
                t_new = state.cost + leg
                if t_new + back_i > budget:
                    continue
                omega_new = state.utility + util_i
                existing = raw.get(t_new)
                if existing is None or omega_new > existing.utility:
                    raw[t_new] = _State(t_new, omega_new, l, state)

        # Pareto-prune: keep strictly better utility as cost increases.
        frontier: List[_State] = []
        for cost in sorted(raw):
            state = raw[cost]
            if not frontier or state.utility > frontier[-1].utility:
                frontier.append(state)
        frontiers[i] = frontier

        for state in frontier:
            if (
                best_state is None
                or state.utility > best_state.utility
                or (
                    state.utility == best_state.utility
                    and state.cost < best_state.cost
                )
            ):
                best_state = state
                best_idx = i

    if best_state is None or best_state.utility <= 0.0:
        return []

    # Reconstruct the schedule by walking predecessor pointers.
    schedule: List[int] = []
    idx, state = best_idx, best_state
    while state is not None:
        schedule.append(candidates[idx])
        idx, state = state.prev_idx, state.prev_state
    schedule.reverse()
    # DP order (by end time) equals attendance order because consecutive
    # events satisfy t2 <= t1; sort by start for explicitness.
    schedule.sort(key=lambda ev_id: events[ev_id].start)
    return schedule
