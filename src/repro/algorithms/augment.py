"""The ``+RG`` utility augmentation of Section 4.3.2.

After the two-step framework runs, some events are not full (their
pseudo-copies were never selected, or step 2 stripped duplicates) and
some users have leftover budget.  The augmentation runs the RatioGreedy
loop over the not-yet-full events, computing incremental costs against
the existing schedules, and only ever *adds* pairs — so the augmented
planning's utility is >= the base planning's, and the 1/2-approximation
guarantee of the DeDP family is preserved.

``DeDPO+RG`` and ``DeGreedy+RG`` are the paper's named variants;
``DeDP+RG`` is also provided for completeness (identical output to
``DeDPO+RG``).
"""

from __future__ import annotations

from typing import Dict

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver
from .decomposed import DeDPO, DeGreedy
from .dedp import DeDP
from .ratio_greedy import greedy_augment


class AugmentedSolver(Solver):
    """Run a base solver, then the RatioGreedy post-pass (Section 4.3.2)."""

    name = "Augmented"

    def __init__(self, base_solver: Solver):
        self.base_solver = base_solver
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        planning = self.base_solver.solve(instance)
        base_utility = planning.total_utility()
        augment_counters = greedy_augment(planning)
        self.counters = dict(getattr(self.base_solver, "counters", {}))
        self.counters.update(
            {
                "rg_pairs_added": augment_counters.get("pairs_added", 0),
                "base_utility_milli": int(base_utility * 1000),
            }
        )
        return planning


class DeDPOPlusRG(AugmentedSolver):
    """DeDPO followed by the RatioGreedy augmentation."""

    name = "DeDPO+RG"

    def __init__(self) -> None:
        super().__init__(DeDPO())


class DeGreedyPlusRG(AugmentedSolver):
    """DeGreedy followed by the RatioGreedy augmentation."""

    name = "DeGreedy+RG"

    def __init__(self) -> None:
        super().__init__(DeGreedy())


class DeDPPlusRG(AugmentedSolver):
    """DeDP followed by the RatioGreedy augmentation (completeness)."""

    name = "DeDP+RG"

    def __init__(self) -> None:
        super().__init__(DeDP())
