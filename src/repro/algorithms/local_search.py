"""Local-search improvement of plannings (an extension beyond the paper).

The paper's +RG post-pass (Section 4.3.2) can only *add* pairs; once an
event's seats are taken by mediocre matches, nothing in the paper's
toolbox reassigns them.  This module implements the natural next step —
a deterministic hill-climber over three move types:

* **add** — insert a valid (event, user) pair (exactly +RG's move);
* **replace** — within one user's schedule, swap an arranged event for
  a different event with strictly higher utility (budget/time checked);
* **transfer** — move an arranged event from its current attendee to a
  user who values it strictly more (the decomposition's "reassignment"
  as an explicit move on a finished planning).

Each pass scans moves in a fixed order and applies every strict
improvement; passes repeat until a fixed point or ``max_passes``.
Utility is monotonically non-decreasing, feasibility is preserved move
by move, and — because the move set strictly contains +RG's — the
result is never worse than the +RG fixed point from the same start.

This is *not* part of the paper's evaluation; it exists as the obvious
"future work" knob and is benchmarked against +RG in EX-ABL5.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver
from .ratio_greedy import greedy_augment


def _try_replace(planning: Planning, user_id: int, old_event: int) -> bool:
    """Replace ``old_event`` in the user's schedule with a better event.

    Scans candidate events in descending utility; applies the first
    strict improvement that stays feasible.  Returns True if replaced.
    """
    instance = planning.instance
    old_mu = instance.utility(old_event, user_id)
    utilities = instance.utilities_for_user(user_id)
    candidates = sorted(
        (v for v in range(instance.num_events) if utilities[v] > old_mu),
        key=lambda v: (-utilities[v], v),
    )
    if not candidates:
        return False
    planning.remove_pair(old_event, user_id)
    for new_event in candidates:
        if new_event in planning.schedule_of(user_id):
            continue
        insertion = planning.plan_valid_insertion(new_event, user_id)
        if insertion is not None:
            planning.apply_insertion(user_id, insertion)
            return True
    # nothing fit; put the original back (always feasible: we just
    # removed it, and its seat cannot have been taken in between)
    planning.add_pair(old_event, user_id)
    return False


def _try_transfer(planning: Planning, user_id: int, event_id: int) -> bool:
    """Hand ``event_id`` to a user who values it strictly more."""
    instance = planning.instance
    current_mu = instance.utility(event_id, user_id)
    utilities = instance.utilities_for_event(event_id)
    takers = sorted(
        (
            u
            for u, mu in enumerate(utilities)
            if mu > current_mu and u != user_id
        ),
        key=lambda u: (-utilities[u], u),
    )
    if not takers:
        return False
    planning.remove_pair(event_id, user_id)
    for taker in takers:
        if event_id in planning.schedule_of(taker):
            continue
        insertion = planning.plan_valid_insertion(event_id, taker)
        if insertion is not None:
            planning.apply_insertion(taker, insertion)
            return True
    planning.add_pair(event_id, user_id)
    return False


def local_search(planning: Planning, max_passes: int = 10) -> Dict[str, int]:
    """Improve a planning in place; returns move counters.

    Each pass: one +RG-style add sweep, then replace and transfer
    sweeps over every arranged pair.  Stops at a fixed point or after
    ``max_passes`` passes.
    """
    counters = {"passes": 0, "adds": 0, "replacements": 0, "transfers": 0}
    for _ in range(max_passes):
        improved = False
        added = greedy_augment(planning).get("pairs_added", 0)
        if added:
            counters["adds"] += added
            improved = True
        for schedule in planning.schedules:
            # snapshot: moves mutate the schedule under iteration
            for event_id in list(schedule.event_ids):
                if event_id not in schedule.event_ids:
                    continue  # displaced by an earlier move this pass
                if _try_replace(planning, schedule.user_id, event_id):
                    counters["replacements"] += 1
                    improved = True
                elif _try_transfer(planning, schedule.user_id, event_id):
                    counters["transfers"] += 1
                    improved = True
        counters["passes"] += 1
        if not improved:
            break
    return counters


class LocalSearchSolver(Solver):
    """A base solver followed by the local-search improvement pass."""

    name = "LocalSearch"

    def __init__(self, base_solver: Solver, max_passes: int = 10):
        self.base_solver = base_solver
        self.max_passes = max_passes
        self.name = f"{base_solver.name}+LS"
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        planning = self.base_solver.solve(instance)
        base_utility = planning.total_utility()
        ls_counters = local_search(planning, max_passes=self.max_passes)
        self.counters = dict(getattr(self.base_solver, "counters", {}))
        self.counters.update(
            {f"ls_{key}": value for key, value in ls_counters.items()}
        )
        self.counters["base_utility_milli"] = int(base_utility * 1000)
        return planning
