"""Partitioned solving: local scatter/gather over grid-cell sub-instances.

:func:`solve_partitioned` is the single-process twin of the fleet
scatter path (:mod:`repro.service.scatter`): it cuts the instance with
:func:`repro.core.partition.partition_instance`, solves every cell with
an unmodified registry solver (each cell builds its *own* small array
layer and candidate index, which is where the win comes from — the sum
of per-cell ``|V_c| x |U_c|`` work is roughly ``1/k`` of the monolithic
product on clustered geography), and merges the per-cell plans with
:func:`repro.core.partition.reconcile`.

The merged planning follows the partition layer's quality contract —
Definition-2 feasible, utility expected within a configured fraction of
the monolithic solve, byte-identical only in the single-cell degenerate
case — so callers that need a hard guarantee gate the result through
:func:`repro.verify.oracle.verify_schedules` (the service layer always
does before returning a 200).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import instrument
from ..core.instance import USEPInstance
from ..core.partition import (
    DEFAULT_REPAIR_PASSES,
    GridPartition,
    partition_instance,
    reconcile,
)
from ..core.planning import Planning
from .registry import make_solver


def solve_subinstance(
    instance: USEPInstance, algorithm: str = "DeDPO"
) -> Dict[int, List[int]]:
    """Solve one (sub-)instance and return its plan as a schedule dict.

    The worker fleet's ``POST /subsolve`` endpoint and the local
    scatter loop share this: an unmodified registry solver runs on the
    renumbered cell instance — dp_batch and every other kernel see a
    perfectly ordinary ``USEPInstance``.
    """
    if not instance.num_users:
        return {}
    return make_solver(algorithm).solve(instance).as_dict()


@dataclass
class PartitionedSolve:
    """Outcome of one partitioned solve.

    Attributes:
        planning: The merged global planning.
        partition: The grid cut that produced it.
        cell_plans: Per-cell plans in *global* ids, cell order.
        reconcile_stats: Counters from the merge (boundary conflicts,
            repair passes, ...).
        algorithm: Registry solver used per cell.
    """

    planning: Planning
    partition: GridPartition
    cell_plans: List[Dict[int, List[int]]]
    reconcile_stats: Dict[str, int]
    algorithm: str

    def describe(self) -> Dict[str, object]:
        """One JSON-ready summary block (service responses, bench rows)."""
        summary: Dict[str, object] = {"algorithm": self.algorithm}
        summary.update(self.partition.describe())
        summary.update(self.reconcile_stats)
        return summary


def solve_partitioned(
    instance: USEPInstance,
    algorithm: str = "DeDPO",
    cells: int = 4,
    repair_passes: int = DEFAULT_REPAIR_PASSES,
    solve_cell=None,
) -> PartitionedSolve:
    """Partition, solve every cell, reconcile.

    Args:
        instance: The huge instance to cut.
        algorithm: Registry solver run on each cell unchanged.
        cells: Target cell count (clamped to ``[1, |V|]``).
        repair_passes: Bound on the boundary repair sweeps.
        solve_cell: Optional override ``(sub) -> {local user: [local
            events]}`` — the fleet scatter path injects its HTTP fan-out
            here; tests inject adversarial partial plans.

    Raises:
        PartitionError: When the instance cannot be cut (callers fall
            back to a monolithic solve).
    """
    partition = partition_instance(instance, cells=cells)
    if solve_cell is None:
        solve_cell = lambda sub: solve_subinstance(  # noqa: E731
            sub.instance, algorithm
        )
    cell_plans: List[Dict[int, List[int]]] = []
    for sub in partition.cells:
        local_plan = solve_cell(sub) if sub.user_ids else {}
        cell_plans.append(sub.to_global_plan(local_plan))
        prof = instrument.active()
        if prof is not None:
            prof.add("partition_subsolves")
    planning, stats = reconcile(
        instance,
        cell_plans,
        [sub.user_ids for sub in partition.cells],
        repair_passes=repair_passes,
    )
    return PartitionedSolve(
        planning=planning,
        partition=partition,
        cell_plans=cell_plans,
        reconcile_stats=stats,
        algorithm=algorithm,
    )
