"""The space-optimised two-step framework shared by DeDPO and DeGreedy.

Lemma 2 shows the decomposed utility of a pseudo-event only ever depends
on its *last* owner: ``mu^r(v_{i,k}, u) = mu(v_i, u) - mu(v_i, u_last)``
(or plain ``mu(v_i, u)`` while unselected).  Algorithm 4 therefore
replaces DeDP's ``O(|V| |U| max c_v)`` tensor with a ``select(v_i, k)``
array recording the current owner of each pseudo-copy; step 2 collapses
to "give ``v_i`` to ``select(v_i, k)``".

Per event the framework must pick, each iteration, the pseudo-copy with
the largest decomposed utility (Algorithm 4 line 5).  Because utilities
are non-negative, an *unselected* copy (value ``mu(v_i, u_r)``) always
weakly dominates stealing a selected one (value ``mu(v_i, u_r) -
mu(v_i, owner)``), and among selected copies the best steal minimises
``mu(v_i, owner)``.  We track a monotone "next free copy" pointer and a
lazy min-heap of ``(mu(v_i, owner), k)`` per event, so the per-iteration
pick costs O(log c_v) amortised instead of O(c_v).

The single-user scheduler is pluggable: DPSingle yields **DeDPO**
(identical plannings to DeDP — same tie-breaking throughout), and
GreedySingle yields **DeGreedy** (Section 4.4).

Step 1 runs through the incremental scheduling engine
(:mod:`repro.core.candidates`, ``docs/performance.md``): the per-user
candidate scan walks the precomputed Lemma 1 candidate index (events
with positive utility whose round trip fits the budget, already in
end-time order), so the scheduler receives pre-pruned candidate arrays;
and each scheduler call is dirty-checked against the user's last
candidate view, so a re-solve on the same instance reschedules only
users whose decomposed utilities actually changed.  Both layers are
planning-neutral: pruned candidates could never be scheduled, and the
memo only replays answers for bit-identical views.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import instrument
from ..core.instance import USEPInstance
from ..core.planning import Planning
from . import dp_batch
from .base import Solver
from .dp_batch import Step1Batcher
from .dp_single import dp_single
from .greedy_single import greedy_single

#: Signature shared by dp_single / greedy_single.
SingleScheduler = Callable[
    [USEPInstance, int, Sequence[int], Dict[int, float]], List[int]
]


class _PseudoEventPool:
    """Ownership state of one event's pseudo-copies (the ``select`` row)."""

    __slots__ = ("capacity", "owners", "next_free", "steal_heap")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.owners: List[Optional[int]] = [None] * capacity
        self.next_free = 0  # copies are consumed in k order; never freed
        self.steal_heap: List[Tuple[float, int]] = []  # (mu(v, owner), k), lazy

    def pick(self, mu_vr: float, event_utils_row: Sequence[float]) -> Tuple[int, float]:
        """Best copy for the current user and its decomposed utility.

        Args:
            mu_vr: ``mu(v_i, u_r)`` of the current user.
            event_utils_row: ``mu(v_i, u)`` for all users (to validate
                lazy heap entries).

        Returns:
            ``(k, mu_prime)`` — the chosen copy index and the Algorithm 4
            line 6 value ``mu'(v_hat_i)``.
        """
        if self.next_free < self.capacity:
            return self.next_free, mu_vr
        owner_mu, k = self.peek_steal(event_utils_row)
        return k, mu_vr - owner_mu

    def peek_steal(self, event_utils_row: Sequence[float]) -> Tuple[float, int]:
        """Validated heap top ``(mu(v, owner), k)`` of a saturated pool.

        The heap is lazy: entries whose copy was re-stolen since are
        stale and get popped here.  The returned pair stays valid until
        the next :meth:`assign` to this pool, which is what lets the
        Step-1 scan cache per-pool steal values between assigns instead
        of re-validating the heap once per (user, candidate) pair.
        """
        heap = self.steal_heap
        while heap:
            owner_mu, k = heap[0]
            owner = self.owners[k]
            if owner is not None and event_utils_row[owner] == owner_mu:
                return owner_mu, k
            heapq.heappop(heap)  # stale: the copy was re-stolen since
        # Unreachable when capacity > 0: every selected copy has a live
        # heap entry by construction.
        raise AssertionError("pseudo-event pool invariant broken")

    def assign(self, k: int, user_id: int, mu_owner: float) -> None:
        """Record that ``user_id`` now holds copy ``k``."""
        self.owners[k] = user_id
        if k == self.next_free:
            self.next_free += 1
        heapq.heappush(self.steal_heap, (mu_owner, k))


class DecomposedSolver(Solver):
    """Algorithm 4 skeleton with a pluggable single-user scheduler."""

    name = "Decomposed"

    def __init__(
        self, single_scheduler: SingleScheduler, memo_kind: Optional[str] = None
    ):
        self._single_scheduler = single_scheduler
        #: Memo namespace of the scheduler ("dp" / "greedy"); ``None``
        #: disables the incremental engine's memo + presorted fast path
        #: (used by schedulers with their own filtering, e.g. the dense
        #: DP ablation, whose tie-breaking must not share a namespace).
        self._memo_kind = memo_kind
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        num_events = instance.num_events
        num_users = instance.num_users
        engine = instance.arrays().engine()
        memo_kind = self._memo_kind
        # Whole-solve replay: a solver is a pure function of the
        # instance *content*, so a repeat run on the same content
        # replays the recorded planning instead of re-executing Step 1.
        # The key embeds the engine's content token (the build-cache
        # fingerprint, refreshed on every repro.core.deltas mutation),
        # so a mutated instance can never replay a pre-mutation solve.
        replay_key: Optional[tuple] = None
        if memo_kind is not None:
            replay_key = (
                self.name,
                memo_kind,
                getattr(
                    self._single_scheduler,
                    "__qualname__",
                    repr(self._single_scheduler),
                ),
                engine.content_token(),
            )
            replayed = engine.replay_solution(replay_key)
            if replayed is not None:
                planning, self.counters = replayed
                return planning
        pools = [
            _PseudoEventPool(instance.clamped_capacity(i)) for i in range(num_events)
        ]
        event_utils: List[Sequence[float]] = [
            instance.utilities_for_event(i) for i in range(num_events)
        ]

        # Step 1 (lines 3-10): schedule each user against the decomposed
        # utilities implied by the current `select` state.  Events with
        # mu(v_i, u_r) <= 0 can never yield a positive mu' (stealing only
        # subtracts a positive owner utility), and events failing Lemma 1
        # can never be scheduled — the candidate index precomputes both
        # filters per user, in end-time order.  Where the index is
        # unavailable (user-cost caching disabled) the scan falls back to
        # the positive entries of the utility column, grouped per user
        # upfront with a single nonzero pass.
        index = engine.index if memo_kind is not None else None
        prof = instrument.active()
        if index is not None:
            per_user_candidates: List[List[int]] = index.per_user
            presorted = True
            if prof is not None:
                prof.add("candidates_pruned_lemma1", index.pruned_pairs)
                prof.add("candidates_surviving", index.survivor_pairs)
        else:
            mu = instance.arrays().mu
            if num_users and num_events:
                users_nz, events_nz = np.nonzero(mu.T > 0.0)
                bounds = np.searchsorted(users_nz, np.arange(1, num_users))
                per_user_candidates = [
                    chunk.tolist() for chunk in np.split(events_nz, bounds)
                ]
            else:
                per_user_candidates = [[] for _ in range(num_users)]
            presorted = False
        memo_hits0, memo_misses0 = engine.memo.hits, engine.memo.misses
        scheduler_calls = 0
        reassignments = 0

        # Steal-cached vectorised scan: a pool's decomposed-utility
        # offset (``mu(v_i, owner)`` of its best steal) only changes
        # when a copy is assigned, so between assigns the per-user scan
        # can gather cached offsets with one numpy fancy-index instead
        # of validating every candidate pool's heap per user.  The
        # resulting views and schedules are bit-identical to the
        # per-candidate ``pick`` scan below, which remains for the
        # index-less fallback.
        fast_scan = index is not None
        if fast_scan:
            mu_arr = instance.arrays().mu
            memo = engine.memo
            per_user_np = index.per_user_np
            sat_mask = np.zeros(num_events, dtype=bool)
            steal_mu = np.zeros(num_events, dtype=float)
            steal_k = np.zeros(num_events, dtype=np.intp)

            def note_assigned(event_id: int, pool: _PseudoEventPool) -> None:
                if pool.next_free >= pool.capacity:
                    owner_mu, k = pool.peek_steal(event_utils[event_id])
                    steal_mu[event_id] = owner_mu
                    steal_k[event_id] = k
                    sat_mask[event_id] = True

        # Batched Step 1 (see dp_batch): users whose candidates all keep
        # a free pseudo-copy see exactly their static view, so their
        # scheduler calls are deferred and run as shape groups; the
        # assignments are then replayed in user order — fresh copies at
        # full utility, never a reassignment — which reproduces the
        # sequential pool evolution.  A user failing the margin flushes
        # the batch, is retried against the exact counts, and only then
        # runs through the scalar scan below.
        batcher: Optional[Step1Batcher] = None
        if (
            index is not None
            and num_users >= 2
            and self._single_scheduler is dp_single
            and not dp_batch.FORCE_PER_USER
        ):
            free = np.fromiter(
                (pool.capacity for pool in pools), dtype=np.intp, count=num_events
            )
            batcher = Step1Batcher(
                instance, engine, memo_kind, self._single_scheduler, free
            )

        def replay_deferred() -> None:
            for user_id, schedule in batcher.flush():
                for event_id in schedule:
                    pool = pools[event_id]
                    pool.assign(
                        pool.next_free, user_id, event_utils[event_id][user_id]
                    )
                    batcher.free[event_id] -= 1
                    if fast_scan:
                        note_assigned(event_id, pool)

        for r in range(num_users):
            scheduler_calls += 1
            if batcher is not None:
                if batcher.try_defer(r):
                    continue
                if batcher.deferred:
                    # Flushing releases the pending reservations, which
                    # may restore the margin; with nothing deferred the
                    # retry would see the exact same state.
                    replay_deferred()
                    if batcher.try_defer(r):
                        continue
                batcher.note_scalar_fallback()
            if fast_scan:
                cands = per_user_np[r]
                if cands.size:
                    prime = mu_arr[cands, r] - np.where(
                        sat_mask[cands], steal_mu[cands], 0.0
                    )
                    pos = prime > 0.0
                    kept = cands[pos].tolist()
                    vals = prime[pos].tolist()
                else:
                    kept = []
                    vals = []
                view = (tuple(kept), tuple(vals))
                schedule = memo.get(memo_kind, r, view)
                if schedule is None:
                    schedule = memo.put(
                        memo_kind,
                        r,
                        view,
                        self._single_scheduler(
                            instance,
                            r,
                            kept,
                            dict(zip(kept, vals)),
                            presorted=presorted,
                        ),
                    )
                for event_id in schedule:
                    pool = pools[event_id]
                    if pool.next_free < pool.capacity:
                        k = pool.next_free
                    else:
                        k = steal_k[event_id]
                        reassignments += 1
                    pool.assign(k, r, event_utils[event_id][r])
                    if batcher is not None:
                        batcher.free[event_id] = pool.capacity - pool.next_free
                    note_assigned(event_id, pool)
                continue
            candidates: List[int] = []
            utilities: Dict[int, float] = {}
            chosen_k: Dict[int, int] = {}
            for i in per_user_candidates[r]:
                mu_vr = event_utils[i][r]
                k, mu_prime = pools[i].pick(mu_vr, event_utils[i])
                if mu_prime > 0.0:
                    candidates.append(i)
                    utilities[i] = mu_prime
                    chosen_k[i] = k
            if memo_kind is not None:
                schedule = engine.schedule(
                    memo_kind,
                    self._single_scheduler,
                    r,
                    candidates,
                    utilities,
                    presorted,
                )
            else:
                schedule = self._single_scheduler(instance, r, candidates, utilities)
            for event_id in schedule:
                k = chosen_k[event_id]
                pool = pools[event_id]
                if pool.owners[k] is not None:
                    reassignments += 1
                pool.assign(k, r, event_utils[event_id][r])
                if batcher is not None:
                    batcher.free[event_id] = pool.capacity - pool.next_free
        if batcher is not None:
            replay_deferred()

        # Step 2 (lines 11-14): each copy goes to its final owner.
        planning = Planning(instance)
        per_user_events: Dict[int, List[int]] = {}
        for event_id, pool in enumerate(pools):
            for owner in pool.owners:
                if owner is not None:
                    per_user_events.setdefault(owner, []).append(event_id)
        for user_id, event_ids in per_user_events.items():
            event_ids.sort(key=lambda ev: instance.events[ev].start)
            planning.set_schedule(user_id, event_ids)

        self.counters = {
            "scheduler_calls": scheduler_calls,
            "reassignments": reassignments,
            "selected_copies": sum(
                sum(owner is not None for owner in pool.owners) for pool in pools
            ),
        }
        if prof is not None:
            prof.add("sched_cache_hits", engine.memo.hits - memo_hits0)
            prof.add("sched_cache_misses", engine.memo.misses - memo_misses0)
        if replay_key is not None:
            engine.store_solution(replay_key, planning, self.counters)
        return planning


class DeDPO(DecomposedSolver):
    """DeDPO — Algorithm 4: DeDP's planning at optimised space/time."""

    name = "DeDPO"

    def __init__(self) -> None:
        super().__init__(dp_single, memo_kind="dp")


class DeGreedy(DecomposedSolver):
    """DeGreedy — Section 4.4: the framework with GreedySingle."""

    name = "DeGreedy"

    def __init__(self) -> None:
        super().__init__(greedy_single, memo_kind="greedy")
