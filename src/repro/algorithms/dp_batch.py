"""Batched cross-user DP execution for Step 1 of the decomposed solvers.

Per-user :func:`~repro.algorithms.dp_single.dp_single` calls inside the
Step-1 loop of Algorithms 3/4 are mutually independent *given their
candidate views*, yet the seed-faithful loop pays per-user Python
dispatch for the candidate scan, the view construction, and the whole
per-call DP setup (predecessor table, leg submatrix, budget cutoffs).
This module batches that work across users while keeping plannings
**bit-identical** to the sequential loop (and therefore to the
``*-seed`` golden twins):

:class:`Step1Batcher` — margin-gated deferral
    In the sequential loop, user ``r``'s candidate view depends on the
    pseudo-copy ownership state left behind by users ``0..r-1``.  But
    while every candidate event of a user still has a **free** pseudo
    copy, Algorithm 4's pick is forced: the next free copy, at the
    user's full utility ``mu(v, u)`` — exactly the *static view* the
    :class:`~repro.core.candidates.CandidateIndex` precomputes.  The
    batcher defers such users instead of processing them: it reserves
    one copy per candidate of each deferred dirty user (an upper bound
    on what its unknown schedule can take; memo-clean users reserve
    exactly their known schedule), and admits the next user only while
    every one of its candidates keeps ``free - reserved >= 1`` copies.
    Under that margin no deferred user can influence another deferred
    user's view, so their DP calls commute and run as shape groups at
    flush time; the *assignments* are then replayed strictly in user
    order, which reproduces the sequential copy indices (``k``),
    steal-heap pushes and reassignment counts verbatim.  A user that
    fails the margin flushes the batch — converting the pessimistic
    reservations into exact takes — and is retried once against the
    exact counts; only users with a genuinely saturated candidate
    (their view involves steal values the batch cannot see) fall back
    to the scalar pick-scan path, which handles steals exactly as
    before.  Batching is therefore adaptive: it covers everyone while
    capacity is plentiful and degrades to the sequential loop precisely
    where the picks are inherently order-dependent.

:func:`dp_batch_group` — the multi-user DP kernel
    Deferred dirty users are grouped by candidate *shape* (the interned
    surviving-candidate tuple).  Users in one group share the
    predecessor table and leg submatrix (cached per shape), and the
    per-user setup — outbound/return cost rows, negated utilities,
    ``nextafter``-pinned budget cutoffs — is vectorised across the
    whole group into flat :class:`~repro.core.arrays.DPArena` tables,
    so steady-state batches allocate no per-call setup.  Each user's
    frontier chase then runs through
    :func:`~repro.algorithms.dp_single.run_frontier_merge` — the same
    scalar Pareto merge ``dp_single`` executes (PR 1 measured the
    vectorised merge slower at every realistic frontier size) — so the
    batched and per-user paths share one merge implementation and
    bit-identity is structural.

Fallback conditions (the per-user path still runs) are: fewer than two
users in total, no candidate index (``cache_user_costs=False``), a
scheduler without a batch kernel (DeGreedy keeps the sequential scan —
deferral without a kernel only moves work around), any user failing
the free-copy margin even after a flush, and :data:`FORCE_PER_USER`
(tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import math

import numpy as np

from ..core import instrument
from ..core.instance import USEPInstance
from .dp_single import dp_single, run_frontier_merge

#: Test hook: force the sequential per-user Step-1 path everywhere.
FORCE_PER_USER = False

#: Bound on cached per-shape setups (each holds an ``n x n`` leg
#: submatrix); oldest-inserted entries are evicted beyond this.
SHAPE_CACHE_MAX = 1024


def _shape_setup(engine, arrays, shape: Tuple[int, ...]):
    """Per-shape DP setup (kept ids, predecessor table, leg submatrix).

    Cached on the engine keyed by the interned shape tuple — every
    group with the same surviving-candidate set shares one setup.
    """
    cache = engine.shape_cache
    entry = cache.get(shape)
    prof = instrument.active()
    if entry is not None:
        if prof is not None:
            prof.add("dp_batch_shape_hits")
        return entry
    kept = list(shape)
    n = len(kept)
    kept_np = np.fromiter(kept, dtype=np.intp, count=n)
    kept_pos = arrays.pos[kept_np]
    # Same construction as dp_single's per-call setup (see there for
    # why this equals the seed's bisect over kept end times).
    l_list = np.minimum(
        np.searchsorted(kept_pos, arrays.l_index[kept_pos], side="left"),
        np.arange(n),
    ).tolist()
    legs_rows = arrays.vv[kept_np[None, :], kept_np[:, None]].tolist()
    entry = (kept, kept_np, l_list, legs_rows)
    if len(cache) >= SHAPE_CACHE_MAX:
        cache.pop(next(iter(cache)))
    cache[shape] = entry
    if prof is not None:
        prof.add("dp_batch_shape_misses")
    return entry


def dp_batch_group(
    instance: USEPInstance, user_ids: Sequence[int], shape: Tuple[int, ...]
) -> List[List[int]]:
    """Optimal schedules for a group of users sharing one candidate shape.

    Every user's candidates are exactly ``shape`` at their full
    utilities ``mu(v, u)`` (the static-view condition the batcher's
    margin gate guarantees).  Per-candidate setup is vectorised across
    the group into arena tables; the frontier merge itself runs through
    the scalar kernel shared with :func:`dp_single`.
    """
    group = len(user_ids)
    if not shape:
        return [[] for _ in range(group)]
    arrays = instance.arrays()
    engine = arrays.engine()
    kept, kept_np, l_list, legs_rows = _shape_setup(engine, arrays, shape)
    n = len(kept)
    num_events = instance.num_events
    num_users = instance.num_users
    arena = arrays.dp_arena()
    users_np = np.fromiter(user_ids, dtype=np.intp, count=group)

    # Outbound / return cost rows, gathered flat into arena tables (no
    # per-call table allocation; the arena reuses its buffers).
    idx = arena.table("cost_idx", (group, n), np.intp)
    np.multiply(users_np[:, None], num_events, out=idx)
    idx += kept_np[None, :]
    bases = arena.table("base_cost", (group, n), np.float64)
    np.take(arrays.to_events.reshape(-1), idx, out=bases)
    backs = arena.table("back_cost", (group, n), np.float64)
    np.take(arrays.from_events.reshape(-1), idx, out=backs)

    # Negated utilities from the (|V|, |U|) mu matrix: float64 negation
    # matches the scalar kernel's ``-utilities[ev]`` bit for bit.
    midx = arena.table("mu_idx", (group, n), np.intp)
    np.multiply(kept_np[None, :], num_users, out=midx)
    midx += users_np[:, None]
    nutils = arena.table("neg_util", (group, n), np.float64)
    np.take(arrays.mu.reshape(-1), midx, out=nutils)
    np.negative(nutils, out=nutils)

    # Budget cutoffs: the largest representable T with T + back <= b_u,
    # pinned exactly like dp_single's scalar nextafter walks (same IEEE
    # float64 add/compare/nextafter, so the unique boundary float is
    # the same).  Rows with an infinite budget take thresh = inf, the
    # scalar kernel's non-finite-budget branch.
    budgets = arena.table("budget", (group, n), np.float64)
    np.copyto(budgets, arrays.budgets[users_np][:, None])
    thresh = arena.table("thresh", (group, n), np.float64)
    np.subtract(budgets, backs, out=thresh)
    finite = np.isfinite(budgets)
    if not finite.all():
        thresh[~finite] = math.inf
    # Walk down while the cutoff still violates the budget check...
    viol = finite & (thresh + backs > budgets)
    while viol.any():
        thresh[viol] = np.nextafter(thresh[viol], -math.inf)
        viol[viol] = thresh[viol] + backs[viol] > budgets[viol]
    # ...then up while the next float up still satisfies it.
    nxt = np.where(finite, np.nextafter(thresh, math.inf), math.inf)
    grow = finite & (nxt + backs <= budgets)
    while grow.any():
        thresh[grow] = nxt[grow]
        nxt[grow] = np.nextafter(nxt[grow], math.inf)
        grow[grow] = nxt[grow] + backs[grow] <= budgets[grow]

    prof = instrument.active()
    stats = [0, 0] if prof is not None else None
    schedules = [
        run_frontier_merge(
            instance,
            kept,
            l_list,
            legs_rows,
            bases[g].tolist(),
            nutils[g].tolist(),
            thresh[g].tolist(),
            stats,
        )
        for g in range(group)
    ]
    if prof is not None:
        prof.add("dp_calls_executed", group)
        prof.add("dp_candidates", n * group)
        prof.add("dp_states_expanded", stats[0])
        prof.add("dp_states_kept", stats[1])
        prof.add("dp_batch_users", group)
        prof.add("dp_batch_groups")
        prof["dp_arena_bytes_peak"] = max(
            prof.get("dp_arena_bytes_peak", 0), arena.bytes_peak
        )
    return schedules


class Step1Batcher:
    """Margin-gated deferral of Step-1 scheduler calls (see module docs).

    The owning solver drives it: ``try_defer(r)`` either absorbs the
    user (returns True) or signals that the batch must be flushed; the
    solver then replays the flushed assignments and may retry the user
    once against the now-exact counts before falling back to the
    scalar path.  ``flush()`` schedules all deferred dirty users
    through :func:`dp_batch_group` per shape group, records them in
    the memo, and returns the deferred ``(user_id, schedule)`` pairs
    in original user order so the solver can replay the pseudo-copy
    assignments sequentially.  Only the DPSingle scheduler has a batch
    kernel — solvers with other schedulers keep the sequential loop.

    ``free`` is the solver-owned per-event count of untouched pseudo
    copies (a conservative under-count is sound); the solver
    decrements it as it applies assignments.  The batcher only tracks
    the per-batch reservations on top of it.

    Memo accounting stays identical to the sequential loop: exactly
    one counted ``memo.get`` per user (here at defer time, or in the
    scalar path's ``engine.schedule``), with the same view — under the
    margin the user's true view *is* the static view — and therefore
    the same hit/miss outcome.
    """

    __slots__ = (
        "instance",
        "engine",
        "memo",
        "kind",
        "scheduler",
        "free",
        "pending",
        "views",
        "shapes",
        "cands_np",
        "deferred",
        "dirty",
    )

    def __init__(self, instance, engine, kind, scheduler, free: np.ndarray):
        if scheduler is not dp_single:
            raise ValueError("Step1Batcher requires the DPSingle scheduler")
        index = engine.index
        self.instance = instance
        self.engine = engine
        self.memo = engine.memo
        self.kind = kind
        self.scheduler = scheduler
        self.free = free
        self.pending = np.zeros(instance.num_events, dtype=np.intp)
        self.views = index.static_views
        self.shapes = index.shapes
        self.cands_np = index.per_user_np
        self.deferred: List[list] = []  # [user_id, schedule or None]
        self.dirty: Dict[Tuple[int, ...], List[int]] = {}

    def try_defer(self, user_id: int) -> bool:
        """Absorb the user if every candidate still has a free copy."""
        cands = self.cands_np[user_id]
        if cands.size and int((self.free[cands] - self.pending[cands]).min()) < 1:
            return False
        view = self.views[user_id]
        cached = self.memo.get(self.kind, user_id, view)
        if cached is not None:
            # Clean user: the schedule is known now, so reserve exactly
            # what its replay will take.
            self.deferred.append([user_id, cached])
            for event_id in cached:
                self.pending[event_id] += 1
        else:
            # Dirty user: the schedule is unknown until the flush, so
            # reserve every candidate (a schedule is a subset of them).
            self.dirty.setdefault(self.shapes[user_id], []).append(
                len(self.deferred)
            )
            self.deferred.append([user_id, None])
            if cands.size:
                self.pending[cands] += 1
        return True

    def flush(self) -> List[list]:
        """Schedule deferred dirty users; return all deferred pairs."""
        deferred = self.deferred
        if not deferred:
            return deferred
        dirty = self.dirty
        for shape, slots in dirty.items():
            users = [deferred[slot][0] for slot in slots]
            schedules = dp_batch_group(self.instance, users, shape)
            for slot, schedule in zip(slots, schedules):
                user_id = deferred[slot][0]
                deferred[slot][1] = self.memo.put(
                    self.kind, user_id, self.views[user_id], schedule
                )
        self.deferred = []
        self.dirty = {}
        self.pending[:] = 0
        return deferred

    def note_scalar_fallback(self) -> None:
        """Count a user whose saturated view forced the scalar path."""
        prof = instrument.active()
        if prof is not None:
            prof.add("dp_batch_scalar_users")
