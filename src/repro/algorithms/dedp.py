"""DeDP — Algorithm 3: the two-step Local-Ratio decomposition with DPSingle.

Step 1 decomposes USEP into ``|U|`` single-user problems.  Each event
``v_i`` is expanded into ``c_{v_i}`` *pseudo-events* of capacity 1; the
decomposed utility ``mu^r(v_{i,k}, u)`` starts at ``mu(v_i, u)`` and,
whenever iteration ``r`` schedules pseudo-event ``v_{i,k}`` for user
``u_r``, is reduced by ``mu^r(v_{i,k}, u_r)`` for every later user.  In
iteration ``r`` the algorithm picks, per event, the pseudo-copy with the
largest current utility for ``u_r``, keeps the positive ones (``V_r``)
and runs DPSingle.  Step 2 walks users from last to first and keeps each
pseudo-event only in the *last* schedule that contains it, restoring the
capacity constraint.  Theorem 3 proves the result is a 1/2-approximation.

This class is deliberately the *unoptimised* variant the paper measures:
it materialises the full ``mu^r`` tensor (one ``c_{v_i} x |U|`` float
array per event) and updates slices of it each iteration — that is the
``O(|V| |U| max c_v)`` memory the paper's memory plots show exploding.
Use :class:`~repro.algorithms.dedpo.DeDPO` for identical plannings at a
fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..core.instance import USEPInstance
from ..core.planning import Planning
from .base import Solver
from .dp_single import dp_single


class DeDP(Solver):
    """Decomposed Dynamic Programming (1/2-approximation, unoptimised)."""

    name = "DeDP"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        num_users = instance.num_users
        num_events = instance.num_events
        # Line 1: clamp capacities to |U| before pseudo-event expansion.
        capacities = [instance.clamped_capacity(i) for i in range(num_events)]

        # Line 2: mu^1(v_{i,k}, u) = mu(v_i, u) for every pseudo copy.
        # One (c_i x |U|) array per event -- the full tensor, on purpose.
        mu_r: List[np.ndarray] = [
            np.tile(instance.utilities_for_event(i), (capacities[i], 1))
            for i in range(num_events)
        ]

        # Step 1: per-user DP over the best pseudo-copies.
        hat_schedules: List[List[Tuple[int, int]]] = []
        dp_calls = 0
        for r in range(num_users):
            chosen_k: Dict[int, int] = {}
            utilities: Dict[int, float] = {}
            candidates: List[int] = []
            for i in range(num_events):
                column = mu_r[i][:, r]
                k = int(np.argmax(column))  # ties -> smallest k
                value = float(column[k])
                if value > 0.0:
                    chosen_k[i] = k
                    utilities[i] = value
                    candidates.append(i)
            schedule = dp_single(instance, r, candidates, utilities)
            dp_calls += 1
            hat: List[Tuple[int, int]] = []
            for event_id in schedule:
                k = chosen_k[event_id]
                hat.append((event_id, k))
                # mu^{r+1}(v_{i,k}, u_j) = mu^r(...) - mu^r(v_{i,k}, u_r)
                # for all j > r.  (Column r itself is zeroed conceptually;
                # it is never read again, so we skip the write.)
                mu_r[event_id][k, r + 1 :] -= mu_r[event_id][k, r]
            hat_schedules.append(hat)

        # Step 2: keep each pseudo-event only in its last schedule.
        planning = Planning(instance)
        taken: Set[Tuple[int, int]] = set()
        removed_pairs = 0
        for r in range(num_users - 1, -1, -1):
            final_events: List[int] = []
            for event_id, k in hat_schedules[r]:
                if (event_id, k) in taken:
                    removed_pairs += 1
                    continue
                taken.add((event_id, k))
                final_events.append(event_id)
            if final_events:
                final_events.sort(key=lambda ev: instance.events[ev].start)
                planning.set_schedule(r, final_events)

        self.counters = {
            "dp_calls": dp_calls,
            "hat_pairs": sum(len(h) for h in hat_schedules),
            "removed_pairs": removed_pairs,
        }
        return planning
