"""DeDP — Algorithm 3: the two-step Local-Ratio decomposition with DPSingle.

Step 1 decomposes USEP into ``|U|`` single-user problems.  Each event
``v_i`` is expanded into ``c_{v_i}`` *pseudo-events* of capacity 1; the
decomposed utility ``mu^r(v_{i,k}, u)`` starts at ``mu(v_i, u)`` and,
whenever iteration ``r`` schedules pseudo-event ``v_{i,k}`` for user
``u_r``, is reduced by ``mu^r(v_{i,k}, u_r)`` for every later user.  In
iteration ``r`` the algorithm picks, per event, the pseudo-copy with the
largest current utility for ``u_r``, keeps the positive ones (``V_r``)
and runs DPSingle.  Step 2 walks users from last to first and keeps each
pseudo-event only in the *last* schedule that contains it, restoring the
capacity constraint.  Theorem 3 proves the result is a 1/2-approximation.

This class is deliberately the *unoptimised* variant the paper measures:
it materialises the full ``mu^r`` tensor — here as one flat
``(sum c_{v_i}) x |U|`` float array with per-event row offsets — and
updates slices of it each iteration; that is the ``O(|V| |U| max c_v)``
memory the paper's memory plots show exploding.  The per-iteration
pseudo-copy argmax (Algorithm 3's line 5 selection) runs as two
``reduceat`` passes over the whole tensor column instead of ``|V|``
per-event ``argmax`` calls, with identical smallest-``k`` tie-breaking.
Use :class:`~repro.algorithms.decomposed.DeDPO` for identical plannings
at a fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..core import instrument
from ..core.instance import USEPInstance
from ..core.planning import Planning
from . import dp_batch
from .base import Solver
from .dp_batch import Step1Batcher
from .dp_single import dp_single


class DeDP(Solver):
    """Decomposed Dynamic Programming (1/2-approximation, unoptimised)."""

    name = "DeDP"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def solve(self, instance: USEPInstance) -> Planning:
        num_users = instance.num_users
        num_events = instance.num_events
        engine = instance.arrays().engine()
        # Whole-solve replay (see IncrementalEngine.replay_solution).
        # Keyed on the content token so mutated instances never replay
        # a pre-mutation planning.
        replay_key = (self.name, "dp", dp_single.__qualname__, engine.content_token())
        replayed = engine.replay_solution(replay_key)
        if replayed is not None:
            planning, self.counters = replayed
            return planning
        # Line 1: clamp capacities to |U| before pseudo-event expansion.
        capacities = np.array(
            [instance.clamped_capacity(i) for i in range(num_events)], dtype=np.intp
        )

        # Line 2: mu^1(v_{i,k}, u) = mu(v_i, u) for every pseudo copy.
        # The full tensor, on purpose: rows offsets[i]..offsets[i+1] are
        # event i's pseudo-copies.
        mu = instance.arrays().mu
        mu_r = np.repeat(mu, capacities, axis=0) if num_events else np.zeros((0, 0))
        offsets = np.zeros(num_events + 1, dtype=np.intp)
        np.cumsum(capacities, out=offsets[1:])
        starts = offsets[:-1]
        offsets_list = offsets.tolist()
        total_copies = int(offsets[-1]) if num_events else 0

        # Step 1: per-user DP over the best pseudo-copies, through the
        # incremental engine: the Lemma 1 candidate index pre-prunes and
        # pre-sorts each user's candidate set (a pruned event can never
        # be scheduled, so the mu^r tensor evolves identically), and the
        # per-user DP is dirty-checked — an unchanged candidate view
        # replays the memoized schedule instead of re-running DPSingle.
        index = engine.index
        prof = instrument.active()
        if prof is not None and index is not None:
            prof.add("candidates_pruned_lemma1", index.pruned_pairs)
            prof.add("candidates_surviving", index.survivor_pairs)
        memo_hits0, memo_misses0 = engine.memo.hits, engine.memo.misses
        hat_schedules: List[List[Tuple[int, int]]] = [[] for _ in range(num_users)]
        dp_calls = 0

        # Batched Step 1 (see dp_batch).  ``free`` conservatively counts
        # untouched tensor rows per event as capacity minus hat pairs
        # (re-touching a row double-counts, which only under-estimates).
        # While a user's every candidate keeps an untouched row, the
        # reduceat best equals mu(v, u) exactly — decrements subtract
        # positive floats, so touched rows only go down — and the user
        # sees its static view; its scheduler call is deferred and its
        # hat pairs are replayed in user order with the argmax copy
        # resolution run on the live column.
        batcher = None
        if (
            index is not None
            and total_copies
            and num_users >= 2
            and not dp_batch.FORCE_PER_USER
        ):
            batcher = Step1Batcher(
                instance, engine, "dp", dp_single, capacities.copy()
            )

        def replay_deferred() -> None:
            for user_id, schedule in batcher.flush():
                hat: List[Tuple[int, int]] = []
                if schedule:
                    column = mu_r[:, user_id]
                    for event_id in schedule:
                        lo = offsets_list[event_id]
                        k = int(np.argmax(column[lo : offsets_list[event_id + 1]]))
                        hat.append((event_id, k))
                        row = lo + k
                        mu_r[row, user_id + 1 :] -= mu_r[row, user_id]
                        batcher.free[event_id] -= 1
                hat_schedules[user_id] = hat

        for r in range(num_users):
            dp_calls += 1
            if batcher is not None:
                if batcher.try_defer(r):
                    continue
                replay_deferred()
                if batcher.try_defer(r):
                    continue
                batcher.note_scalar_fallback()
            if total_copies:
                column = mu_r[:, r]
                # Best copy value per event (one reduceat over the whole
                # tensor column instead of |V| per-event max calls).
                best = np.maximum.reduceat(column, starts)
                best_list = best.tolist()
                if index is not None:
                    candidates = [
                        i for i in index.per_user[r] if best_list[i] > 0.0
                    ]
                else:
                    candidates = np.nonzero(best > 0.0)[0].tolist()
            else:
                column = None
                candidates = []
                best_list = []
            utilities: Dict[int, float] = {i: best_list[i] for i in candidates}
            schedule = engine.schedule(
                "dp", dp_single, r, candidates, utilities, index is not None
            )
            hat: List[Tuple[int, int]] = []
            for event_id in schedule:
                # The chosen copy: ties -> smallest k, exactly the seed's
                # first-maximum scan (np.argmax returns the first hit).
                # Only scheduled events need it, so the k resolution is
                # deferred out of the per-user selection pass.
                lo = offsets_list[event_id]
                k = int(np.argmax(column[lo : offsets_list[event_id + 1]]))
                hat.append((event_id, k))
                # mu^{r+1}(v_{i,k}, u_j) = mu^r(...) - mu^r(v_{i,k}, u_r)
                # for all j > r.  (Column r itself is zeroed conceptually;
                # it is never read again, so we skip the write.)
                row = lo + k
                mu_r[row, r + 1 :] -= mu_r[row, r]
                if batcher is not None:
                    batcher.free[event_id] -= 1
            hat_schedules[r] = hat
        if batcher is not None:
            replay_deferred()

        # Step 2: keep each pseudo-event only in its last schedule.
        planning = Planning(instance)
        taken: Set[Tuple[int, int]] = set()
        removed_pairs = 0
        for r in range(num_users - 1, -1, -1):
            final_events: List[int] = []
            for event_id, k in hat_schedules[r]:
                if (event_id, k) in taken:
                    removed_pairs += 1
                    continue
                taken.add((event_id, k))
                final_events.append(event_id)
            if final_events:
                final_events.sort(key=lambda ev: instance.events[ev].start)
                planning.set_schedule(r, final_events)

        self.counters = {
            "dp_calls": dp_calls,
            "hat_pairs": sum(len(h) for h in hat_schedules),
            "removed_pairs": removed_pairs,
        }
        if prof is not None:
            prof.add("sched_cache_hits", engine.memo.hits - memo_hits0)
            prof.add("sched_cache_misses", engine.memo.misses - memo_misses0)
        engine.store_solution(replay_key, planning, self.counters)
        return planning
