"""USEP planning algorithms.

The paper's six solvers (RatioGreedy, DeDP, DeDPO, DeDPO+RG, DeGreedy,
DeGreedy+RG), an exact branch-and-bound oracle, the literal dense-table
DP ablation (DeDPO-dense), the prior-work one-event-per-user baseline
(SingleEvent / SingleEvent-greedy) and the local-search extension
(*+LS).  Use :func:`make_solver` with a registry name, or construct the
classes directly.
"""

from .augment import AugmentedSolver, DeDPOPlusRG, DeDPPlusRG, DeGreedyPlusRG
from .base import Solver, SolverResult, ratio_sort_key, warm_instance
from .decomposed import DecomposedSolver, DeDPO, DeGreedy
from .dedp import DeDP
from .dp_single import dp_single, dp_single_best_utility, dp_single_reference
from .dp_single_dense import DeDPODense, dp_single_dense
from .exact import ExactSolver, enumerate_feasible_schedules, optimal_utility
from .greedy_single import greedy_single, greedy_single_scan
from .local_search import LocalSearchSolver, local_search
from .ratio_greedy import RatioGreedy, greedy_augment
from .seed_baseline import DeDPOSeed, DeDPSeed, DeGreedySeed
from .single_event import GreedySingleEventAssignment, SingleEventAssignment
from .registry import (
    PAPER_ALGORITHMS,
    SCALABLE_ALGORITHMS,
    available_solvers,
    make_solver,
)

__all__ = [
    "AugmentedSolver",
    "DeDP",
    "DeDPO",
    "DeDPODense",
    "DeDPOPlusRG",
    "DeDPOSeed",
    "DeDPPlusRG",
    "DeDPSeed",
    "DeGreedy",
    "DeGreedyPlusRG",
    "DeGreedySeed",
    "DecomposedSolver",
    "ExactSolver",
    "PAPER_ALGORITHMS",
    "GreedySingleEventAssignment",
    "LocalSearchSolver",
    "RatioGreedy",
    "SCALABLE_ALGORITHMS",
    "SingleEventAssignment",
    "Solver",
    "SolverResult",
    "available_solvers",
    "dp_single",
    "dp_single_dense",
    "dp_single_best_utility",
    "dp_single_reference",
    "enumerate_feasible_schedules",
    "greedy_augment",
    "greedy_single",
    "greedy_single_scan",
    "local_search",
    "make_solver",
    "optimal_utility",
    "ratio_sort_key",
    "warm_instance",
]
