"""GreedySingle — Algorithm 5: fast greedy single-user scheduling.

DeGreedy replaces DeDP's optimal-but-slow DPSingle with this greedy: it
repeatedly adds the candidate event with the largest utility-cost ratio
(Equation 2, against the *current* partial schedule) until nothing fits.

The paper maintains a heap ``H`` holding the best valid candidate of
each *gap* — a maximal run of candidate indices (in end-time order)
between two consecutive scheduled events.  Adding an event splits its
gap in two, and only candidates inside the split gap see their
``inc_cost`` change (Lemma 3), so pushing the best of each sub-gap keeps
the heap's top equal to the global best.  We reproduce that scheme with
one robustness addition: a popped entry is revalidated against the live
schedule and budget, and if it went stale (the remaining budget shrank)
its gap is rescanned — this is exactly the invariant Lemma 3 asserts.

:func:`greedy_single_scan` is a plain O(n^2) rescan-everything
implementation of the same greedy rule; the property-based tests check
the two produce identical schedules, which validates the gap/heap
machinery against the simple specification.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.instance import USEPInstance
from ..core.schedule import Schedule
from .base import ratio_sort_key

_Key = Tuple[float, float, float, int, int]


def _prepare_candidates(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: float,
) -> List[int]:
    """Lemma 1 pruning + positive-utility filter + end-time sort."""
    to_event = instance.costs_to_events(user_id)
    from_event = instance.costs_from_events(user_id)
    kept = [
        ev_id
        for ev_id in candidate_event_ids
        if utilities.get(ev_id, 0.0) > 0.0
        and to_event[ev_id] + from_event[ev_id] <= budget
    ]
    # The precomputed global slot order equals the (end, start, id) sort.
    kept.sort(key=instance.arrays().pos_list.__getitem__)
    return kept


class _GreedySingleRun:
    """State of one GreedySingle execution (heap variant)."""

    def __init__(
        self,
        instance: USEPInstance,
        user_id: int,
        candidates: List[int],
        utilities: Dict[int, float],
        budget: float,
    ):
        self.instance = instance
        self.user_id = user_id
        self.candidates = candidates
        self.utilities = utilities
        self.budget = budget
        self.schedule = Schedule(user_id)
        self.scheduled: Set[int] = set()
        self.heap: list = []

    def _candidate_key(self, ev_id: int) -> Optional[_Key]:
        """Ratio key of adding ``ev_id`` now, or None when invalid."""
        insertion = self.schedule.plan_insertion(self.instance, ev_id)
        if insertion is None:
            return None
        if self.schedule.total_cost(self.instance) + insertion.inc_cost > self.budget:
            return None
        return ratio_sort_key(
            self.utilities[ev_id], insertion.inc_cost, ev_id, self.user_id
        )

    def _push_best_of_gap(self, lo: int, hi: int) -> None:
        """Scan candidate indices [lo, hi) and push the best valid one."""
        best: Optional[Tuple[_Key, int]] = None
        for idx in range(lo, hi):
            ev_id = self.candidates[idx]
            if ev_id in self.scheduled:
                continue
            key = self._candidate_key(ev_id)
            if key is not None and (best is None or key < best[0]):
                best = (key, idx)
        if best is not None:
            key, idx = best
            heapq.heappush(self.heap, (key, idx, lo, hi))

    def run(self) -> List[int]:
        self._push_best_of_gap(0, len(self.candidates))
        while self.heap:
            key, idx, lo, hi = heapq.heappop(self.heap)
            ev_id = self.candidates[idx]
            if ev_id in self.scheduled:
                self._push_best_of_gap(lo, hi)
                continue
            live_key = self._candidate_key(ev_id)
            if live_key is None:
                # Budget shrank since the push; the gap needs a rescan.
                self._push_best_of_gap(lo, hi)
                continue
            if live_key != key:
                heapq.heappush(self.heap, (live_key, idx, lo, hi))
                continue
            self.schedule.insert_event(self.instance, ev_id)
            self.scheduled.add(ev_id)
            # Lemma 3: only the split gap's candidates changed inc_cost.
            self._push_best_of_gap(lo, idx)
            self._push_best_of_gap(idx + 1, hi)
        return list(self.schedule.event_ids)


def greedy_single(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
    presorted: bool = False,
) -> List[int]:
    """Greedy schedule for one user (Algorithm 5, heap variant).

    Same signature as :func:`~repro.algorithms.dp_single.dp_single`,
    including ``presorted`` (the caller guarantees Lemma 1 pruning, the
    positive-utility filter, and end-time order are already applied);
    returns event ids in attendance order.
    """
    if budget is None:
        budget = instance.users[user_id].budget
    if presorted:
        candidates = list(candidate_event_ids)
    else:
        candidates = _prepare_candidates(
            instance, user_id, candidate_event_ids, utilities, budget
        )
    if not candidates:
        return []
    return _GreedySingleRun(instance, user_id, candidates, utilities, budget).run()


def greedy_single_scan(
    instance: USEPInstance,
    user_id: int,
    candidate_event_ids: Sequence[int],
    utilities: Dict[int, float],
    budget: Optional[float] = None,
) -> List[int]:
    """Reference implementation: rescan all candidates every iteration.

    Semantically identical to :func:`greedy_single` (identical
    tie-breaking); quadratic and used to cross-check the heap variant.
    """
    if budget is None:
        budget = instance.users[user_id].budget
    candidates = _prepare_candidates(
        instance, user_id, candidate_event_ids, utilities, budget
    )
    schedule = Schedule(user_id)
    remaining = list(candidates)
    while True:
        best_key: Optional[_Key] = None
        best_ev = -1
        for ev_id in remaining:
            insertion = schedule.plan_insertion(instance, ev_id)
            if insertion is None:
                continue
            if schedule.total_cost(instance) + insertion.inc_cost > budget:
                continue
            key = ratio_sort_key(
                utilities[ev_id], insertion.inc_cost, ev_id, user_id
            )
            if best_key is None or key < best_key:
                best_key, best_ev = key, ev_id
        if best_key is None:
            break
        schedule.insert_event(instance, best_ev)
        remaining.remove(best_ev)
    return list(schedule.event_ids)
